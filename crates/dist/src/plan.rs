//! Distributed query analysis: which base tables a query touches, which
//! predicate conjuncts stay local to one alias (pushed into fragments),
//! and which are pure equi-join edges the shipping strategies can
//! reduce along.

use crate::error::DistError;
use fj_algebra::{Catalog, JoinQuery, PartitionMap, RelationKind};
use fj_expr::{analysis, BinOp, Expr};
use fj_storage::SchemaRef;
use std::collections::BTreeSet;

/// The hidden coordinator column appended to every scattered partition:
/// the row's ordinal in the original base table. Gathered partitions
/// merge back in ordinal order, so a rebuilt (reduced) table preserves
/// the serial table's row order exactly — the keystone of byte-identity
/// with the serial oracle.
pub const ORD_COLUMN: &str = "__ord";

/// The shard-local name of one hash partition of `table`.
pub fn partition_table_name(table: &str, p: u32) -> String {
    format!("{table}__p{p}")
}

/// One FROM alias resolved against the coordinator catalog.
#[derive(Debug, Clone)]
pub struct AliasInfo {
    /// The alias as written in the query.
    pub alias: String,
    /// The base table it names.
    pub table: String,
    /// The base table's schema (without [`ORD_COLUMN`]).
    pub schema: SchemaRef,
    /// How the table is hash-partitioned across shards.
    pub map: PartitionMap,
    /// The AND of predicate conjuncts that reference only this alias;
    /// pushed into fragments so shards pre-filter before shipping.
    pub local_pred: Option<Expr>,
}

impl AliasInfo {
    /// The base (unqualified) column name for a qualified name like
    /// `"E.did"`.
    pub fn base_col(qualified: &str) -> &str {
        match qualified.split_once('.') {
            Some((_, rest)) => rest,
            None => qualified,
        }
    }

    /// Index of the qualified column in the base schema.
    pub fn col_index(&self, qualified: &str) -> Result<usize, DistError> {
        self.schema
            .resolve(Self::base_col(qualified))
            .map_err(DistError::Storage)
    }
}

/// A pure equi-join edge between two aliases: the conjuncts
/// `a.col = b.col` joining them, with qualified column names.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Index of one alias in [`DistPlan::aliases`].
    pub a: usize,
    /// Index of the other.
    pub b: usize,
    /// Qualified `(a_col, b_col)` pairs, one per equality conjunct.
    pub keys: Vec<(String, String)>,
}

impl Edge {
    /// The key pairs oriented so the first element belongs to `from`.
    pub fn keys_from(&self, from: usize) -> Vec<(&str, &str)> {
        if from == self.a {
            self.keys
                .iter()
                .map(|(x, y)| (x.as_str(), y.as_str()))
                .collect()
        } else {
            self.keys
                .iter()
                .map(|(x, y)| (y.as_str(), x.as_str()))
                .collect()
        }
    }

    /// The alias on the other end from `from`.
    pub fn other(&self, from: usize) -> usize {
        if from == self.a {
            self.b
        } else {
            self.a
        }
    }
}

/// The analyzed shape of a query for distributed execution.
#[derive(Debug, Clone)]
pub struct DistPlan {
    /// One entry per FROM item, in query order.
    pub aliases: Vec<AliasInfo>,
    /// Pure equi-join edges between aliases (at most one edge per alias
    /// pair; multi-column joins carry several key pairs on one edge).
    pub edges: Vec<Edge>,
}

impl DistPlan {
    /// Resolves and classifies `query` against `catalog`. Fails with
    /// [`DistError::Unsupported`] when a FROM item is not a base table.
    pub fn analyze(
        query: &JoinQuery,
        catalog: &Catalog,
        shards: u32,
    ) -> Result<DistPlan, DistError> {
        let mut aliases = Vec::with_capacity(query.from.len());
        for item in &query.from {
            let table = match catalog
                .resolve(&item.relation)
                .map_err(|e| DistError::Unsupported(e.to_string()))?
            {
                RelationKind::Base(t) => t,
                other => {
                    return Err(DistError::Unsupported(format!(
                        "FROM item {} is not a base table ({other:?})",
                        item.relation
                    )))
                }
            };
            let map = catalog
                .partitioning(&item.relation)
                .map(|m| PartitionMap::new(m.column, shards))
                .unwrap_or_else(|| PartitionMap::new(0, shards));
            aliases.push(AliasInfo {
                alias: item.alias.clone(),
                table: item.relation.clone(),
                schema: table.schema().clone(),
                map,
                local_pred: None,
            });
        }

        let mut edges: Vec<Edge> = Vec::new();
        if let Some(pred) = &query.predicate {
            for conjunct in analysis::split_conjuncts(pred) {
                let referenced = referenced_aliases(&conjunct, &aliases);
                match referenced.len() {
                    0 | 1 => {
                        // Constant or single-alias conjuncts push down
                        // into that alias's fragments. Constant
                        // conjuncts attach to alias 0 (any would do).
                        let idx = referenced
                            .into_iter()
                            .next()
                            .unwrap_or(0)
                            .min(aliases.len().saturating_sub(1));
                        if let Some(info) = aliases.get_mut(idx) {
                            info.local_pred = Some(match info.local_pred.take() {
                                Some(p) => p.and(conjunct),
                                None => conjunct,
                            });
                        }
                    }
                    2 => {
                        // Only a *pure* column equality becomes a
                        // reduction edge; anything else (inequalities,
                        // ORs, arithmetic) is left for the final local
                        // join — reduction must never over-filter.
                        if let Some((qa, qb)) = pure_equi(&conjunct, &aliases) {
                            let (ia, qa_col) = qa;
                            let (ib, qb_col) = qb;
                            let (a, b, ka, kb) = if ia <= ib {
                                (ia, ib, qa_col, qb_col)
                            } else {
                                (ib, ia, qb_col, qa_col)
                            };
                            match edges.iter_mut().find(|e| e.a == a && e.b == b) {
                                Some(e) => e.keys.push((ka, kb)),
                                None => edges.push(Edge {
                                    a,
                                    b,
                                    keys: vec![(ka, kb)],
                                }),
                            }
                        }
                    }
                    _ => {
                        // 3+ aliases: evaluated by the final local join.
                    }
                }
            }
        }
        Ok(DistPlan { aliases, edges })
    }

    /// Edges incident to alias `v`.
    pub fn edges_of(&self, v: usize) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.a == v || e.b == v)
    }

    /// Whether the equi-join graph is acyclic (a forest over aliases) —
    /// the precondition for the Yannakakis full reducer. Each alias
    /// pair contributes one edge regardless of how many key columns it
    /// carries.
    pub fn is_acyclic(&self) -> bool {
        let n = self.aliases.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while parent[r] != r {
                r = parent[r];
            }
            let mut c = x;
            while parent[c] != c {
                let next = parent[c];
                parent[c] = r;
                c = next;
            }
            r
        }
        for e in &self.edges {
            let ra = find(&mut parent, e.a);
            let rb = find(&mut parent, e.b);
            if ra == rb {
                return false;
            }
            parent[ra] = rb;
        }
        true
    }

    /// The alias with the fewest base-table rows — the reduction
    /// driver. Ties break on alias order for determinism.
    pub fn driver(&self, catalog: &Catalog) -> usize {
        let mut best = 0;
        let mut best_rows = u64::MAX;
        for (i, info) in self.aliases.iter().enumerate() {
            let rows = catalog
                .table(&info.table)
                .map(|t| t.row_count())
                .unwrap_or(u64::MAX);
            if rows < best_rows {
                best_rows = rows;
                best = i;
            }
        }
        best
    }

    /// Breadth-first visit order from `start` along equi-join edges:
    /// each later entry lists the alias plus every edge connecting it
    /// to an already-visited alias. Aliases unreachable from `start`
    /// get no edges (they ship whole).
    pub fn reduction_order(&self, start: usize) -> Vec<(usize, Vec<Edge>)> {
        let n = self.aliases.len();
        let mut visited = vec![false; n];
        let mut out: Vec<(usize, Vec<Edge>)> = vec![(start, Vec::new())];
        visited[start] = true;
        loop {
            // Deterministic: lowest-index unvisited alias adjacent to
            // the visited set.
            let next =
                (0..n).find(|&v| !visited[v] && self.edges_of(v).any(|e| visited[e.other(v)]));
            match next {
                Some(v) => {
                    let incoming: Vec<Edge> = self
                        .edges_of(v)
                        .filter(|e| visited[e.other(v)])
                        .cloned()
                        .collect();
                    visited[v] = true;
                    out.push((v, incoming));
                }
                None => break,
            }
        }
        for (v, seen) in visited.iter().enumerate() {
            if !seen {
                out.push((v, Vec::new()));
            }
        }
        out
    }
}

/// Alias indices whose columns appear in `e`.
fn referenced_aliases(e: &Expr, aliases: &[AliasInfo]) -> BTreeSet<usize> {
    analysis::columns_of(e)
        .iter()
        .filter_map(|c| {
            let prefix = c.split_once('.').map(|(a, _)| a).unwrap_or(c);
            aliases.iter().position(|info| info.alias == prefix)
        })
        .collect()
}

/// If `e` is exactly `A.x = B.y` for two distinct aliases, the
/// `(alias index, qualified column)` pair for each side.
#[allow(clippy::type_complexity)]
fn pure_equi(e: &Expr, aliases: &[AliasInfo]) -> Option<((usize, String), (usize, String))> {
    let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = e
    else {
        return None;
    };
    let (Expr::Column(l), Expr::Column(r)) = (left.as_ref(), right.as_ref()) else {
        return None;
    };
    let la = l.split_once('.').map(|(a, _)| a)?;
    let ra = r.split_once('.').map(|(a, _)| a)?;
    let li = aliases.iter().position(|i| i.alias == la)?;
    let ri = aliases.iter().position(|i| i.alias == ra)?;
    if li == ri {
        return None;
    }
    Some(((li, l.clone()), (ri, r.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_expr::col;
    use fj_storage::{DataType, TableBuilder, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, cols) in [
            ("A", vec!["x", "y"]),
            ("B", vec!["y", "z"]),
            ("C", vec!["z", "w"]),
        ] {
            let mut b = TableBuilder::new(name);
            for c in &cols {
                b = b.column(*c, DataType::Int);
            }
            for i in 0..4i64 {
                b = b.row(cols.iter().map(|_| Value::Int(i)).collect());
            }
            cat.add_table(b.build().unwrap().into_ref());
        }
        cat
    }

    fn chain_query() -> JoinQuery {
        JoinQuery::new(vec![
            fj_algebra::FromItem::new("A", "a"),
            fj_algebra::FromItem::new("B", "b"),
            fj_algebra::FromItem::new("C", "c"),
        ])
        .with_predicate(
            col("a.y")
                .eq(col("b.y"))
                .and(col("b.z").eq(col("c.z")))
                .and(col("a.x").lt(fj_expr::lit(3))),
        )
    }

    #[test]
    fn chain_splits_into_edges_and_local_pred() {
        let plan = DistPlan::analyze(&chain_query(), &catalog(), 3).unwrap();
        assert_eq!(plan.aliases.len(), 3);
        assert_eq!(plan.edges.len(), 2);
        assert!(plan.aliases[0].local_pred.is_some());
        assert!(plan.aliases[1].local_pred.is_none());
        assert!(plan.is_acyclic());
    }

    #[test]
    fn cycle_is_detected() {
        let q = JoinQuery::new(vec![
            fj_algebra::FromItem::new("A", "a"),
            fj_algebra::FromItem::new("B", "b"),
            fj_algebra::FromItem::new("C", "c"),
        ])
        .with_predicate(
            col("a.y")
                .eq(col("b.y"))
                .and(col("b.z").eq(col("c.z")))
                .and(col("c.w").eq(col("a.x"))),
        );
        let plan = DistPlan::analyze(&q, &catalog(), 2).unwrap();
        assert_eq!(plan.edges.len(), 3);
        assert!(!plan.is_acyclic());
    }

    #[test]
    fn non_equi_conjuncts_do_not_become_edges() {
        let q = JoinQuery::new(vec![
            fj_algebra::FromItem::new("A", "a"),
            fj_algebra::FromItem::new("B", "b"),
        ])
        .with_predicate(col("a.y").lt(col("b.y")));
        let plan = DistPlan::analyze(&q, &catalog(), 2).unwrap();
        assert!(plan.edges.is_empty());
    }

    #[test]
    fn reduction_order_covers_all_aliases() {
        let plan = DistPlan::analyze(&chain_query(), &catalog(), 3).unwrap();
        let order = plan.reduction_order(2);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0].0, 2);
        assert!(order[1..].iter().all(|(_, edges)| !edges.is_empty()));
    }

    #[test]
    fn views_are_unsupported() {
        let mut cat = catalog();
        cat.add_view(fj_algebra::ViewDef {
            name: "V".into(),
            plan: fj_algebra::LogicalPlan::scan("A", "a").into_ref(),
            schema: fj_storage::Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)])
                .into_ref(),
        });
        let q = JoinQuery::new(vec![fj_algebra::FromItem::new("V", "v")]);
        assert!(matches!(
            DistPlan::analyze(&q, &cat, 2),
            Err(DistError::Unsupported(_))
        ));
    }
}
