//! The shipping-strategy menu for partitioned execution, with the
//! predicted network cost of each — the same per-message/per-byte
//! weighting the paper's §5.1 two-site model (`fj-distsim`) uses, lifted
//! to N hash partitions.
//!
//! Predictions deliberately mirror the optimizer's assumptions (uniform
//! keys, containment of join values) rather than the network's ground
//! truth; the `dist` reproduce experiment reconciles them against the
//! bytes actually measured on the wire.

use crate::plan::DistPlan;
use fj_algebra::Catalog;
use fj_storage::BloomFilter;

/// How reduction filters move between shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShipStrategy {
    /// Ship every (locally pre-filtered) partition whole; join at the
    /// coordinator. The R* "fetch inner" baseline.
    ShipWhole,
    /// Gather the driver, then fetch each matching inner group with one
    /// keyed fragment per distinct join key — R* "fetch matches":
    /// message-heavy, byte-light.
    FetchMatches,
    /// Gather the driver, ship its exact distinct key set to each inner
    /// partition, gather only survivors — the SDD-1 semijoin program.
    Semijoin,
    /// The lossy variant: ship a Bloom filter of the key set. False
    /// positives cost shipped bytes, never correctness.
    BloomSemijoin,
    /// Yannakakis full reducer over the join tree (acyclic queries
    /// only): an up sweep of key sets, then a down sweep, so every
    /// gathered row is guaranteed to contribute to the result.
    FullReducer,
    /// Pick the cheapest applicable strategy by predicted network cost.
    Auto,
}

impl ShipStrategy {
    /// The concrete (non-Auto) strategies, in menu order.
    pub const ALL: [ShipStrategy; 5] = [
        ShipStrategy::ShipWhole,
        ShipStrategy::FetchMatches,
        ShipStrategy::Semijoin,
        ShipStrategy::BloomSemijoin,
        ShipStrategy::FullReducer,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ShipStrategy::ShipWhole => "ship-whole",
            ShipStrategy::FetchMatches => "fetch-matches",
            ShipStrategy::Semijoin => "semijoin",
            ShipStrategy::BloomSemijoin => "bloom-semijoin",
            ShipStrategy::FullReducer => "full-reducer",
            ShipStrategy::Auto => "auto",
        }
    }
}

/// Predicted network cost of one strategy on one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPrediction {
    /// The strategy predicted.
    pub strategy: ShipStrategy,
    /// Request/reply exchanges expected.
    pub messages: f64,
    /// Payload bytes expected on the wire, both directions.
    pub bytes: f64,
    /// Scalar cost under the catalog's network model.
    pub cost: f64,
}

/// Per-alias size facts the predictions work from.
struct AliasFacts {
    bytes: f64,
    /// Distinct count per base column (containment assumption input).
    distinct: Vec<f64>,
    /// Average wire width per value, per base column.
    col_width: Vec<f64>,
}

fn facts(plan: &DistPlan, catalog: &Catalog) -> Vec<AliasFacts> {
    plan.aliases
        .iter()
        .map(|info| {
            let table = catalog.table(&info.table).ok();
            let (bytes, distinct, col_width) = match table {
                Some(t) => {
                    let n = t.row_count() as f64;
                    let total: u64 = t.rows().iter().map(|r| r.wire_width() as u64).sum();
                    let stats = t.stats();
                    let distinct = stats
                        .columns
                        .iter()
                        .map(|c| (c.distinct.max(1)) as f64)
                        .collect();
                    let widths = (0..info.schema.arity())
                        .map(|i| {
                            if t.rows().is_empty() {
                                9.0
                            } else {
                                t.rows()
                                    .iter()
                                    .map(|r| r.value(i).wire_width() as f64)
                                    .sum::<f64>()
                                    / n.max(1.0)
                            }
                        })
                        .collect();
                    (total as f64, distinct, widths)
                }
                None => (0.0, vec![], vec![]),
            };
            AliasFacts {
                bytes,
                distinct,
                col_width,
            }
        })
        .collect()
}

/// Predicts every applicable strategy for `plan`, cheapest first.
/// `FullReducer` is omitted for cyclic join graphs and edge-less
/// queries; the driver-based strategies degrade to ship-whole per
/// unreachable alias exactly as the executor does.
pub fn predict_all(
    plan: &DistPlan,
    catalog: &Catalog,
    shards: u32,
    bloom_fp: f64,
) -> Vec<CostPrediction> {
    let f = facts(plan, catalog);
    // A catalog defaults to the free network of the purely-local
    // setting, but shipping over real shards is never free: weight by
    // LAN unless an explicit model says otherwise.
    let mut net = catalog.network();
    if net.per_message == 0.0 && net.per_byte == 0.0 {
        net = fj_algebra::NetworkModel::lan();
    }
    let s = shards as f64;
    let driver = plan.driver(catalog);
    let order = plan.reduction_order(driver);

    let mut out: Vec<CostPrediction> = Vec::new();
    for strategy in ShipStrategy::ALL {
        if strategy == ShipStrategy::FullReducer && (!plan.is_acyclic() || plan.edges.is_empty()) {
            continue;
        }
        let mut messages = 0.0;
        let mut bytes = 0.0;
        match strategy {
            ShipStrategy::ShipWhole => {
                for facts in &f {
                    messages += s;
                    bytes += facts.bytes;
                }
            }
            ShipStrategy::FetchMatches | ShipStrategy::Semijoin | ShipStrategy::BloomSemijoin => {
                // Driver ships whole; every reachable alias is reduced
                // through its first incoming edge under the containment
                // assumption: the fraction of B's join values matched
                // is min(1, d_driverside / d_B).
                messages += s;
                bytes += f[driver].bytes;
                for (v, edges) in &order[1..] {
                    let fv = &f[*v];
                    let Some(edge) = edges.first() else {
                        messages += s;
                        bytes += fv.bytes;
                        continue;
                    };
                    let from = edge.other(*v);
                    let (from_col, to_col) = edge.keys_from(from)[0];
                    let from_info = &plan.aliases[from];
                    let to_info = &plan.aliases[*v];
                    let d_from = from_info
                        .col_index(from_col)
                        .ok()
                        .and_then(|i| f[from].distinct.get(i).copied())
                        .unwrap_or(1.0);
                    let to_idx = to_info.col_index(to_col).ok();
                    let d_to = to_idx
                        .and_then(|i| fv.distinct.get(i).copied())
                        .unwrap_or(1.0);
                    let key_w = from_info
                        .col_index(from_col)
                        .ok()
                        .and_then(|i| f[from].col_width.get(i).copied())
                        .unwrap_or(9.0);
                    let sel = (d_from / d_to).min(1.0);
                    let survivor_bytes = sel * fv.bytes;
                    match strategy {
                        ShipStrategy::FetchMatches => {
                            // One keyed fragment per distinct driver
                            // key, routed to one shard when the table
                            // is partitioned on the join column.
                            let routed = to_idx == Some(to_info.map.column);
                            let targets = if routed { 1.0 } else { s };
                            messages += d_from * targets;
                            bytes += d_from * targets * key_w + survivor_bytes;
                        }
                        ShipStrategy::Semijoin => {
                            messages += s;
                            bytes += s * d_from * key_w + survivor_bytes;
                        }
                        ShipStrategy::BloomSemijoin => {
                            let (n_bits, _) = BloomFilter::sizing(d_from as u64, bloom_fp);
                            let filter_bytes = (n_bits / 8) as f64;
                            messages += s;
                            bytes += s * filter_bytes + (sel + bloom_fp * (1.0 - sel)) * fv.bytes;
                        }
                        _ => unreachable!(),
                    }
                }
            }
            ShipStrategy::FullReducer => {
                // Two semijoin sweeps per edge (keys up, keys down),
                // then only contributing rows ship. "Contributing" is
                // approximated by the tightest pairwise containment
                // selectivity seen on any incident edge.
                for edge in &plan.edges {
                    for (a_col, b_col) in &edge.keys {
                        let da = plan.aliases[edge.a]
                            .col_index(a_col)
                            .ok()
                            .and_then(|i| f[edge.a].distinct.get(i).copied())
                            .unwrap_or(1.0);
                        let db = plan.aliases[edge.b]
                            .col_index(b_col)
                            .ok()
                            .and_then(|i| f[edge.b].distinct.get(i).copied())
                            .unwrap_or(1.0);
                        let key_w = 9.0;
                        messages += 2.0 * s;
                        bytes += s * (da.min(db)) * key_w * 2.0;
                    }
                }
                for (v, facts) in f.iter().enumerate() {
                    let sel = plan
                        .edges_of(v)
                        .filter_map(|e| {
                            let (my_col, other_col) = e.keys_from(v)[0];
                            let o = e.other(v);
                            let dm = plan.aliases[v]
                                .col_index(my_col)
                                .ok()
                                .and_then(|i| f[v].distinct.get(i).copied())?;
                            let d_o = plan.aliases[o]
                                .col_index(other_col)
                                .ok()
                                .and_then(|i| f[o].distinct.get(i).copied())?;
                            Some((d_o / dm).min(1.0))
                        })
                        .fold(1.0f64, f64::min);
                    messages += s;
                    bytes += sel * facts.bytes;
                }
            }
            ShipStrategy::Auto => unreachable!(),
        }
        out.push(CostPrediction {
            strategy,
            messages,
            bytes,
            cost: messages * net.per_message + bytes * net.per_byte,
        });
    }
    out.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}
