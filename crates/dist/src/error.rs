//! Typed failures of the distributed coordinator.

use fj_exec::{ExecError, InterruptReason};
use fj_net::NetError;
use fj_optimizer::OptError;
use fj_storage::StorageError;
use std::fmt;

/// Everything that can go wrong planning or running a partitioned
/// distributed query.
#[derive(Debug)]
pub enum DistError {
    /// A network exchange failed in a non-retryable way.
    Net(NetError),
    /// Rebuilding a reduced table failed.
    Storage(StorageError),
    /// The coordinator-local optimization/execution of the final join
    /// failed.
    Query(OptError),
    /// A coordinator-side exchange operator failed.
    Exec(ExecError),
    /// The query shape is not supported by distributed execution (e.g.
    /// a FROM item that is not a base table).
    Unsupported(String),
    /// Every replica of a partition refused or failed the request —
    /// failover ran out of places to go.
    NoHealthyReplica {
        /// The partition whose replicas were exhausted.
        shard: u32,
        /// The last per-replica failure, for diagnosis.
        detail: String,
    },
    /// The distributed query was torn down by its interrupt.
    Interrupted(InterruptReason),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Net(e) => write!(f, "network: {e}"),
            DistError::Storage(e) => write!(f, "storage: {e}"),
            DistError::Query(e) => write!(f, "query: {e}"),
            DistError::Exec(e) => write!(f, "exec: {e}"),
            DistError::Unsupported(what) => write!(f, "unsupported for distribution: {what}"),
            DistError::NoHealthyReplica { shard, detail } => {
                write!(f, "no healthy replica for shard {shard}: {detail}")
            }
            DistError::Interrupted(reason) => write!(f, "interrupted: {reason}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<NetError> for DistError {
    fn from(e: NetError) -> DistError {
        DistError::Net(e)
    }
}

impl From<StorageError> for DistError {
    fn from(e: StorageError) -> DistError {
        DistError::Storage(e)
    }
}

impl From<OptError> for DistError {
    fn from(e: OptError) -> DistError {
        DistError::Query(e)
    }
}

impl From<ExecError> for DistError {
    fn from(e: ExecError) -> DistError {
        DistError::Exec(e)
    }
}
