//! End-to-end distributed execution over real `fj-net` servers on
//! ephemeral loopback ports: every shipping strategy must produce the
//! same sorted row multiset as the serial oracle, a shard entering
//! drain mid-query must be ridden through by failover with zero
//! client-visible errors, and cancellation must tear the query down
//! with a typed interrupt.

use fj_algebra::{Catalog, FromItem, JoinQuery, PartitionMap};
use fj_cluster::ShardMap;
use fj_core::Database;
use fj_dist::{DistConfig, DistCoordinator, DistError, ShipStrategy};
use fj_expr::{col, lit};
use fj_net::{Server, ServerConfig};
use fj_storage::{DataType, TableBuilder, Tuple};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// `n` empty shard servers; the coordinator scatters tables into them.
fn fleet(n: usize) -> (Vec<Server>, Vec<SocketAddr>) {
    let servers: Vec<Server> = (0..n)
        .map(|_| Server::bind("127.0.0.1:0", Catalog::new(), ServerConfig::default()).unwrap())
        .collect();
    let addrs = servers.iter().map(|s| s.local_addr()).collect();
    (servers, addrs)
}

/// A three-table chain with skewed key overlap so each strategy
/// actually filters something, plus indexes to exercise rebuild.
fn chain_catalog(rows: i64) -> Catalog {
    let mut cat = Catalog::new();
    let mut a = TableBuilder::new("A")
        .column("x", DataType::Int)
        .column("y", DataType::Int)
        .rows((0..rows).map(|i| vec![i.into(), (i % 23).into()]))
        .build()
        .unwrap();
    a.create_hash_index(1).unwrap();
    cat.add_table(a.into_ref());
    let mut b = TableBuilder::new("B")
        .column("y", DataType::Int)
        .column("z", DataType::Int)
        .rows((0..rows).map(|i| vec![(i % 61).into(), (i % 17).into()]))
        .build()
        .unwrap();
    b.create_btree_index(1).unwrap();
    cat.add_table(b.into_ref());
    cat.add_table(
        TableBuilder::new("C")
            .column("z", DataType::Int)
            .column("w", DataType::Int)
            .rows((0..rows).map(|i| vec![(i % 97).into(), i.into()]))
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.set_partitioning("A", PartitionMap::new(0, 1));
    cat.set_partitioning("B", PartitionMap::new(1, 1));
    cat
}

fn chain_query() -> JoinQuery {
    JoinQuery::new(vec![
        FromItem::new("A", "a"),
        FromItem::new("B", "b"),
        FromItem::new("C", "c"),
    ])
    .with_predicate(
        col("a.y")
            .eq(col("b.y"))
            .and(col("b.z").eq(col("c.z")))
            .and(col("a.x").lt(lit(40))),
    )
}

#[test]
fn every_strategy_matches_the_serial_oracle() {
    let cat = chain_catalog(80);
    let expected = sorted(
        Database::with_catalog(cat.clone())
            .execute(&chain_query())
            .unwrap()
            .rows,
    );
    assert!(!expected.is_empty(), "fixture must produce rows");
    let (_servers, addrs) = fleet(3);
    let coord =
        DistCoordinator::deploy(cat, ShardMap::new(&addrs, 3, 1), DistConfig::default()).unwrap();
    assert!(coord.deploy_stats.messages > 0);
    for strategy in ShipStrategy::ALL.into_iter().chain([ShipStrategy::Auto]) {
        let out = coord
            .execute_with_config(&chain_query(), Default::default(), strategy)
            .unwrap();
        assert_eq!(
            sorted(out.result.rows),
            expected,
            "strategy {} diverged from the serial oracle",
            strategy.name()
        );
        assert!(out.stats.messages > 0, "{}", strategy.name());
        assert_eq!(out.stats.failovers, 0, "{}", strategy.name());
    }
}

#[test]
fn reductions_ship_fewer_bytes_than_ship_whole() {
    let cat = chain_catalog(120);
    let (_servers, addrs) = fleet(3);
    let coord =
        DistCoordinator::deploy(cat, ShardMap::new(&addrs, 3, 1), DistConfig::default()).unwrap();
    let whole = coord
        .execute_with_config(&chain_query(), Default::default(), ShipStrategy::ShipWhole)
        .unwrap();
    for strategy in [ShipStrategy::Semijoin, ShipStrategy::FullReducer] {
        let out = coord
            .execute_with_config(&chain_query(), Default::default(), strategy)
            .unwrap();
        assert!(
            out.stats.bytes_received < whole.stats.bytes_received,
            "{} gathered {} bytes, ship-whole {}",
            strategy.name(),
            out.stats.bytes_received,
            whole.stats.bytes_received
        );
    }
}

#[test]
fn auto_picks_the_cheapest_prediction_and_reports_it() {
    let cat = chain_catalog(60);
    let (_servers, addrs) = fleet(2);
    let coord =
        DistCoordinator::deploy(cat, ShardMap::new(&addrs, 2, 1), DistConfig::default()).unwrap();
    let out = coord.execute(&chain_query()).unwrap();
    assert_ne!(out.strategy, ShipStrategy::Auto, "Auto must resolve");
    let predicted = out.predicted.expect("Auto carries its prediction");
    assert_eq!(predicted.strategy, out.strategy);
    assert!(predicted.cost.is_finite());
}

#[test]
fn drain_mid_query_rides_through_on_replicas() {
    let cat = chain_catalog(100);
    let expected = sorted(
        Database::with_catalog(cat.clone())
            .execute(&chain_query())
            .unwrap()
            .rows,
    );
    for strategy in [
        ShipStrategy::Semijoin,
        ShipStrategy::BloomSemijoin,
        ShipStrategy::FullReducer,
    ] {
        let (servers, addrs) = fleet(3);
        // Replication 2: every partition also lives on the next
        // server, so draining any single server leaves every partition
        // reachable.
        let mut coord = DistCoordinator::deploy(
            cat.clone(),
            ShardMap::new(&addrs, 3, 2),
            DistConfig::default(),
        )
        .unwrap();
        let servers = Arc::new(servers);
        let drained = Arc::new(AtomicBool::new(false));
        {
            let drained = drained.clone();
            let servers = servers.clone();
            coord.set_phase_hook(Box::new(move |phase| {
                if phase.starts_with("reduce:") && !drained.swap(true, Ordering::SeqCst) {
                    servers[0].begin_drain();
                }
            }));
        }
        let out = coord
            .execute_with_config(&chain_query(), Default::default(), strategy)
            .unwrap_or_else(|e| panic!("{} failed under drain: {e}", strategy.name()));
        assert_eq!(
            sorted(out.result.rows),
            expected,
            "{} diverged under drain",
            strategy.name()
        );
        assert!(
            out.stats.failovers > 0,
            "{} never exercised failover",
            strategy.name()
        );
    }
}

#[test]
fn exhausted_replicas_surface_a_typed_error() {
    let cat = chain_catalog(40);
    let (servers, addrs) = fleet(2);
    let coord =
        DistCoordinator::deploy(cat, ShardMap::new(&addrs, 2, 1), DistConfig::default()).unwrap();
    for s in &servers {
        s.begin_drain();
    }
    let err = coord
        .execute_with_config(&chain_query(), Default::default(), ShipStrategy::ShipWhole)
        .unwrap_err();
    assert!(
        matches!(err, DistError::NoHealthyReplica { .. }),
        "got {err}"
    );
}

#[test]
fn cancellation_tears_the_query_down() {
    let cat = chain_catalog(200);
    let (_servers, addrs) = fleet(3);
    let mut coord =
        DistCoordinator::deploy(cat, ShardMap::new(&addrs, 3, 1), DistConfig::default()).unwrap();
    let handle = coord.handle();
    coord.set_phase_hook(Box::new(move |phase| {
        if phase.starts_with("gather:") {
            handle.cancel();
        }
    }));
    let err = coord
        .execute_with_config(&chain_query(), Default::default(), ShipStrategy::Semijoin)
        .unwrap_err();
    assert!(matches!(err, DistError::Interrupted(_)), "got {err}");
}

#[test]
fn cross_alias_self_join_survives_reduction() {
    // Two aliases of the same table must be merged back into one
    // superset table before the final local join.
    let cat = chain_catalog(60);
    let expected_query = JoinQuery::new(vec![FromItem::new("A", "a1"), FromItem::new("A", "a2")])
        .with_predicate(
            col("a1.y")
                .eq(col("a2.y"))
                .and(col("a1.x").lt(lit(10)))
                .and(col("a2.x").lt(lit(30))),
        );
    let expected = sorted(
        Database::with_catalog(cat.clone())
            .execute(&expected_query)
            .unwrap()
            .rows,
    );
    let (_servers, addrs) = fleet(3);
    let coord =
        DistCoordinator::deploy(cat, ShardMap::new(&addrs, 3, 1), DistConfig::default()).unwrap();
    for strategy in [ShipStrategy::ShipWhole, ShipStrategy::Semijoin] {
        let out = coord
            .execute_with_config(&expected_query, Default::default(), strategy)
            .unwrap();
        assert_eq!(sorted(out.result.rows), expected, "{}", strategy.name());
    }
}

#[test]
fn fragment_deadline_is_enforced() {
    let cat = chain_catalog(60);
    let (_servers, addrs) = fleet(2);
    let coord = DistCoordinator::deploy(
        cat,
        ShardMap::new(&addrs, 2, 1),
        DistConfig {
            fragment_deadline: Duration::from_millis(1),
            ..DistConfig::default()
        },
    )
    .unwrap();
    // A 1ms deadline may or may not fire on a tiny query; what matters
    // is that an expired deadline surfaces as a typed error, never a
    // hang or panic.
    match coord.execute_with_config(&chain_query(), Default::default(), ShipStrategy::ShipWhole) {
        Ok(out) => assert!(!out.result.rows.is_empty()),
        Err(DistError::Net(e)) => {
            assert!(format!("{e}").contains("deadline"), "got {e}");
        }
        Err(e) => panic!("unexpected error class: {e}"),
    }
}
