//! Aggregate functions: COUNT, SUM, AVG, MIN, MAX.
//!
//! The paper's motivating view (`DepAvgSal`) is a grouped AVG; aggregate
//! evaluation must survive the magic rewriting unchanged, so semantics
//! here follow SQL: NULLs are ignored by every function, `COUNT(*)`
//! counts rows, and aggregates over empty groups yield NULL (COUNT yields
//! 0).

use crate::error::ExprError;
use fj_storage::{DataType, Value};

/// The aggregate functions supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(expr)` / `COUNT(*)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl AggFunc {
    /// SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Result type given the input type.
    pub fn result_type(self, input: DataType) -> DataType {
        match self {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Double,
            AggFunc::Sum => match input {
                DataType::Int => DataType::Int,
                _ => DataType::Double,
            },
            AggFunc::Min | AggFunc::Max => input,
        }
    }
}

/// An aggregate call: function, input expression (as a *name* resolved by
/// the plan layer), and output column name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggCall {
    /// The function.
    pub func: AggFunc,
    /// Input column name; `None` means `COUNT(*)`.
    pub input: Option<String>,
    /// Name of the output column (e.g. `"avgsal"`).
    pub output: String,
}

impl AggCall {
    /// `func(input) AS output`.
    pub fn new(func: AggFunc, input: impl Into<String>, output: impl Into<String>) -> AggCall {
        AggCall {
            func,
            input: Some(input.into()),
            output: output.into(),
        }
    }

    /// `COUNT(*) AS output`.
    pub fn count_star(output: impl Into<String>) -> AggCall {
        AggCall {
            func: AggFunc::Count,
            input: None,
            output: output.into(),
        }
    }
}

impl std::fmt::Display for AggCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.input {
            Some(c) => write!(f, "{}({c}) AS {}", self.func.name(), self.output),
            None => write!(f, "{}(*) AS {}", self.func.name(), self.output),
        }
    }
}

/// Running state for one aggregate over one group.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    count: u64,
    sum: f64,
    int_sum: i64,
    all_int: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Accumulator {
        Accumulator {
            func,
            count: 0,
            sum: 0.0,
            int_sum: 0,
            all_int: true,
            min: None,
            max: None,
        }
    }

    /// Feeds one input value. For `COUNT(*)` feed any non-null marker
    /// (the executor feeds `Value::Bool(true)`).
    pub fn update(&mut self, v: &Value) -> Result<(), ExprError> {
        if v.is_null() {
            return Ok(()); // SQL aggregates ignore NULLs
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Int(i) => {
                    self.int_sum = self.int_sum.wrapping_add(*i);
                    self.sum += *i as f64;
                }
                Value::Double(d) => {
                    self.all_int = false;
                    self.sum += d;
                }
                other => {
                    return Err(ExprError::TypeMismatch {
                        op: self.func.name().into(),
                        detail: format!("non-numeric input {other}"),
                    })
                }
            },
            AggFunc::Min => {
                if self.min.as_ref().is_none_or(|m| v < m) {
                    self.min = Some(v.clone());
                }
            }
            AggFunc::Max => {
                if self.max.as_ref().is_none_or(|m| v > m) {
                    self.max = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Final result for the group.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.all_int {
                    Value::Int(self.int_sum)
                } else {
                    Value::Double(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Double(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, vals: &[Value]) -> Value {
        let mut acc = Accumulator::new(func);
        for v in vals {
            acc.update(v).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn avg_of_salaries() {
        let vals = [Value::Double(1000.0), Value::Double(3000.0)];
        assert_eq!(run(AggFunc::Avg, &vals), Value::Double(2000.0));
    }

    #[test]
    fn avg_mixes_ints_and_doubles() {
        let vals = [Value::Int(1), Value::Double(2.0)];
        assert_eq!(run(AggFunc::Avg, &vals), Value::Double(1.5));
    }

    #[test]
    fn sum_stays_integer_for_integers() {
        let vals = [Value::Int(2), Value::Int(3)];
        assert_eq!(run(AggFunc::Sum, &vals), Value::Int(5));
        let vals = [Value::Int(2), Value::Double(3.0)];
        assert_eq!(run(AggFunc::Sum, &vals), Value::Double(5.0));
    }

    #[test]
    fn nulls_ignored() {
        let vals = [Value::Null, Value::Int(4), Value::Null];
        assert_eq!(run(AggFunc::Count, &vals), Value::Int(1));
        assert_eq!(run(AggFunc::Sum, &vals), Value::Int(4));
        assert_eq!(run(AggFunc::Avg, &vals), Value::Double(4.0));
    }

    #[test]
    fn empty_group_semantics() {
        assert_eq!(run(AggFunc::Count, &[]), Value::Int(0));
        assert_eq!(run(AggFunc::Sum, &[]), Value::Null);
        assert_eq!(run(AggFunc::Avg, &[]), Value::Null);
        assert_eq!(run(AggFunc::Min, &[]), Value::Null);
    }

    #[test]
    fn min_max_on_strings() {
        let vals = [
            Value::Str("pear".into()),
            Value::Str("apple".into()),
            Value::Str("fig".into()),
        ];
        assert_eq!(run(AggFunc::Min, &vals), Value::Str("apple".into()));
        assert_eq!(run(AggFunc::Max, &vals), Value::Str("pear".into()));
    }

    #[test]
    fn sum_rejects_strings() {
        let mut acc = Accumulator::new(AggFunc::Sum);
        assert!(acc.update(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn result_types() {
        assert_eq!(AggFunc::Count.result_type(DataType::Str), DataType::Int);
        assert_eq!(AggFunc::Avg.result_type(DataType::Int), DataType::Double);
        assert_eq!(AggFunc::Sum.result_type(DataType::Int), DataType::Int);
        assert_eq!(AggFunc::Sum.result_type(DataType::Double), DataType::Double);
        assert_eq!(AggFunc::Min.result_type(DataType::Str), DataType::Str);
    }

    #[test]
    fn display() {
        assert_eq!(
            AggCall::new(AggFunc::Avg, "E.sal", "avgsal").to_string(),
            "AVG(E.sal) AS avgsal"
        );
        assert_eq!(AggCall::count_star("n").to_string(), "COUNT(*) AS n");
    }
}
