//! # fj-expr
//!
//! Scalar expressions, predicates and aggregate functions for the
//! `filterjoin` engine.
//!
//! Expressions are built *by name* ([`Expr`], via the [`col`]/[`lit`]
//! helpers and operator methods), then **bound** against a
//! [`fj_storage::Schema`] into index-resolved [`BoundExpr`]s that
//! evaluate against tuples with SQL three-valued logic.
//!
//! The [`analysis`] module provides the predicate introspection the
//! optimizer needs: conjunct splitting, column-reference extraction, and
//! equi-join detection — the machinery behind choosing filter-set
//! attributes for a Filter Join.

pub mod agg;
pub mod analysis;
pub mod bound;
pub mod error;
pub mod expr;

pub use agg::{Accumulator, AggCall, AggFunc};
pub use analysis::{
    columns_of, conjoin, equi_join_keys, separable_conjuncts, split_conjuncts, EquiJoinKey,
};
pub use bound::BoundExpr;
pub use error::ExprError;
pub use expr::{col, lit, BinOp, Expr};
