//! Bound (index-resolved) expressions and their evaluation.
//!
//! Evaluation follows SQL three-valued logic: comparisons involving NULL
//! yield NULL; `AND`/`OR` propagate unknowns Kleene-style; a predicate
//! accepts a tuple only when it evaluates to `TRUE` (not NULL).

use crate::error::ExprError;
use crate::expr::{BinOp, Expr};
use fj_storage::{DataType, Schema, Tuple, Value};
use std::sync::Arc;

/// An expression with column references resolved to positions in a
/// specific schema. Produced by [`BoundExpr::bind`].
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Column at a tuple position.
    Column(usize),
    /// Literal.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Arc<BoundExpr>,
        /// Right operand.
        right: Arc<BoundExpr>,
    },
    /// Logical NOT.
    Not(Arc<BoundExpr>),
    /// IS NULL.
    IsNull(Arc<BoundExpr>),
}

impl BoundExpr {
    /// Resolves `expr`'s column names against `schema`.
    pub fn bind(expr: &Expr, schema: &Schema) -> Result<BoundExpr, ExprError> {
        Ok(match expr {
            Expr::Column(name) => BoundExpr::Column(schema.resolve(name)?),
            Expr::Literal(v) => BoundExpr::Literal(v.clone()),
            Expr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Arc::new(BoundExpr::bind(left, schema)?),
                right: Arc::new(BoundExpr::bind(right, schema)?),
            },
            Expr::Not(e) => BoundExpr::Not(Arc::new(BoundExpr::bind(e, schema)?)),
            Expr::IsNull(e) => BoundExpr::IsNull(Arc::new(BoundExpr::bind(e, schema)?)),
        })
    }

    /// Evaluates against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value, ExprError> {
        match self {
            BoundExpr::Column(i) => Ok(tuple.value(*i).clone()),
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Binary { op, left, right } => {
                // Short-circuit AND/OR must see three-valued semantics.
                if matches!(op, BinOp::And | BinOp::Or) {
                    return eval_logic(*op, left, right, tuple);
                }
                let l = left.eval(tuple)?;
                let r = right.eval(tuple)?;
                eval_binary(*op, &l, &r)
            }
            BoundExpr::Not(e) => match e.eval(tuple)? {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(ExprError::TypeMismatch {
                    op: "NOT".into(),
                    detail: format!("operand {other}"),
                }),
            },
            BoundExpr::IsNull(e) => Ok(Value::Bool(e.eval(tuple)?.is_null())),
        }
    }

    /// Evaluates as a predicate: `Ok(true)` iff the result is `TRUE`
    /// (NULL counts as not-satisfied, per SQL `WHERE`).
    pub fn eval_predicate(&self, tuple: &Tuple) -> Result<bool, ExprError> {
        Ok(matches!(self.eval(tuple)?, Value::Bool(true)))
    }

    /// Static result type, when inferable without data: comparisons and
    /// logic yield `Bool`; arithmetic yields `Double` if either side can
    /// be `Double`, else `Int`. Used to type projection outputs.
    pub fn result_type(&self, schema: &Schema) -> DataType {
        match self {
            BoundExpr::Column(i) => schema.column(*i).data_type,
            BoundExpr::Literal(v) => v.data_type().unwrap_or(DataType::Int),
            BoundExpr::Binary { op, left, right } => {
                if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                    DataType::Bool
                } else if *op == BinOp::Div {
                    DataType::Double
                } else {
                    match (left.result_type(schema), right.result_type(schema)) {
                        (DataType::Int, DataType::Int) => DataType::Int,
                        _ => DataType::Double,
                    }
                }
            }
            BoundExpr::Not(_) | BoundExpr::IsNull(_) => DataType::Bool,
        }
    }
}

fn eval_logic(
    op: BinOp,
    left: &BoundExpr,
    right: &BoundExpr,
    tuple: &Tuple,
) -> Result<Value, ExprError> {
    let l = left.eval(tuple)?;
    let as_tv = |v: &Value| -> Result<Option<bool>, ExprError> {
        match v {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => Err(ExprError::TypeMismatch {
                op: op.symbol().into(),
                detail: format!("logical operand {other}"),
            }),
        }
    };
    let lv = as_tv(&l)?;
    // Kleene short-circuit: FALSE AND _ = FALSE; TRUE OR _ = TRUE.
    match (op, lv) {
        (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
        (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let rv = as_tv(&right.eval(tuple)?)?;
    let out = match op {
        BinOp::And => match (lv, rv) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinOp::Or => match (lv, rv) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!("eval_logic only handles AND/OR"),
    };
    Ok(out.map(Value::Bool).unwrap_or(Value::Null))
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value, ExprError> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.cmp(r);
        let b = match op {
            BinOp::Eq => ord == std::cmp::Ordering::Equal,
            BinOp::Ne => ord != std::cmp::Ordering::Equal,
            BinOp::Lt => ord == std::cmp::Ordering::Less,
            BinOp::Le => ord != std::cmp::Ordering::Greater,
            BinOp::Gt => ord == std::cmp::Ordering::Greater,
            BinOp::Ge => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    // Arithmetic.
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let v = match op {
                BinOp::Add => a.wrapping_add(*b),
                BinOp::Sub => a.wrapping_sub(*b),
                BinOp::Mul => a.wrapping_mul(*b),
                BinOp::Div => {
                    if *b == 0 {
                        return Err(ExprError::DivisionByZero);
                    }
                    return Ok(Value::Double(*a as f64 / *b as f64));
                }
                BinOp::Mod => {
                    if *b == 0 {
                        return Err(ExprError::DivisionByZero);
                    }
                    a.rem_euclid(*b)
                }
                _ => unreachable!(),
            };
            Ok(Value::Int(v))
        }
        _ => {
            let (a, b) = match (l.as_double(), r.as_double()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(ExprError::TypeMismatch {
                        op: op.symbol().into(),
                        detail: format!("{l} {} {r}", op.symbol()),
                    })
                }
            };
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(ExprError::DivisionByZero);
                    }
                    a / b
                }
                BinOp::Mod => {
                    return Err(ExprError::TypeMismatch {
                        op: "%".into(),
                        detail: "modulo requires integers".into(),
                    })
                }
                _ => unreachable!(),
            };
            Ok(Value::Double(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use fj_storage::tuple;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("E.age", DataType::Int),
            ("E.sal", DataType::Double),
            ("E.name", DataType::Str),
        ])
    }

    fn eval(e: &Expr, t: &Tuple) -> Value {
        BoundExpr::bind(e, &schema()).unwrap().eval(t).unwrap()
    }

    #[test]
    fn comparisons() {
        let t = tuple![25, 5000.0, "ann"];
        assert_eq!(eval(&col("E.age").lt(lit(30)), &t), Value::Bool(true));
        assert_eq!(eval(&col("E.age").ge(lit(30)), &t), Value::Bool(false));
        assert_eq!(eval(&col("E.name").eq(lit("ann")), &t), Value::Bool(true));
        assert_eq!(eval(&col("E.sal").gt(col("E.age")), &t), Value::Bool(true));
    }

    #[test]
    fn arithmetic() {
        let t = tuple![7, 2.5, "x"];
        assert_eq!(eval(&col("E.age").add(lit(3)), &t), Value::Int(10));
        assert_eq!(eval(&col("E.age").mul(lit(2)), &t), Value::Int(14));
        assert_eq!(eval(&col("E.age").rem(lit(4)), &t), Value::Int(3));
        assert_eq!(eval(&col("E.sal").add(lit(1)), &t), Value::Double(3.5));
        // Integer division yields a double (SQL-92 engines differ; the
        // paper's AVG comparisons need exact ratios).
        assert_eq!(eval(&col("E.age").div(lit(2)), &t), Value::Double(3.5));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let t = tuple![7, 2.5, "x"];
        let b = BoundExpr::bind(&col("E.age").div(lit(0)), &schema()).unwrap();
        assert_eq!(b.eval(&t).unwrap_err(), ExprError::DivisionByZero);
        let b = BoundExpr::bind(&col("E.age").rem(lit(0)), &schema()).unwrap();
        assert_eq!(b.eval(&t).unwrap_err(), ExprError::DivisionByZero);
    }

    #[test]
    fn null_propagation_in_comparisons() {
        let t = Tuple::new(vec![
            Value::Null,
            Value::Double(1.0),
            Value::Str("x".into()),
        ]);
        assert_eq!(eval(&col("E.age").lt(lit(30)), &t), Value::Null);
        assert_eq!(eval(&col("E.age").eq(col("E.age")), &t), Value::Null);
        assert_eq!(eval(&col("E.age").is_null(), &t), Value::Bool(true));
    }

    #[test]
    fn three_valued_and_or() {
        let t = Tuple::new(vec![
            Value::Null,
            Value::Double(1.0),
            Value::Str("x".into()),
        ]);
        let null_cmp = col("E.age").lt(lit(30)); // NULL
        let true_cmp = col("E.sal").gt(lit(0)); // TRUE
        let false_cmp = col("E.sal").lt(lit(0)); // FALSE
        assert_eq!(
            eval(&null_cmp.clone().and(true_cmp.clone()), &t),
            Value::Null
        );
        assert_eq!(
            eval(&null_cmp.clone().and(false_cmp.clone()), &t),
            Value::Bool(false)
        );
        assert_eq!(eval(&null_cmp.clone().or(true_cmp), &t), Value::Bool(true));
        assert_eq!(eval(&null_cmp.clone().or(false_cmp), &t), Value::Null);
        assert_eq!(eval(&null_cmp.not(), &t), Value::Null);
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        // FALSE AND (1/0 = 1) must not error.
        let t = tuple![1, 1.0, "x"];
        let e = col("E.age")
            .lt(lit(0))
            .and(col("E.age").div(lit(0)).eq(lit(1)));
        assert_eq!(eval(&e, &t), Value::Bool(false));
    }

    #[test]
    fn predicate_rejects_null() {
        let t = Tuple::new(vec![
            Value::Null,
            Value::Double(1.0),
            Value::Str("x".into()),
        ]);
        let b = BoundExpr::bind(&col("E.age").lt(lit(30)), &schema()).unwrap();
        assert!(!b.eval_predicate(&t).unwrap());
    }

    #[test]
    fn bind_unknown_column_fails() {
        assert!(BoundExpr::bind(&col("nope"), &schema()).is_err());
    }

    #[test]
    fn type_mismatch_arithmetic() {
        let t = tuple![1, 1.0, "x"];
        let b = BoundExpr::bind(&col("E.name").add(lit(1)), &schema()).unwrap();
        assert!(matches!(
            b.eval(&t).unwrap_err(),
            ExprError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn result_types() {
        let s = schema();
        let b = |e: &Expr| BoundExpr::bind(e, &s).unwrap().result_type(&s);
        assert_eq!(b(&col("E.age")), DataType::Int);
        assert_eq!(b(&col("E.age").add(lit(1))), DataType::Int);
        assert_eq!(b(&col("E.age").add(col("E.sal"))), DataType::Double);
        assert_eq!(b(&col("E.age").div(lit(2))), DataType::Double);
        assert_eq!(b(&col("E.age").lt(lit(1))), DataType::Bool);
        assert_eq!(b(&col("E.age").is_null()), DataType::Bool);
    }

    #[test]
    fn not_requires_boolean() {
        let t = tuple![1, 1.0, "x"];
        let b = BoundExpr::bind(&col("E.age").not(), &schema()).unwrap();
        assert!(matches!(
            b.eval(&t).unwrap_err(),
            ExprError::TypeMismatch { .. }
        ));
    }
}
