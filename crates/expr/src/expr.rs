//! Unbound (by-name) expressions and the builder API.

use fj_storage::Value;
use std::fmt;
use std::sync::Arc;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `=` (SQL equality; NULL = anything is unknown).
    Eq,
    /// `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// Logical AND (three-valued).
    And,
    /// Logical OR (three-valued).
    Or,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%` (integers only).
    Mod,
}

impl BinOp {
    /// Symbol for display.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }

    /// Is this a comparison producing a boolean?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// An unbound scalar expression over named columns.
///
/// Cheap to clone: internal nodes are `Arc`-shared.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Reference to a column by (possibly qualified) name.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Arc<Expr>,
        /// Right operand.
        right: Arc<Expr>,
    },
    /// Logical NOT.
    Not(Arc<Expr>),
    /// `IS NULL`.
    IsNull(Arc<Expr>),
}

/// Column reference: `col("E.did")`.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// Literal: `lit(30)`, `lit("hr")`.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

impl Expr {
    fn binary(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Arc::new(self),
            right: Arc::new(rhs),
        }
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Eq, rhs)
    }
    /// `self <> rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ne, rhs)
    }
    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Lt, rhs)
    }
    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Le, rhs)
    }
    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Gt, rhs)
    }
    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ge, rhs)
    }
    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        self.binary(BinOp::And, rhs)
    }
    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Or, rhs)
    }
    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Add, rhs)
    }
    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Sub, rhs)
    }
    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Mul, rhs)
    }
    /// `self / rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Div, rhs)
    }
    /// `self % rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Mod, rhs)
    }
    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Arc::new(self))
    }
    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Arc::new(self))
    }

    /// Rewrites every column reference through `f` (used when inlining a
    /// view body under new qualifiers, and by the magic rewriting when it
    /// redirects references to the materialized production set).
    pub fn rename_columns(&self, f: &dyn Fn(&str) -> String) -> Expr {
        match self {
            Expr::Column(name) => Expr::Column(f(name)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Arc::new(left.rename_columns(f)),
                right: Arc::new(right.rename_columns(f)),
            },
            Expr::Not(e) => Expr::Not(Arc::new(e.rename_columns(f))),
            Expr::IsNull(e) => Expr::IsNull(Arc::new(e.rename_columns(f))),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => f.write_str(name),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::IsNull(e) => write!(f, "({e}) IS NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_tree() {
        let e = col("E.age")
            .lt(lit(30))
            .and(col("D.budget").gt(lit(100_000)));
        assert_eq!(e.to_string(), "((E.age < 30) AND (D.budget > 100000))");
    }

    #[test]
    fn rename_columns_rewrites_leaves_only() {
        let e = col("a").eq(col("b")).or(lit(1).lt(col("a")));
        let renamed = e.rename_columns(&|n| format!("T.{n}"));
        assert_eq!(renamed.to_string(), "((T.a = T.b) OR (1 < T.a))");
    }

    #[test]
    fn display_unary() {
        assert_eq!(col("x").is_null().to_string(), "(x) IS NULL");
        assert_eq!(col("x").not().to_string(), "NOT (x)");
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Ge.is_comparison());
        assert!(!BinOp::And.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }
}
