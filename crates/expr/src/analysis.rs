//! Predicate analysis for the optimizer.
//!
//! The System-R enumerator and the Filter Join need to know, for a WHERE
//! clause: which conjuncts exist, which columns each touches, and which
//! conjuncts are *equi-join* predicates linking two relations — those
//! column pairs become the candidate **filter-set attributes** of a
//! Filter Join (§2.2, §3.3 Limitation 3).

use crate::expr::{BinOp, Expr};
use std::collections::BTreeSet;

/// An equi-join predicate `left_col = right_col` between two column
/// references.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EquiJoinKey {
    /// Column name on one side.
    pub left: String,
    /// Column name on the other side.
    pub right: String,
}

/// Splits a predicate into its top-level AND conjuncts.
pub fn split_conjuncts(pred: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    collect_conjuncts(pred, &mut out);
    out
}

fn collect_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// Conjoins a list of predicates back into one expression (`None` for an
/// empty list).
pub fn conjoin(preds: impl IntoIterator<Item = Expr>) -> Option<Expr> {
    preds.into_iter().reduce(|a, b| a.and(b))
}

/// All column names referenced by an expression, sorted and de-duplicated.
pub fn columns_of(e: &Expr) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    collect_columns(e, &mut set);
    set
}

fn collect_columns(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Column(name) => {
            out.insert(name.clone());
        }
        Expr::Literal(_) => {}
        Expr::Binary { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::Not(inner) | Expr::IsNull(inner) => collect_columns(inner, out),
    }
}

/// Extracts the equi-join keys from a predicate: conjuncts of the exact
/// shape `col = col` where the two columns satisfy `is_left` and
/// `is_right` respectively (in either textual order).
///
/// `is_left`/`is_right` are membership tests against the two sides'
/// schemas; a conjunct linking the same side twice is not a join key.
pub fn equi_join_keys(
    pred: &Expr,
    is_left: &dyn Fn(&str) -> bool,
    is_right: &dyn Fn(&str) -> bool,
) -> Vec<EquiJoinKey> {
    split_conjuncts(pred)
        .iter()
        .filter_map(|c| match c {
            Expr::Binary {
                op: BinOp::Eq,
                left,
                right,
            } => match (left.as_ref(), right.as_ref()) {
                (Expr::Column(a), Expr::Column(b)) => {
                    if is_left(a) && is_right(b) {
                        Some(EquiJoinKey {
                            left: a.clone(),
                            right: b.clone(),
                        })
                    } else if is_left(b) && is_right(a) {
                        Some(EquiJoinKey {
                            left: b.clone(),
                            right: a.clone(),
                        })
                    } else {
                        None
                    }
                }
                _ => None,
            },
            _ => None,
        })
        .collect()
}

/// Partitions conjuncts into (those referencing only columns accepted by
/// `available`, the rest). Used to push selections down and to decide
/// which predicates apply at each DP level.
pub fn separable_conjuncts(
    pred: &Expr,
    available: &dyn Fn(&str) -> bool,
) -> (Vec<Expr>, Vec<Expr>) {
    let mut applicable = Vec::new();
    let mut deferred = Vec::new();
    for c in split_conjuncts(pred) {
        if columns_of(&c).iter().all(|col| available(col)) {
            applicable.push(c);
        } else {
            deferred.push(c);
        }
    }
    (applicable, deferred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    fn paper_predicate() -> Expr {
        // E.did = D.did AND E.did = V.did AND E.sal > V.avgsal
        //   AND E.age < 30 AND D.budget > 100000
        col("E.did")
            .eq(col("D.did"))
            .and(col("E.did").eq(col("V.did")))
            .and(col("E.sal").gt(col("V.avgsal")))
            .and(col("E.age").lt(lit(30)))
            .and(col("D.budget").gt(lit(100_000)))
    }

    #[test]
    fn split_flattens_nested_ands() {
        let cs = split_conjuncts(&paper_predicate());
        assert_eq!(cs.len(), 5);
    }

    #[test]
    fn split_leaves_or_alone() {
        let e = col("a").eq(lit(1)).or(col("b").eq(lit(2)));
        assert_eq!(split_conjuncts(&e).len(), 1);
    }

    #[test]
    fn conjoin_round_trips() {
        let p = paper_predicate();
        let again = conjoin(split_conjuncts(&p)).unwrap();
        assert_eq!(split_conjuncts(&again).len(), 5);
        assert!(conjoin(Vec::new()).is_none());
    }

    #[test]
    fn columns_found() {
        let cols = columns_of(&paper_predicate());
        assert!(cols.contains("E.did"));
        assert!(cols.contains("V.avgsal"));
        assert!(cols.contains("D.budget"));
        assert_eq!(cols.len(), 7);
    }

    #[test]
    fn equi_join_extraction_matches_paper_example() {
        let is_e = |c: &str| c.starts_with("E.");
        let is_v = |c: &str| c.starts_with("V.");
        let keys = equi_join_keys(&paper_predicate(), &is_e, &is_v);
        assert_eq!(
            keys,
            vec![EquiJoinKey {
                left: "E.did".into(),
                right: "V.did".into()
            }]
        );
    }

    #[test]
    fn equi_join_respects_side_order() {
        let pred = col("V.did").eq(col("E.did"));
        let is_e = |c: &str| c.starts_with("E.");
        let is_v = |c: &str| c.starts_with("V.");
        let keys = equi_join_keys(&pred, &is_e, &is_v);
        assert_eq!(keys[0].left, "E.did");
        assert_eq!(keys[0].right, "V.did");
    }

    #[test]
    fn equi_join_ignores_same_side_and_non_eq() {
        let pred = col("E.a")
            .eq(col("E.b"))
            .and(col("E.a").lt(col("V.b")))
            .and(col("E.a").eq(lit(3)));
        let is_e = |c: &str| c.starts_with("E.");
        let is_v = |c: &str| c.starts_with("V.");
        assert!(equi_join_keys(&pred, &is_e, &is_v).is_empty());
    }

    #[test]
    fn separable_partition() {
        let avail = |c: &str| c.starts_with("E.") || c.starts_with("D.");
        let (now, later) = separable_conjuncts(&paper_predicate(), &avail);
        assert_eq!(now.len(), 3); // E.did=D.did, E.age<30, D.budget>100000
        assert_eq!(later.len(), 2); // the two conjuncts touching V
    }
}
