//! Expression errors.

use fj_storage::StorageError;
use std::fmt;

/// Errors raised while binding or evaluating expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// A column reference failed to resolve (wraps the storage error).
    Unresolved(StorageError),
    /// Operand types don't support the requested operation.
    TypeMismatch {
        /// The operation attempted, e.g. `"+"`.
        op: String,
        /// Description of the offending operands.
        detail: String,
    },
    /// Division (or modulo) by zero at evaluation time.
    DivisionByZero,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Unresolved(e) => write!(f, "unresolved column: {e}"),
            ExprError::TypeMismatch { op, detail } => {
                write!(f, "type mismatch for '{op}': {detail}")
            }
            ExprError::DivisionByZero => f.write_str("division by zero"),
        }
    }
}

impl std::error::Error for ExprError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExprError::Unresolved(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ExprError {
    fn from(e: StorageError) -> Self {
        ExprError::Unresolved(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(ExprError::DivisionByZero.to_string().contains("zero"));
        let e = ExprError::TypeMismatch {
            op: "+".into(),
            detail: "str + int".into(),
        };
        assert!(e.to_string().contains('+'));
    }
}
