//! The magic-sets rewriting, driven by a cost-chosen SIPS.
//!
//! Figure 2 of the paper rewrites the motivating query into four views:
//! `PartialResult` (the production set), `Filter` (the distinct
//! projection of the join attributes), `RestrictedDepAvgSal` (the view
//! with the filter joined *below* its aggregate), and a final join. This
//! module performs that transformation generically over
//! [`crate::JoinQuery`] given a [`Sips`]:
//!
//! * the **production set** is a prefix of the join order (Limitation 1/2
//!   of §3.3) given as a list of aliases;
//! * the **filter attributes** are equi-join keys between the production
//!   set and the inner virtual relation (any subset — Limitation 3 allows
//!   attribute subsets as lossy filter sets);
//! * the restricted inner is built by pushing a *semi-join* with the
//!   filter set through the view definition: below selections and (when
//!   the filter attributes are grouping columns) below aggregates.
//!
//! The output is an ordinary [`LogicalPlan`] using `With`/`CteRef`, so
//! the rewritten query can be executed, explained, and compared against
//! the original by any downstream component.

use crate::catalog::{Catalog, RelationKind};
use crate::error::AlgebraError;
use crate::plan::{JoinKind, LogicalPlan, PlanRef};
use crate::query::JoinQuery;
use fj_expr::{col, conjoin, split_conjuncts, EquiJoinKey, Expr};
use fj_storage::Schema;
use std::sync::Arc;

/// CTE name of the materialized production set.
pub const PARTIAL_CTE: &str = "__partial";
/// CTE name of the filter (magic) set.
pub const FILTER_CTE: &str = "__filter";
/// Alias under which the filter set is semi-joined inside the inner.
pub const FILTER_ALIAS: &str = "__F";

/// A sideways information passing strategy: which prefix of the join
/// order produces the filter set, which virtual relation consumes it,
/// and along which join attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sips {
    /// Aliases of the production-set relations, in join order. Must be
    /// non-empty and disjoint from `inner`.
    pub production: Vec<String>,
    /// Alias of the (virtual) inner relation to restrict.
    pub inner: String,
    /// Filter attributes: `left` is a production-side column (e.g.
    /// `"E.did"`), `right` the corresponding inner column (`"V.did"`).
    pub filter_keys: Vec<EquiJoinKey>,
}

impl Sips {
    /// Builds a SIPS; see field docs for requirements (checked by
    /// [`rewrite`]).
    pub fn new(
        production: Vec<impl Into<String>>,
        inner: impl Into<String>,
        filter_keys: Vec<EquiJoinKey>,
    ) -> Sips {
        Sips {
            production: production.into_iter().map(Into::into).collect(),
            inner: inner.into(),
            filter_keys,
        }
    }

    /// Derives the *most restrictive* SIPS for `inner` given a production
    /// prefix: every equi-join key in the query predicate linking the
    /// production set to the inner becomes a filter attribute. Returns
    /// `None` when no such key exists (no sideways information to pass).
    pub fn derive(
        catalog: &Catalog,
        query: &JoinQuery,
        production: &[String],
        inner: &str,
    ) -> Option<Sips> {
        let pred = query.predicate.as_ref()?;
        let prod_schemas: Vec<Schema> = production
            .iter()
            .filter_map(|a| query.alias_schema(catalog, a).ok())
            .collect();
        let inner_schema = query.alias_schema(catalog, inner).ok()?;
        let keys = fj_expr::equi_join_keys(
            pred,
            &|c| prod_schemas.iter().any(|s| s.contains(c)),
            &|c| inner_schema.contains(c),
        );
        if keys.is_empty() {
            None
        } else {
            Some(Sips {
                production: production.to_vec(),
                inner: inner.to_string(),
                filter_keys: keys,
            })
        }
    }
}

/// The structured pieces of a magic rewriting — the four blocks of
/// Figure 2, exposed so callers (e.g. the SQL renderer) can present
/// them the way the paper does.
#[derive(Debug, Clone)]
pub struct MagicParts {
    /// Figure 2's `PartialResult`: the production-set join with its
    /// local predicate conjuncts.
    pub partial: LogicalPlan,
    /// Figure 2's `Filter`: the distinct projection of the join
    /// attributes (references the partial CTE).
    pub filter: LogicalPlan,
    /// Figure 2's restricted view, with the relation's own (unqualified)
    /// output names; references the filter CTE.
    pub restricted: LogicalPlan,
    /// Predicate conjuncts that were *not* absorbed into the partial.
    pub remaining: Vec<Expr>,
    /// FROM items that are neither in the production set nor the inner.
    pub others: Vec<crate::query::FromItem>,
    /// The inner relation's alias.
    pub inner_alias: String,
    /// The inner relation's (unqualified) output schema.
    pub inner_schema: fj_storage::SchemaRef,
}

/// Applies the magic-sets rewriting of `query` under `sips`, producing a
/// plan equivalent to `query.to_plan()` (identical result multiset).
pub fn rewrite(
    catalog: &Catalog,
    query: &JoinQuery,
    sips: &Sips,
) -> Result<LogicalPlan, AlgebraError> {
    let parts = rewrite_parts(catalog, query, sips)?;
    assemble(catalog, query, sips, parts)
}

/// Computes the structured rewriting pieces; see [`MagicParts`].
pub fn rewrite_parts(
    catalog: &Catalog,
    query: &JoinQuery,
    sips: &Sips,
) -> Result<MagicParts, AlgebraError> {
    validate_sips(catalog, query, sips)?;

    // ---- 1. PartialResult: join of the production prefix with every
    // predicate conjunct local to it (Figure 2's PartialResult view).
    let prod_aliases: Vec<&str> = sips.production.iter().map(String::as_str).collect();
    let mut partial = {
        let mut iter = sips.production.iter();
        let first = query
            .item(iter.next().expect("validated non-empty production"))
            .expect("validated alias");
        let mut plan = LogicalPlan::scan(first.relation.clone(), first.alias.clone());
        for alias in iter {
            let item = query.item(alias).expect("validated alias");
            plan = plan.join(
                LogicalPlan::scan(item.relation.clone(), item.alias.clone()),
                None,
            );
        }
        plan
    };
    let partial_conjuncts = query.conjuncts_within(catalog, &prod_aliases);
    if let Some(p) = conjoin(partial_conjuncts.iter().cloned()) {
        partial = partial.select(p);
    }
    let partial_schema = partial.schema(catalog)?.into_ref();

    // ---- 2. FilterSet: DISTINCT projection of the production-side join
    // attributes (Figure 2's Filter view). Columns are named k0, k1, ...
    let filter_plan = LogicalPlan::CteRef {
        name: PARTIAL_CTE.into(),
        alias: String::new(),
        schema: Arc::clone(&partial_schema),
    }
    .project(
        sips.filter_keys
            .iter()
            .enumerate()
            .map(|(i, k)| (col(k.left.clone()), format!("k{i}")))
            .collect(),
    )
    .distinct();
    let filter_schema = filter_plan.schema(catalog)?.into_ref();

    // ---- 3. Restricted inner: push a semi-join with the filter set into
    // the inner relation (Figure 2's RestrictedDepAvgSal).
    let inner_item = query.item(&sips.inner).expect("validated alias");
    let inner_kind = catalog.resolve(&inner_item.relation)?;
    // Inner-side attribute names *inside* the relation's own plan use
    // unqualified names: "V.did" → "did".
    let inner_attrs: Vec<String> = sips
        .filter_keys
        .iter()
        .map(|k| {
            k.right
                .strip_prefix(&format!("{}.", sips.inner))
                .unwrap_or(&k.right)
                .to_string()
        })
        .collect();
    let restricted = restricted_inner(
        catalog,
        &inner_item.relation,
        &inner_attrs,
        FILTER_CTE,
        &filter_schema,
    )?;
    let inner_schema = inner_kind.schema();

    let remaining: Vec<Expr> = query
        .predicate
        .as_ref()
        .map(|pred| {
            split_conjuncts(pred)
                .into_iter()
                .filter(|c| !partial_conjuncts.contains(c))
                .collect()
        })
        .unwrap_or_default();
    let others: Vec<crate::query::FromItem> = query
        .from
        .iter()
        .filter(|item| item.alias != sips.inner && !sips.production.contains(&item.alias))
        .cloned()
        .collect();

    Ok(MagicParts {
        partial,
        filter: filter_plan,
        restricted,
        remaining,
        others,
        inner_alias: sips.inner.clone(),
        inner_schema,
    })
}

/// Assembles [`MagicParts`] into the executable `With` plan.
fn assemble(
    catalog: &Catalog,
    query: &JoinQuery,
    sips: &Sips,
    parts: MagicParts,
) -> Result<LogicalPlan, AlgebraError> {
    let partial_schema = parts.partial.schema(catalog)?.into_ref();

    // Requalify the restricted inner's columns under the original alias
    // so the rest of the query binds unchanged.
    let restricted_qualified = parts.restricted.project(
        parts
            .inner_schema
            .columns()
            .iter()
            .map(|c| {
                (
                    col(c.name.clone()),
                    format!("{}.{}", sips.inner, c.base_name()),
                )
            })
            .collect(),
    );

    // Body: PartialResult ⋈ restricted inner ⋈ remaining relations,
    // remaining predicate, original projection.
    let mut body = LogicalPlan::CteRef {
        name: PARTIAL_CTE.into(),
        alias: String::new(),
        schema: partial_schema,
    }
    .join(restricted_qualified, None);
    for item in &parts.others {
        body = body.join(
            LogicalPlan::scan(item.relation.clone(), item.alias.clone()),
            None,
        );
    }
    if let Some(p) = conjoin(parts.remaining.clone()) {
        body = body.select(p);
    }
    if let Some(sel) = &query.projection {
        body = body.project(sel.clone());
    }

    Ok(LogicalPlan::With {
        ctes: vec![
            (PARTIAL_CTE.into(), parts.partial.into_ref()),
            (FILTER_CTE.into(), parts.filter.into_ref()),
        ],
        body: body.into_ref(),
    })
}

/// Builds the *restricted inner* for any relation kind: pushes a
/// semi-join with the filter-set CTE `filter_cte` into a view's
/// definition, or attaches it directly to a base/remote/UDF scan. The
/// filter CTE's columns must be named `k0, k1, ...` matching
/// `inner_attrs` in order (as produced by [`rewrite`] and by the
/// optimizer's Filter Join lowering). Output columns keep the relation's
/// own (unqualified) names.
pub fn restricted_inner(
    catalog: &Catalog,
    relation: &str,
    inner_attrs: &[String],
    filter_cte: &str,
    filter_schema: &fj_storage::SchemaRef,
) -> Result<LogicalPlan, AlgebraError> {
    match catalog.resolve(relation)? {
        RelationKind::View(view) => {
            push_filter_semi_join(&view.plan, inner_attrs, filter_cte, filter_schema)
        }
        // Base, remote and UDF relations: semi-join the scan directly.
        _ => Ok(semi_join_with_filter(
            LogicalPlan::Scan {
                relation: relation.to_string(),
                alias: String::new(),
            },
            inner_attrs,
            filter_cte,
            filter_schema,
        )),
    }
}

/// Semi-joins `plan` with the filter-set CTE on `plan.attrs[i] = __F.ki`.
fn semi_join_with_filter(
    plan: LogicalPlan,
    attrs: &[String],
    filter_cte: &str,
    filter_schema: &fj_storage::SchemaRef,
) -> LogicalPlan {
    let filter_ref = LogicalPlan::CteRef {
        name: filter_cte.into(),
        alias: FILTER_ALIAS.into(),
        schema: Arc::clone(filter_schema),
    };
    let pred = conjoin(
        attrs
            .iter()
            .enumerate()
            .map(|(i, a)| col(a.clone()).eq(col(format!("{FILTER_ALIAS}.k{i}")))),
    )
    .expect("filter keys are non-empty");
    LogicalPlan::Join {
        left: plan.into_ref(),
        right: filter_ref.into_ref(),
        predicate: Some(pred),
        kind: JoinKind::Semi,
    }
}

/// Pushes the filter semi-join through a view definition: through
/// `Project` (when the filter attributes project plain columns), through
/// `Select` and `Distinct`, and through `Aggregate` when every filter
/// attribute is a grouping column — the transformation that turns
/// `DepAvgSal` into `RestrictedDepAvgSal`.
fn push_filter_semi_join(
    plan: &PlanRef,
    attrs: &[String],
    filter_cte: &str,
    filter_schema: &fj_storage::SchemaRef,
) -> Result<LogicalPlan, AlgebraError> {
    match plan.as_ref() {
        LogicalPlan::Project { input, exprs } => {
            // Map each attr through the projection: it must be a bare
            // column reference to push below.
            let mut mapped = Vec::with_capacity(attrs.len());
            for a in attrs {
                let target = exprs.iter().find(|(_, name)| name == a).ok_or_else(|| {
                    AlgebraError::UnsupportedRewrite(format!(
                        "filter attribute '{a}' not produced by view projection"
                    ))
                })?;
                match &target.0 {
                    Expr::Column(c) => mapped.push(c.clone()),
                    other => {
                        return Err(AlgebraError::UnsupportedRewrite(format!(
                            "filter attribute '{a}' is computed ({other}), cannot push"
                        )))
                    }
                }
            }
            let pushed = push_filter_semi_join(input, &mapped, filter_cte, filter_schema)?;
            Ok(LogicalPlan::Project {
                input: pushed.into_ref(),
                exprs: exprs.clone(),
            })
        }
        LogicalPlan::Select { input, predicate } => {
            let pushed = push_filter_semi_join(input, attrs, filter_cte, filter_schema)?;
            Ok(LogicalPlan::Select {
                input: pushed.into_ref(),
                predicate: predicate.clone(),
            })
        }
        LogicalPlan::Distinct { input } => {
            let pushed = push_filter_semi_join(input, attrs, filter_cte, filter_schema)?;
            Ok(LogicalPlan::Distinct {
                input: pushed.into_ref(),
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Legal only when every filter attribute is a grouping
            // column: restricting groups before aggregation then
            // preserves each surviving group's aggregate exactly.
            if attrs.iter().all(|a| group_by.contains(a)) {
                let pushed = push_filter_semi_join(input, attrs, filter_cte, filter_schema)?;
                Ok(LogicalPlan::Aggregate {
                    input: pushed.into_ref(),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                })
            } else {
                // Cannot push below: semi-join above the aggregate (still
                // correct, restricts the view output).
                Ok(semi_join_with_filter(
                    (**plan).clone(),
                    attrs,
                    filter_cte,
                    filter_schema,
                ))
            }
        }
        // Frontier: scans, joins, anything else — attach the semi-join
        // here.
        _ => Ok(semi_join_with_filter(
            (**plan).clone(),
            attrs,
            filter_cte,
            filter_schema,
        )),
    }
}

fn validate_sips(catalog: &Catalog, query: &JoinQuery, sips: &Sips) -> Result<(), AlgebraError> {
    if sips.production.is_empty() {
        return Err(AlgebraError::UnsupportedRewrite(
            "empty production set".into(),
        ));
    }
    if sips.filter_keys.is_empty() {
        return Err(AlgebraError::UnsupportedRewrite("empty filter set".into()));
    }
    for a in &sips.production {
        if query.item(a).is_none() {
            return Err(AlgebraError::UnknownRelation(a.clone()));
        }
        if *a == sips.inner {
            return Err(AlgebraError::UnsupportedRewrite(format!(
                "inner '{a}' appears in production set"
            )));
        }
    }
    if query.item(&sips.inner).is_none() {
        return Err(AlgebraError::UnknownRelation(sips.inner.clone()));
    }
    // Filter keys must bind: left in some production schema, right in the
    // inner schema.
    let inner_schema = query.alias_schema(catalog, &sips.inner)?;
    for k in &sips.filter_keys {
        let left_ok = sips.production.iter().any(|a| {
            query
                .alias_schema(catalog, a)
                .is_ok_and(|s| s.contains(&k.left))
        });
        if !left_ok {
            return Err(AlgebraError::UnsupportedRewrite(format!(
                "filter key left column '{}' not in production set",
                k.left
            )));
        }
        if !inner_schema.contains(&k.right) {
            return Err(AlgebraError::UnsupportedRewrite(format!(
                "filter key right column '{}' not in inner relation",
                k.right
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_catalog, paper_query};

    fn paper_sips() -> Sips {
        Sips::new(
            vec!["E", "D"],
            "V",
            vec![EquiJoinKey {
                left: "E.did".into(),
                right: "V.did".into(),
            }],
        )
    }

    #[test]
    fn derive_finds_did_key() {
        let cat = paper_catalog();
        let q = paper_query();
        let sips = Sips::derive(&cat, &q, &["E".into(), "D".into()], "V").unwrap();
        assert_eq!(sips.filter_keys.len(), 1);
        assert_eq!(sips.filter_keys[0].left, "E.did");
        assert_eq!(sips.filter_keys[0].right, "V.did");
    }

    #[test]
    fn derive_none_without_key() {
        let cat = paper_catalog();
        // D alone has no equi-join with V in the predicate... actually it
        // doesn't: only E.did = V.did links to V.
        let q = paper_query();
        assert!(Sips::derive(&cat, &q, &["D".into()], "V").is_none());
    }

    #[test]
    fn rewrite_produces_with_ctes() {
        let cat = paper_catalog();
        let q = paper_query();
        let plan = rewrite(&cat, &q, &paper_sips()).unwrap();
        match &plan {
            LogicalPlan::With { ctes, .. } => {
                assert_eq!(ctes.len(), 2);
                assert_eq!(ctes[0].0, PARTIAL_CTE);
                assert_eq!(ctes[1].0, FILTER_CTE);
            }
            other => panic!("expected With, got: {}", other.display()),
        }
        // Rewritten plan must still typecheck with the same output schema
        // as the original.
        let orig_schema = q.to_plan().schema(&cat).unwrap();
        let new_schema = plan.schema(&cat).unwrap();
        assert_eq!(orig_schema.arity(), new_schema.arity());
        for (a, b) in orig_schema.columns().iter().zip(new_schema.columns()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.data_type, b.data_type);
        }
    }

    #[test]
    fn rewrite_pushes_semi_join_below_aggregate() {
        let cat = paper_catalog();
        let q = paper_query();
        let plan = rewrite(&cat, &q, &paper_sips()).unwrap();
        let display = plan.display();
        // The semi-join with the filter set must appear *below* the
        // aggregate in the restricted view (the whole point of magic).
        let agg_pos = display.find("Aggregate").expect("aggregate present");
        let semi_pos = display.find("SemiJoin").expect("semi join present");
        assert!(
            semi_pos > agg_pos,
            "semi-join should be beneath the aggregate:\n{display}"
        );
    }

    #[test]
    fn rewrite_with_single_relation_production() {
        let cat = paper_catalog();
        let q = paper_query();
        // Join order 4 of Figure 3: production = {E} only.
        let sips = Sips::derive(&cat, &q, &["E".into()], "V").unwrap();
        let plan = rewrite(&cat, &q, &sips).unwrap();
        assert!(plan.schema(&cat).is_ok());
        // Dept must appear in the body (it is not in the production set).
        assert!(plan.display().contains("Scan Dept AS D"));
    }

    #[test]
    fn rewrite_base_table_inner_is_semi_join_on_scan() {
        let cat = paper_catalog();
        // Query joining Emp with Dept, filtering Dept via filter join.
        let q = JoinQuery::new(vec![
            crate::query::FromItem::new("Emp", "E"),
            crate::query::FromItem::new("Dept", "D"),
        ])
        .with_predicate(col("E.did").eq(col("D.did")));
        let sips = Sips::derive(&cat, &q, &["E".into()], "D").unwrap();
        let plan = rewrite(&cat, &q, &sips).unwrap();
        assert!(plan.display().contains("SemiJoin"));
        assert!(plan.schema(&cat).is_ok());
    }

    #[test]
    fn validation_rejects_bad_sips() {
        let cat = paper_catalog();
        let q = paper_query();
        // Inner inside production.
        let bad = Sips::new(vec!["V"], "V", paper_sips().filter_keys);
        assert!(rewrite(&cat, &q, &bad).is_err());
        // Empty production.
        let bad = Sips::new(Vec::<String>::new(), "V", paper_sips().filter_keys);
        assert!(rewrite(&cat, &q, &bad).is_err());
        // Empty keys.
        let bad = Sips::new(vec!["E"], "V", vec![]);
        assert!(rewrite(&cat, &q, &bad).is_err());
        // Key not in production.
        let bad = Sips::new(
            vec!["D"],
            "V",
            vec![EquiJoinKey {
                left: "E.did".into(),
                right: "V.did".into(),
            }],
        );
        assert!(rewrite(&cat, &q, &bad).is_err());
        // Unknown alias.
        let bad = Sips::new(vec!["Z"], "V", paper_sips().filter_keys);
        assert!(matches!(
            rewrite(&cat, &q, &bad),
            Err(AlgebraError::UnknownRelation(_))
        ));
    }

    #[test]
    fn partial_cte_contains_production_conjuncts() {
        let cat = paper_catalog();
        let q = paper_query();
        let plan = rewrite(&cat, &q, &paper_sips()).unwrap();
        if let LogicalPlan::With { ctes, .. } = &plan {
            let partial = ctes[0].1.display();
            assert!(partial.contains("E.age"), "age<30 pushed into partial");
            assert!(partial.contains("D.budget"), "budget pushed into partial");
            assert!(!partial.contains("avgsal"), "view conjuncts stay out");
        } else {
            panic!("expected With");
        }
    }
}
