//! The canonical select-project-join block ([`JoinQuery`]) that the
//! System-R optimizer enumerates and the magic rewriter transforms.
//!
//! A `JoinQuery` is `SELECT <projection> FROM <relations> WHERE
//! <predicate>` where each FROM item may be a base table, a view, a
//! remote table, or a user-defined relation — the paper's uniform
//! treatment of "virtual relations" (§1).

use crate::catalog::{Catalog, RelationKind};
use crate::error::AlgebraError;
use crate::plan::LogicalPlan;
use fj_expr::{columns_of, split_conjuncts, Expr};
use fj_storage::Schema;
use std::collections::HashSet;

/// One FROM-clause item: a catalog relation under an alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FromItem {
    /// Catalog relation name, e.g. `"DepAvgSal"`.
    pub relation: String,
    /// Alias, e.g. `"V"`.
    pub alias: String,
}

impl FromItem {
    /// `relation AS alias`.
    pub fn new(relation: impl Into<String>, alias: impl Into<String>) -> FromItem {
        FromItem {
            relation: relation.into(),
            alias: alias.into(),
        }
    }
}

/// A select-project-join query block.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinQuery {
    /// FROM items, in declaration order.
    pub from: Vec<FromItem>,
    /// WHERE predicate (conjunctive normal form is not required; the
    /// analyzer splits top-level conjuncts).
    pub predicate: Option<Expr>,
    /// SELECT list; `None` selects every column of every FROM item.
    pub projection: Option<Vec<(Expr, String)>>,
}

impl JoinQuery {
    /// Starts a query over `from` items.
    pub fn new(from: Vec<FromItem>) -> JoinQuery {
        JoinQuery {
            from,
            predicate: None,
            projection: None,
        }
    }

    /// Sets the WHERE predicate.
    pub fn with_predicate(mut self, p: Expr) -> JoinQuery {
        self.predicate = Some(p);
        self
    }

    /// Sets the SELECT list.
    pub fn with_projection(mut self, p: Vec<(Expr, String)>) -> JoinQuery {
        self.projection = Some(p);
        self
    }

    /// Validates: aliases unique, relations resolvable, predicate and
    /// projection bind against the combined schema.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), AlgebraError> {
        let mut seen = HashSet::new();
        for item in &self.from {
            if !seen.insert(item.alias.clone()) {
                return Err(AlgebraError::DuplicateAlias(item.alias.clone()));
            }
            catalog.resolve(&item.relation)?;
        }
        if self.from.is_empty() {
            return Err(AlgebraError::InvalidPlan("empty FROM clause".into()));
        }
        // Binding is checked by computing the plan schema.
        self.to_plan().schema(catalog)?;
        Ok(())
    }

    /// The naive logical plan: left-deep cross joins in FROM order, then
    /// the full predicate, then the projection. This is the "original
    /// query" baseline (join orders 5/6 of Figure 3: no filter join).
    pub fn to_plan(&self) -> LogicalPlan {
        let mut iter = self.from.iter();
        let first = iter.next().expect("validated non-empty FROM");
        let mut plan = LogicalPlan::scan(first.relation.clone(), first.alias.clone());
        for item in iter {
            plan = plan.join(
                LogicalPlan::scan(item.relation.clone(), item.alias.clone()),
                None,
            );
        }
        if let Some(p) = &self.predicate {
            plan = plan.select(p.clone());
        }
        if let Some(sel) = &self.projection {
            plan = plan.project(sel.clone());
        }
        plan
    }

    /// The FROM item with alias `alias`.
    pub fn item(&self, alias: &str) -> Option<&FromItem> {
        self.from.iter().find(|i| i.alias == alias)
    }

    /// Qualified schema of the FROM item `alias`.
    pub fn alias_schema(&self, catalog: &Catalog, alias: &str) -> Result<Schema, AlgebraError> {
        let item = self
            .item(alias)
            .ok_or_else(|| AlgebraError::UnknownRelation(alias.to_string()))?;
        Ok(catalog
            .resolve(&item.relation)?
            .schema()
            .with_qualifier(alias))
    }

    /// Relation kind of the FROM item `alias`.
    pub fn alias_kind(&self, catalog: &Catalog, alias: &str) -> Result<RelationKind, AlgebraError> {
        let item = self
            .item(alias)
            .ok_or_else(|| AlgebraError::UnknownRelation(alias.to_string()))?;
        catalog.resolve(&item.relation)
    }

    /// The predicate conjuncts whose column references all fall inside
    /// the given set of aliases (the conjuncts applicable once exactly
    /// those relations are joined).
    pub fn conjuncts_within(&self, catalog: &Catalog, aliases: &[&str]) -> Vec<Expr> {
        let Some(pred) = &self.predicate else {
            return Vec::new();
        };
        // A column belongs to an alias if the alias's schema resolves it.
        let schemas: Vec<Schema> = aliases
            .iter()
            .filter_map(|a| self.alias_schema(catalog, a).ok())
            .collect();
        split_conjuncts(pred)
            .into_iter()
            .filter(|c| {
                columns_of(c)
                    .iter()
                    .all(|col| schemas.iter().any(|s| s.contains(col)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::fixtures::{paper_catalog, paper_query};

    #[test]
    fn paper_query_validates() {
        paper_query().validate(&paper_catalog()).unwrap();
    }

    #[test]
    fn duplicate_alias_rejected() {
        let q = JoinQuery::new(vec![FromItem::new("Emp", "E"), FromItem::new("Dept", "E")]);
        assert!(matches!(
            q.validate(&paper_catalog()),
            Err(AlgebraError::DuplicateAlias(_))
        ));
    }

    #[test]
    fn empty_from_rejected() {
        let q = JoinQuery::new(vec![]);
        assert!(q.validate(&paper_catalog()).is_err());
    }

    #[test]
    fn unknown_relation_rejected() {
        let q = JoinQuery::new(vec![FromItem::new("Ghost", "G")]);
        assert!(q.validate(&paper_catalog()).is_err());
    }

    #[test]
    fn to_plan_shape() {
        let plan = paper_query().to_plan();
        let s = plan.display();
        assert!(s.starts_with("Project"));
        assert!(s.contains("Select"));
        assert!(s.contains("Scan DepAvgSal AS V"));
        assert_eq!(plan.scanned_aliases(), vec!["E", "D", "V"]);
    }

    #[test]
    fn plan_schema_matches_projection() {
        let cat = paper_catalog();
        let s = paper_query().to_plan().schema(&cat).unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(2).name, "avgsal");
    }

    #[test]
    fn conjuncts_within_subsets() {
        let cat = paper_catalog();
        let q = paper_query();
        assert_eq!(q.conjuncts_within(&cat, &["E"]).len(), 1); // age<30
        assert_eq!(q.conjuncts_within(&cat, &["E", "D"]).len(), 3);
        assert_eq!(q.conjuncts_within(&cat, &["E", "D", "V"]).len(), 5);
        assert_eq!(q.conjuncts_within(&cat, &["D"]).len(), 1); // budget
    }

    #[test]
    fn alias_schema_and_kind() {
        let cat = paper_catalog();
        let q = paper_query();
        let s = q.alias_schema(&cat, "V").unwrap();
        assert!(s.contains("V.avgsal"));
        assert!(q.alias_kind(&cat, "V").unwrap().is_virtual());
        assert!(!q.alias_kind(&cat, "E").unwrap().is_virtual());
        assert!(q.alias_schema(&cat, "Z").is_err());
    }
}
