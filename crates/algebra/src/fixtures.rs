//! Shared fixtures: the paper's motivating schema, view and query
//! (Figure 1), used by tests, examples and benchmarks across the
//! workspace.
//!
//! The instance here is deliberately tiny and hand-checkable; the bench
//! crate has parameterized generators for scaled instances.

use crate::catalog::{Catalog, ViewDef};
use crate::plan::LogicalPlan;
use crate::query::{FromItem, JoinQuery};
use fj_expr::{col, lit, AggCall, AggFunc};
use fj_storage::{DataType, Schema, TableBuilder};

/// Registers the `DepAvgSal` view of Figure 1 on a catalog that already
/// contains an `Emp(eid, did, sal, age)` table.
pub fn add_dep_avg_sal_view(cat: &mut Catalog) {
    let plan = LogicalPlan::scan("Emp", "E")
        .aggregate(
            vec!["E.did".into()],
            vec![AggCall::new(AggFunc::Avg, "E.sal", "avgsal")],
        )
        .project(vec![
            (col("E.did"), "did".into()),
            (col("avgsal"), "avgsal".into()),
        ]);
    let schema = Schema::from_pairs(&[("did", DataType::Int), ("avgsal", DataType::Double)]);
    cat.add_view(ViewDef {
        name: "DepAvgSal".into(),
        plan: plan.into_ref(),
        schema: schema.into_ref(),
    });
}

/// A small hand-checkable instance of the paper's schema:
///
/// * `Emp(eid, did, sal, age)` — five employees across three departments;
/// * `Dept(did, budget)` — departments 10 (big), 20 (small), 30 (big);
/// * view `DepAvgSal(did, avgsal)`.
///
/// Expected answer of [`paper_query`]: exactly the young, above-average
/// employees of big departments — employee 1 (did 10, sal 9000 >
/// avg 5000) and employee 5 (did 30, sal 4000 > avg 3000).
pub fn paper_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("Emp")
            .column("eid", DataType::Int)
            .column("did", DataType::Int)
            .column("sal", DataType::Double)
            .column("age", DataType::Int)
            .row(vec![1.into(), 10.into(), 9000.0.into(), 25.into()])
            .row(vec![2.into(), 10.into(), 1000.0.into(), 45.into()])
            .row(vec![3.into(), 20.into(), 5000.0.into(), 28.into()])
            .row(vec![4.into(), 30.into(), 2000.0.into(), 29.into()])
            .row(vec![5.into(), 30.into(), 4000.0.into(), 26.into()])
            .build()
            .expect("static fixture")
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("Dept")
            .column("did", DataType::Int)
            .column("budget", DataType::Double)
            .row(vec![10.into(), 500_000.0.into()])
            .row(vec![20.into(), 50_000.0.into()])
            .row(vec![30.into(), 200_000.0.into()])
            .build()
            .expect("static fixture")
            .into_ref(),
    );
    add_dep_avg_sal_view(&mut cat);
    cat
}

/// The paper's Figure 1 query:
///
/// ```sql
/// SELECT E.did, E.sal, V.avgsal
/// FROM   Emp E, Dept D, DepAvgSal V
/// WHERE  E.did = D.did AND E.did = V.did AND E.sal > V.avgsal
///   AND  E.age < 30 AND D.budget > 100000
/// ```
pub fn paper_query() -> JoinQuery {
    JoinQuery::new(vec![
        FromItem::new("Emp", "E"),
        FromItem::new("Dept", "D"),
        FromItem::new("DepAvgSal", "V"),
    ])
    .with_predicate(
        col("E.did")
            .eq(col("D.did"))
            .and(col("E.did").eq(col("V.did")))
            .and(col("E.sal").gt(col("V.avgsal")))
            .and(col("E.age").lt(lit(30)))
            .and(col("D.budget").gt(lit(100_000))),
    )
    .with_projection(vec![
        (col("E.did"), "did".into()),
        (col("E.sal"), "sal".into()),
        (col("V.avgsal"), "avgsal".into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_consistent() {
        let cat = paper_catalog();
        let q = paper_query();
        q.validate(&cat).unwrap();
        assert!(cat.view("DepAvgSal").is_ok());
        assert_eq!(cat.table("Emp").unwrap().row_count(), 5);
        assert_eq!(cat.table("Dept").unwrap().row_count(), 3);
    }
}
