//! # fj-algebra
//!
//! The relational algebra of the `filterjoin` engine: logical plans, the
//! catalog of base and **virtual** relations, and the **magic-sets
//! rewriting** expressed over that algebra.
//!
//! The paper's central move is to treat magic-sets rewriting not as an
//! opaque source transformation but as the algebraic shadow of a *join
//! method* (the Filter Join). This crate supplies both halves of that
//! correspondence:
//!
//! * [`plan::LogicalPlan`] — the algebra, including `With`/`CteRef`
//!   nodes so a production set can be computed once and consumed twice
//!   (once to build the filter set, once in the final join), exactly the
//!   sharing structure of Figure 2;
//! * [`catalog::Catalog`] — base tables plus the three kinds of *virtual
//!   relation* of §1/§5: views ([`catalog::ViewDef`]), remote relations
//!   (site-placed tables under a [`catalog::NetworkModel`]), and
//!   user-defined relations ([`catalog::UdfRelation`]);
//! * [`query::JoinQuery`] — the canonical select-project-join block the
//!   System-R optimizer enumerates;
//! * [`magic::rewrite`] — given a [`magic::Sips`] (the sideways
//!   information passing strategy, i.e. the production set and filter
//!   attributes chosen by the optimizer), emits the rewritten query of
//!   Figure 2 as a plain logical plan.

pub mod catalog;
pub mod error;
pub mod fixtures;
pub mod magic;
pub mod plan;
pub mod query;
pub mod sql;

pub use catalog::{
    partition_hash, Catalog, NetworkModel, PartitionMap, RelationKind, SiteId, UdfRelation, ViewDef,
};
pub use error::AlgebraError;
pub use magic::{restricted_inner, rewrite, rewrite_parts, MagicParts, Sips};
pub use plan::{JoinKind, LogicalPlan, PlanRef};
pub use query::{FromItem, JoinQuery};
pub use sql::{render_figure2, render_plan};
