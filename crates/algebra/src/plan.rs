//! Logical plans.
//!
//! A small, orthogonal algebra: scan / select / project / join /
//! aggregate / distinct, plus `With`/`CteRef` for the shared
//! subexpressions the magic rewriting introduces (the production set is
//! consumed both by the filter-set projection and by the final join).

use crate::catalog::Catalog;
use crate::error::AlgebraError;
use fj_expr::{AggCall, Expr};
use fj_storage::{Column, DataType, Schema, SchemaRef, Value};
use std::fmt::Write as _;
use std::sync::Arc;

/// Shared plan handle.
pub type PlanRef = Arc<LogicalPlan>;

/// Join kinds. The magic rewriting only needs inner joins (the filter
/// join's semi-join effect is expressed by `Distinct` + inner join), but
/// `Semi` is provided for explicit semi-join formulations and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left semi-join: emit left tuples with at least one match.
    Semi,
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a catalog relation (base table, view, remote table, or UDF
    /// relation) under an alias.
    Scan {
        /// Catalog name.
        relation: String,
        /// Alias qualifying output columns (`"E"` → `E.did`).
        alias: String,
    },
    /// Scan a named common-table-expression defined by an enclosing
    /// [`LogicalPlan::With`].
    CteRef {
        /// CTE name.
        name: String,
        /// Alias for requalification; empty keeps the CTE's own names.
        alias: String,
        /// The CTE's output schema (unqualified), recorded at build time.
        schema: SchemaRef,
    },
    /// Filter rows by a predicate.
    Select {
        /// Input plan.
        input: PlanRef,
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// Compute expressions `AS` names.
    Project {
        /// Input plan.
        input: PlanRef,
        /// (expression, output name) pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Join two plans.
    Join {
        /// Left (outer) input.
        left: PlanRef,
        /// Right (inner) input.
        right: PlanRef,
        /// Join predicate (`None` = cross product).
        predicate: Option<Expr>,
        /// Inner or semi.
        kind: JoinKind,
    },
    /// Group-by aggregation. Output schema = group columns (names kept)
    /// then one column per aggregate call.
    Aggregate {
        /// Input plan.
        input: PlanRef,
        /// Grouping column names (resolved against the input schema).
        group_by: Vec<String>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: PlanRef,
    },
    /// Defines CTEs (each materialized once, in order — later CTEs and
    /// the body may reference earlier ones) and evaluates `body`.
    With {
        /// (name, plan) pairs, in dependency order.
        ctes: Vec<(String, PlanRef)>,
        /// The main query.
        body: PlanRef,
    },
    /// Literal rows (used in tests and for singleton relations).
    Values {
        /// Output schema.
        schema: SchemaRef,
        /// The rows, as literal values.
        rows: Vec<Vec<Value>>,
    },
}

impl LogicalPlan {
    /// Wraps in an [`Arc`].
    pub fn into_ref(self) -> PlanRef {
        Arc::new(self)
    }

    /// Convenience: scan a relation under an alias.
    pub fn scan(relation: impl Into<String>, alias: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan {
            relation: relation.into(),
            alias: alias.into(),
        }
    }

    /// Convenience: filter by `predicate`.
    pub fn select(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Select {
            input: self.into_ref(),
            predicate,
        }
    }

    /// Convenience: project to `(expr, name)` pairs.
    pub fn project(self, exprs: Vec<(Expr, String)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: self.into_ref(),
            exprs,
        }
    }

    /// Convenience: inner join with an optional predicate.
    pub fn join(self, right: LogicalPlan, predicate: Option<Expr>) -> LogicalPlan {
        LogicalPlan::Join {
            left: self.into_ref(),
            right: right.into_ref(),
            predicate,
            kind: JoinKind::Inner,
        }
    }

    /// Convenience: group-by aggregate.
    pub fn aggregate(self, group_by: Vec<String>, aggs: Vec<AggCall>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: self.into_ref(),
            group_by,
            aggs,
        }
    }

    /// Convenience: duplicate elimination.
    pub fn distinct(self) -> LogicalPlan {
        LogicalPlan::Distinct {
            input: self.into_ref(),
        }
    }

    /// Computes the output schema against a catalog.
    ///
    /// Fails on unknown relations/columns, so it doubles as plan
    /// validation; the executor and optimizer call it once per node and
    /// trust it afterwards.
    pub fn schema(&self, catalog: &Catalog) -> Result<Schema, AlgebraError> {
        match self {
            LogicalPlan::Scan { relation, alias } => {
                let rel = catalog.resolve(relation)?;
                Ok(rel.schema().with_qualifier(alias))
            }
            LogicalPlan::CteRef { alias, schema, .. } => {
                if alias.is_empty() {
                    Ok((**schema).clone())
                } else {
                    Ok(schema.with_qualifier(alias))
                }
            }
            LogicalPlan::Select { input, predicate } => {
                let s = input.schema(catalog)?;
                // Validate the predicate binds.
                fj_expr::BoundExpr::bind(predicate, &s)?;
                Ok(s)
            }
            LogicalPlan::Project { input, exprs } => {
                let s = input.schema(catalog)?;
                let mut cols = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    let bound = fj_expr::BoundExpr::bind(e, &s)?;
                    cols.push(Column::nullable(name.clone(), bound.result_type(&s)));
                }
                Ok(Schema::new(cols)?)
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
                kind,
            } => {
                let ls = left.schema(catalog)?;
                let rs = right.schema(catalog)?;
                let joined = ls.join(&rs)?;
                if let Some(p) = predicate {
                    fj_expr::BoundExpr::bind(p, &joined)?;
                }
                Ok(match kind {
                    JoinKind::Inner => joined,
                    JoinKind::Semi => ls,
                })
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let s = input.schema(catalog)?;
                let mut cols = Vec::new();
                for g in group_by {
                    let i = s.resolve(g).map_err(AlgebraError::Schema)?;
                    cols.push(s.column(i).clone());
                }
                for a in aggs {
                    let input_ty = match &a.input {
                        Some(c) => {
                            let i = s.resolve(c).map_err(AlgebraError::Schema)?;
                            s.column(i).data_type
                        }
                        None => DataType::Int,
                    };
                    cols.push(Column::nullable(
                        a.output.clone(),
                        a.func.result_type(input_ty),
                    ));
                }
                Ok(Schema::new(cols)?)
            }
            LogicalPlan::Distinct { input } => input.schema(catalog),
            LogicalPlan::With { ctes, body } => {
                // CTE schemas are embedded in CteRef nodes; validate each
                // CTE plan, then the body.
                for (_, cte) in ctes {
                    cte.schema(catalog)?;
                }
                body.schema(catalog)
            }
            LogicalPlan::Values { schema, .. } => Ok((**schema).clone()),
        }
    }

    /// Pretty-prints the plan as an indented tree (EXPLAIN output).
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.fmt_tree(&mut out, 0);
        out
    }

    fn fmt_tree(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { relation, alias } => {
                let _ = writeln!(out, "{pad}Scan {relation} AS {alias}");
            }
            LogicalPlan::CteRef { name, alias, .. } => {
                let _ = writeln!(out, "{pad}CteRef {name} AS {alias}");
            }
            LogicalPlan::Select { input, predicate } => {
                let _ = writeln!(out, "{pad}Select {predicate}");
                input.fmt_tree(out, depth + 1);
            }
            LogicalPlan::Project { input, exprs } => {
                let list = exprs
                    .iter()
                    .map(|(e, n)| format!("{e} AS {n}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "{pad}Project {list}");
                input.fmt_tree(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
                kind,
            } => {
                let k = match kind {
                    JoinKind::Inner => "Join",
                    JoinKind::Semi => "SemiJoin",
                };
                match predicate {
                    Some(p) => {
                        let _ = writeln!(out, "{pad}{k} on {p}");
                    }
                    None => {
                        let _ = writeln!(out, "{pad}{k} (cross)");
                    }
                }
                left.fmt_tree(out, depth + 1);
                right.fmt_tree(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let aggs_s = aggs
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(
                    out,
                    "{pad}Aggregate group by [{}] compute [{aggs_s}]",
                    group_by.join(", ")
                );
                input.fmt_tree(out, depth + 1);
            }
            LogicalPlan::Distinct { input } => {
                let _ = writeln!(out, "{pad}Distinct");
                input.fmt_tree(out, depth + 1);
            }
            LogicalPlan::With { ctes, body } => {
                let _ = writeln!(out, "{pad}With");
                for (name, cte) in ctes {
                    let _ = writeln!(out, "{pad}  CTE {name}:");
                    cte.fmt_tree(out, depth + 2);
                }
                let _ = writeln!(out, "{pad}  Body:");
                body.fmt_tree(out, depth + 2);
            }
            LogicalPlan::Values { rows, .. } => {
                let _ = writeln!(out, "{pad}Values ({} rows)", rows.len());
            }
        }
    }

    /// All relation aliases scanned anywhere in the plan (including CTE
    /// bodies), in preorder.
    pub fn scanned_aliases(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let LogicalPlan::Scan { alias, .. } = p {
                out.push(alias.clone());
            }
        });
        out
    }

    /// Preorder traversal.
    pub fn visit(&self, f: &mut dyn FnMut(&LogicalPlan)) {
        f(self);
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::CteRef { .. } | LogicalPlan::Values { .. } => {}
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input } => input.visit(f),
            LogicalPlan::Join { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            LogicalPlan::With { ctes, body } => {
                for (_, cte) in ctes {
                    cte.visit(f);
                }
                body.visit(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, ViewDef};
    use fj_expr::{col, lit, AggFunc};
    use fj_storage::{DataType, TableBuilder};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(
            TableBuilder::new("Emp")
                .column("eid", DataType::Int)
                .column("did", DataType::Int)
                .column("sal", DataType::Double)
                .column("age", DataType::Int)
                .row(vec![1.into(), 10.into(), 1000.0.into(), 25.into()])
                .build()
                .unwrap()
                .into_ref(),
        );
        cat.add_table(
            TableBuilder::new("Dept")
                .column("did", DataType::Int)
                .column("budget", DataType::Double)
                .row(vec![10.into(), 500_000.0.into()])
                .build()
                .unwrap()
                .into_ref(),
        );
        // DepAvgSal view: SELECT E.did AS did, AVG(E.sal) AS avgsal ...
        let plan = LogicalPlan::scan("Emp", "E")
            .aggregate(
                vec!["E.did".into()],
                vec![AggCall::new(AggFunc::Avg, "E.sal", "avgsal")],
            )
            .project(vec![
                (col("E.did"), "did".into()),
                (col("avgsal"), "avgsal".into()),
            ]);
        let schema = Schema::from_pairs(&[("did", DataType::Int), ("avgsal", DataType::Double)]);
        cat.add_view(ViewDef {
            name: "DepAvgSal".into(),
            plan: plan.into_ref(),
            schema: schema.into_ref(),
        });
        cat
    }

    #[test]
    fn scan_schema_requalifies() {
        let cat = catalog();
        let s = LogicalPlan::scan("Emp", "E").schema(&cat).unwrap();
        assert!(s.contains("E.did"));
        assert_eq!(s.arity(), 4);
    }

    #[test]
    fn view_scan_schema() {
        let cat = catalog();
        let s = LogicalPlan::scan("DepAvgSal", "V").schema(&cat).unwrap();
        assert!(s.contains("V.did"));
        assert!(s.contains("V.avgsal"));
    }

    #[test]
    fn select_validates_predicate() {
        let cat = catalog();
        let ok = LogicalPlan::scan("Emp", "E").select(col("E.age").lt(lit(30)));
        assert!(ok.schema(&cat).is_ok());
        let bad = LogicalPlan::scan("Emp", "E").select(col("E.nothere").lt(lit(30)));
        assert!(bad.schema(&cat).is_err());
    }

    #[test]
    fn join_schema_concat_and_semi() {
        let cat = catalog();
        let join = LogicalPlan::scan("Emp", "E").join(
            LogicalPlan::scan("Dept", "D"),
            Some(col("E.did").eq(col("D.did"))),
        );
        let s = join.schema(&cat).unwrap();
        assert_eq!(s.arity(), 6);

        let semi = LogicalPlan::Join {
            left: LogicalPlan::scan("Emp", "E").into_ref(),
            right: LogicalPlan::scan("Dept", "D").into_ref(),
            predicate: Some(col("E.did").eq(col("D.did"))),
            kind: JoinKind::Semi,
        };
        assert_eq!(semi.schema(&cat).unwrap().arity(), 4);
    }

    #[test]
    fn aggregate_schema() {
        let cat = catalog();
        let agg = LogicalPlan::scan("Emp", "E").aggregate(
            vec!["E.did".into()],
            vec![
                AggCall::new(AggFunc::Avg, "E.sal", "avgsal"),
                AggCall::count_star("n"),
            ],
        );
        let s = agg.schema(&cat).unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(0).name, "E.did");
        assert_eq!(s.column(1).data_type, DataType::Double);
        assert_eq!(s.column(2).data_type, DataType::Int);
    }

    #[test]
    fn project_types_from_expressions() {
        let cat = catalog();
        let p = LogicalPlan::scan("Emp", "E").project(vec![
            (col("E.did"), "did".into()),
            (col("E.sal").mul(lit(2)), "dsal".into()),
            (col("E.age").lt(lit(30)), "young".into()),
        ]);
        let s = p.schema(&cat).unwrap();
        assert_eq!(s.column(0).data_type, DataType::Int);
        assert_eq!(s.column(1).data_type, DataType::Double);
        assert_eq!(s.column(2).data_type, DataType::Bool);
    }

    #[test]
    fn cte_ref_schema_requalifies() {
        let cat = catalog();
        let cte_schema = Schema::from_pairs(&[("did", DataType::Int)]).into_ref();
        let r = LogicalPlan::CteRef {
            name: "F".into(),
            alias: "F".into(),
            schema: Arc::clone(&cte_schema),
        };
        let s = r.schema(&cat).unwrap();
        assert!(s.contains("F.did"));
        let bare = LogicalPlan::CteRef {
            name: "F".into(),
            alias: String::new(),
            schema: cte_schema,
        };
        assert!(bare.schema(&cat).unwrap().contains("did"));
    }

    #[test]
    fn unknown_relation_fails() {
        let cat = catalog();
        assert!(LogicalPlan::scan("Nope", "N").schema(&cat).is_err());
    }

    #[test]
    fn display_is_indented_tree() {
        let plan = LogicalPlan::scan("Emp", "E")
            .join(
                LogicalPlan::scan("Dept", "D"),
                Some(col("E.did").eq(col("D.did"))),
            )
            .select(col("E.age").lt(lit(30)));
        let s = plan.display();
        assert!(s.contains("Select"));
        assert!(s.contains("  Join on"));
        assert!(s.contains("    Scan Emp AS E"));
    }

    #[test]
    fn scanned_aliases_preorder() {
        let plan = LogicalPlan::scan("Emp", "E").join(LogicalPlan::scan("Dept", "D"), None);
        assert_eq!(plan.scanned_aliases(), vec!["E", "D"]);
    }

    #[test]
    fn values_schema() {
        let cat = catalog();
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).into_ref();
        let v = LogicalPlan::Values {
            schema,
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        };
        assert_eq!(v.schema(&cat).unwrap().arity(), 1);
    }
}
