//! Algebra-layer errors.

use fj_expr::ExprError;
use fj_storage::StorageError;
use std::fmt;

/// Errors raised while constructing, validating, or rewriting logical
/// plans.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// A relation name was not found in the catalog.
    UnknownRelation(String),
    /// A relation alias appeared twice in one query.
    DuplicateAlias(String),
    /// Schema-level failure (propagated from storage).
    Schema(StorageError),
    /// Expression binding failure (propagated from fj-expr).
    Expr(ExprError),
    /// A magic rewriting was requested that the rewriter cannot express,
    /// e.g. filtering an aggregate view on a non-group-by attribute.
    UnsupportedRewrite(String),
    /// A plan node was used in a context that does not support it.
    InvalidPlan(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::UnknownRelation(n) => write!(f, "unknown relation '{n}'"),
            AlgebraError::DuplicateAlias(a) => write!(f, "duplicate alias '{a}'"),
            AlgebraError::Schema(e) => write!(f, "schema error: {e}"),
            AlgebraError::Expr(e) => write!(f, "expression error: {e}"),
            AlgebraError::UnsupportedRewrite(d) => write!(f, "unsupported magic rewrite: {d}"),
            AlgebraError::InvalidPlan(d) => write!(f, "invalid plan: {d}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

impl From<StorageError> for AlgebraError {
    fn from(e: StorageError) -> Self {
        AlgebraError::Schema(e)
    }
}

impl From<ExprError> for AlgebraError {
    fn from(e: ExprError) -> Self {
        AlgebraError::Expr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(AlgebraError::UnknownRelation("X".into())
            .to_string()
            .contains('X'));
        assert!(AlgebraError::UnsupportedRewrite("agg".into())
            .to_string()
            .contains("magic"));
    }
}
