//! Best-effort SQL rendering of logical plans — used to print the
//! magic-sets rewriting the way the paper presents it (Figure 2's
//! `CREATE VIEW PartialResult / Filter / RestrictedDepAvgSal` cascade).
//!
//! The renderer targets exactly the plan shapes this crate produces
//! (SPJ blocks, grouped aggregates, DISTINCT projections, semi-joins
//! against a filter CTE). Anything else falls back to an algebra
//! comment, so the output is always printable.

use crate::catalog::Catalog;
use crate::error::AlgebraError;
use crate::magic::Sips;
use crate::plan::{JoinKind, LogicalPlan};
use crate::query::JoinQuery;
use fj_expr::{split_conjuncts, Expr};
use std::fmt::Write as _;

/// One extracted SELECT block.
#[derive(Default)]
struct Block {
    select: Vec<String>,
    distinct: bool,
    from: Vec<String>,
    wheres: Vec<String>,
    group_by: Vec<String>,
}

impl Block {
    fn render(&self, indent: &str) -> String {
        let mut s = String::new();
        let sel = if self.select.is_empty() {
            "*".to_string()
        } else {
            self.select.join(", ")
        };
        let _ = write!(
            s,
            "{indent}SELECT {}{sel}",
            if self.distinct { "DISTINCT " } else { "" }
        );
        if !self.from.is_empty() {
            let _ = write!(s, "\n{indent}FROM {}", self.from.join(", "));
        }
        if !self.wheres.is_empty() {
            let _ = write!(
                s,
                "\n{indent}WHERE {}",
                self.wheres.join("\n{indent}  AND ")
            );
            s = s.replace("{indent}", indent);
        }
        if !self.group_by.is_empty() {
            let _ = write!(s, "\n{indent}GROUP BY {}", self.group_by.join(", "));
        }
        s
    }
}

/// Renders a logical plan as a SQL-ish query string.
pub fn render_plan(plan: &LogicalPlan) -> String {
    match plan {
        LogicalPlan::With { ctes, body } => {
            let mut out = String::new();
            for (name, cte) in ctes {
                let _ = writeln!(out, "CREATE VIEW {name} AS\n({});\n", render_query(cte));
            }
            let _ = write!(out, "{};", render_query(body));
            out
        }
        other => format!("{};", render_query(other)),
    }
}

fn render_query(plan: &LogicalPlan) -> String {
    let mut block = Block::default();
    if extract(plan, &mut block) {
        block.render("")
    } else {
        format!("/* non-SQL shape:\n{} */", plan.display())
    }
}

/// Folds `plan` into `block`; returns false when the shape is not
/// expressible as a single block.
fn extract(plan: &LogicalPlan, block: &mut Block) -> bool {
    match plan {
        LogicalPlan::Scan { relation, alias } => {
            block.from.push(if alias.is_empty() {
                relation.clone()
            } else {
                format!("{relation} {alias}")
            });
            true
        }
        LogicalPlan::CteRef { name, alias, .. } => {
            block.from.push(if alias.is_empty() {
                name.clone()
            } else {
                format!("{name} {alias}")
            });
            true
        }
        LogicalPlan::Select { input, predicate } => {
            if !extract(input, block) {
                return false;
            }
            block
                .wheres
                .extend(split_conjuncts(predicate).iter().map(render_expr));
            true
        }
        LogicalPlan::Project { input, exprs } => {
            if !extract(input, block) {
                return false;
            }
            if !block.select.is_empty() {
                // Two projections stacked: compose renames when every
                // outer expr is a bare column naming an inner item.
                let inner: Vec<(String, String)> = block
                    .select
                    .iter()
                    .map(|item| match item.rsplit_once(" AS ") {
                        Some((e, n)) => (e.to_string(), n.to_string()),
                        None => (item.clone(), item.clone()),
                    })
                    .collect();
                let mut composed = Vec::with_capacity(exprs.len());
                for (e, n) in exprs {
                    let Expr::Column(c) = e else { return false };
                    let Some((inner_e, _)) = inner.iter().find(|(ie, iname)| iname == c || ie == c)
                    else {
                        return false;
                    };
                    composed.push(if inner_e == n {
                        inner_e.clone()
                    } else {
                        format!("{inner_e} AS {n}")
                    });
                }
                block.select = composed;
                return true;
            }
            block.select = exprs
                .iter()
                .map(|(e, n)| {
                    let r = render_expr_raw(e);
                    if &r == n {
                        r
                    } else {
                        format!("{r} AS {n}")
                    }
                })
                .collect();
            true
        }
        LogicalPlan::Distinct { input } => {
            if !extract(input, block) {
                return false;
            }
            block.distinct = true;
            true
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            if !extract(input, block) || !block.select.is_empty() {
                return false;
            }
            block.group_by = group_by.clone();
            block.select = group_by.clone();
            block.select.extend(aggs.iter().map(|a| a.to_string()));
            true
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
            kind,
        } => match kind {
            JoinKind::Inner => {
                if !extract(left, block) || !extract(right, block) {
                    return false;
                }
                if let Some(p) = predicate {
                    block
                        .wheres
                        .extend(split_conjuncts(p).iter().map(render_expr));
                }
                true
            }
            JoinKind::Semi => {
                // The magic shape: semi-join against the filter CTE
                // renders as an IN subquery.
                let LogicalPlan::CteRef { name, alias, .. } = right.as_ref() else {
                    return false;
                };
                if !extract(left, block) {
                    return false;
                }
                let Some(p) = predicate else { return false };
                // Predicate: conjunction of attr = <alias>.kN.
                let mut lhs = Vec::new();
                let mut rhs = Vec::new();
                for c in split_conjuncts(p) {
                    let Expr::Binary {
                        op: fj_expr::BinOp::Eq,
                        left: a,
                        right: b,
                    } = c
                    else {
                        return false;
                    };
                    let (Expr::Column(a), Expr::Column(b)) = (a.as_ref(), b.as_ref()) else {
                        return false;
                    };
                    let (attr, key) = if b.starts_with(&format!("{alias}.")) {
                        (a.clone(), b.clone())
                    } else {
                        (b.clone(), a.clone())
                    };
                    lhs.push(attr);
                    rhs.push(
                        key.rsplit_once('.')
                            .map(|(_, k)| k.to_string())
                            .unwrap_or(key),
                    );
                }
                block.wheres.push(format!(
                    "({}) IN (SELECT {} FROM {name})",
                    lhs.join(", "),
                    rhs.join(", ")
                ));
                true
            }
        },
        LogicalPlan::With { .. } | LogicalPlan::Values { .. } => false,
    }
}

fn render_expr(e: &Expr) -> String {
    render_expr_raw(e)
}

fn render_expr_raw(e: &Expr) -> String {
    let s = e.to_string();
    // Strip one redundant outer parenthesis layer for readability.
    if s.starts_with('(') && s.ends_with(')') {
        s[1..s.len() - 1].to_string()
    } else {
        s
    }
}

/// Renders the full Figure 2 artifact: the magic rewriting of `query`
/// under `sips` as the paper presents it — a `CREATE VIEW` cascade for
/// `PartialResult`, `Filter` and the restricted inner, then the final
/// query.
pub fn render_figure2(
    catalog: &Catalog,
    query: &JoinQuery,
    sips: &Sips,
) -> Result<String, AlgebraError> {
    let parts = crate::magic::rewrite_parts(catalog, query, sips)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "CREATE VIEW PartialResult AS
({});
",
        render_query(&parts.partial).replace(crate::magic::PARTIAL_CTE, "PartialResult")
    );
    let _ = writeln!(
        out,
        "CREATE VIEW Filter AS
({});
",
        render_query(&parts.filter).replace(crate::magic::PARTIAL_CTE, "PartialResult")
    );
    let restricted_name = format!(
        "Restricted{}",
        query
            .item(&sips.inner)
            .map(|i| i.relation.clone())
            .unwrap_or_default()
    );
    let _ = writeln!(
        out,
        "CREATE VIEW {restricted_name} AS
({});
",
        render_query(&parts.restricted).replace(crate::magic::FILTER_CTE, "Filter")
    );
    // Final query: PartialResult ⋈ restricted view (under the inner's
    // alias) ⋈ the remaining FROM items, remaining predicate, original
    // projection.
    let mut block = Block::default();
    block.from.push("PartialResult".into());
    block
        .from
        .push(format!("{restricted_name} {}", parts.inner_alias));
    for item in &parts.others {
        block.from.push(format!("{} {}", item.relation, item.alias));
    }
    block.wheres = parts.remaining.iter().map(render_expr).collect();
    if let Some(sel) = &query.projection {
        block.select = sel
            .iter()
            .map(|(e, n)| {
                let r = render_expr_raw(e);
                if &r == n {
                    r
                } else {
                    format!("{r} AS {n}")
                }
            })
            .collect();
    }
    let _ = write!(out, "{};", block.render(""));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_catalog, paper_query};
    use fj_expr::EquiJoinKey;

    fn paper_sips() -> Sips {
        Sips::new(
            vec!["E", "D"],
            "V",
            vec![EquiJoinKey {
                left: "E.did".into(),
                right: "V.did".into(),
            }],
        )
    }

    #[test]
    fn figure2_has_the_papers_landmarks() {
        let cat = paper_catalog();
        let sql = render_figure2(&cat, &paper_query(), &paper_sips()).unwrap();
        // The three views of Figure 2.
        assert!(sql.contains("CREATE VIEW PartialResult AS"), "{sql}");
        assert!(sql.contains("CREATE VIEW Filter AS"), "{sql}");
        assert!(sql.contains("CREATE VIEW RestrictedDepAvgSal AS"), "{sql}");
        assert!(sql.contains("SELECT DISTINCT"), "{sql}");
        // The restricted view: the filter applied *inside* the grouped
        // aggregate, as an IN subquery.
        assert!(sql.contains("IN (SELECT k0 FROM Filter)"), "{sql}");
        assert!(sql.contains("GROUP BY E.did"), "{sql}");
        // The production-set predicates moved into PartialResult.
        assert!(sql.contains("E.age < 30"), "{sql}");
        assert!(sql.contains("D.budget > 100000"), "{sql}");
        // The final query joins PartialResult with the restricted view.
        assert!(
            sql.contains("FROM PartialResult, RestrictedDepAvgSal V"),
            "{sql}"
        );
    }

    #[test]
    fn plain_query_renders_as_single_block() {
        let sql = render_plan(&paper_query().to_plan());
        assert!(sql.starts_with("SELECT "));
        assert!(sql.contains("FROM Emp E, Dept D, DepAvgSal V"));
        assert!(sql.contains("WHERE"));
        assert!(!sql.contains("CREATE VIEW"));
    }

    #[test]
    fn unsupported_shapes_fall_back_to_comment() {
        let plan = LogicalPlan::Values {
            schema: fj_storage::Schema::from_pairs(&[("x", fj_storage::DataType::Int)]).into_ref(),
            rows: vec![],
        };
        let sql = render_plan(&plan);
        assert!(sql.contains("non-SQL shape"));
    }
}
