//! The catalog: base tables and the paper's three kinds of *virtual
//! relation* — views, remote relations, and user-defined relations.
//!
//! > "Because such relations are not materialized in the (local)
//! > database, we call them 'virtual' relations." (§1)

use crate::error::AlgebraError;
use crate::plan::LogicalPlan;
use fj_storage::{CostLedger, SchemaRef, TableRef, Tuple, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifies a site in the (simulated) distributed database. Site 0 is
/// the local site where queries are answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The local (query) site.
    pub const LOCAL: SiteId = SiteId(0);
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// Network cost parameters: the distributed cost model charges
/// `per_message + per_byte × bytes` (in page-I/O-equivalent units) for
/// each shipment between distinct sites. §5.1: "both local and
/// communication costs can be important, and their relative importance
/// should be captured by appropriate cost metrics."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Cost per message (latency / setup), in page-I/O equivalents.
    pub per_message: f64,
    /// Cost per byte shipped, in page-I/O equivalents.
    pub per_byte: f64,
}

impl NetworkModel {
    /// A network where shipping is free — the purely-local setting.
    pub fn free() -> NetworkModel {
        NetworkModel {
            per_message: 0.0,
            per_byte: 0.0,
        }
    }

    /// A LAN-like default: one message costs about one I/O and a page's
    /// worth of bytes costs about two I/Os.
    pub fn lan() -> NetworkModel {
        NetworkModel {
            per_message: 1.0,
            per_byte: 2.0 / 4096.0,
        }
    }

    /// A WAN-like network where communication dominates (the SDD-1
    /// assumption): shipping a page costs ~50 I/Os.
    pub fn wan() -> NetworkModel {
        NetworkModel {
            per_message: 10.0,
            per_byte: 50.0 / 4096.0,
        }
    }

    /// Cost of shipping `bytes` bytes in one message.
    pub fn ship_cost(&self, bytes: u64) -> f64 {
        self.per_message + self.per_byte * bytes as f64
    }
}

/// A view definition: a named logical plan whose output schema uses
/// *unqualified* column names (e.g. `did`, `avgsal`); scanning the view
/// under an alias requalifies them (`V.did`).
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// View name, e.g. `"DepAvgSal"`.
    pub name: String,
    /// The defining plan.
    pub plan: Arc<LogicalPlan>,
    /// Output schema with unqualified names.
    pub schema: SchemaRef,
}

/// A user-defined relation (§5.2): a function from argument values to
/// result tuples, treated as a relation whose leading columns are the
/// arguments.
///
/// > "user-defined relations ... contain a single tuple for each specific
/// > set of argument values. The functions are typically invoked
/// > repeatedly with different argument values."
pub trait UdfRelation: Send + Sync + fmt::Debug {
    /// Full schema: argument columns first, then result columns
    /// (unqualified names).
    fn schema(&self) -> SchemaRef;

    /// How many leading columns are arguments.
    fn arg_count(&self) -> usize;

    /// Invokes the function for one argument combination, returning the
    /// full tuples (args ++ results). Charges one UDF call plus the
    /// invocation cost in tuple-ops to `ledger`.
    fn invoke(&self, args: &[Value], ledger: &CostLedger) -> Vec<Tuple>;

    /// Invocation cost in cost-model units (page-I/O equivalents). The
    /// optimizer uses this; implementations also charge it at runtime.
    fn invocation_cost(&self) -> f64;

    /// Expected result tuples per invocation (for cardinality
    /// estimation).
    fn rows_per_call(&self) -> f64 {
        1.0
    }

    /// The finite argument domain, if the relation supports *full
    /// computation* (enumerating every argument combination). Returns
    /// `None` for functions only usable via probing/filtering.
    fn domain(&self) -> Option<Vec<Vec<Value>>> {
        None
    }
}

/// How a FROM-item resolves in the catalog: the axis of Figure 6.
#[derive(Debug, Clone)]
pub enum RelationKind {
    /// A locally stored base table.
    Base(TableRef),
    /// A stored table at a remote site.
    Remote(TableRef, SiteId),
    /// A view (table expression).
    View(Arc<ViewDef>),
    /// A user-defined relation.
    Udf(Arc<dyn UdfRelation>),
}

impl RelationKind {
    /// Is this one of the paper's virtual relations (anything but a local
    /// base table)?
    pub fn is_virtual(&self) -> bool {
        !matches!(self, RelationKind::Base(_))
    }

    /// Unqualified output schema of the relation.
    pub fn schema(&self) -> SchemaRef {
        match self {
            RelationKind::Base(t) | RelationKind::Remote(t, _) => Arc::clone(t.schema()),
            RelationKind::View(v) => Arc::clone(&v.schema),
            RelationKind::Udf(u) => u.schema(),
        }
    }

    /// Site where the relation lives.
    pub fn site(&self) -> SiteId {
        match self {
            RelationKind::Remote(_, s) => *s,
            _ => SiteId::LOCAL,
        }
    }
}

/// How a base table is hash-partitioned across shards for distributed
/// execution: rows are routed by a stable hash of one column, modulo
/// the shard count. Kept in the catalog so the coordinator, the shards,
/// and the cost model all agree on where a key lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionMap {
    /// Index of the partitioning column in the table's schema.
    pub column: usize,
    /// Number of hash partitions (= number of shards).
    pub shards: u32,
}

impl PartitionMap {
    /// A map partitioning on `column` across `shards` partitions
    /// (clamped to at least 1).
    pub fn new(column: usize, shards: u32) -> PartitionMap {
        PartitionMap {
            column,
            shards: shards.max(1),
        }
    }

    /// The partition a key routes to.
    pub fn shard_of(&self, key: &Value) -> u32 {
        (partition_hash(key) % u64::from(self.shards)) as u32
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Stable, process-independent hash used for partition routing. Not a
/// general-purpose hash: it only needs to agree between the coordinator
/// and every shard, forever, so it is written out explicitly instead of
/// delegating to `std`'s unspecified `Hasher`.
pub fn partition_hash(v: &Value) -> u64 {
    match v {
        Value::Null => splitmix64(0x6e75_6c6c),
        Value::Int(i) => splitmix64(1 ^ (*i as u64).rotate_left(17)),
        Value::Double(d) => splitmix64(2 ^ d.to_bits()),
        Value::Str(s) => {
            let mut h = 3u64;
            for b in s.as_bytes() {
                h = splitmix64(h ^ u64::from(*b));
            }
            h
        }
        Value::Bool(b) => splitmix64(4 ^ u64::from(*b)),
    }
}

/// The catalog: name → relation, plus the network model.
///
/// Structural mutations (`add_*`/`set_*`) bump a monotonically
/// increasing [`epoch`](Catalog::epoch); data mutations that swap a
/// single table in place ([`replace_table`](Catalog::replace_table))
/// instead bump that relation's
/// [`relation_version`](Catalog::relation_version). Plan caches fold
/// both into their fingerprints, so a cached plan is invalidated when
/// the schema or network model changes, or when a table *it actually
/// reads* is mutated — while plans over untouched tables stay warm.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, TableRef>,
    table_sites: HashMap<String, SiteId>,
    views: HashMap<String, Arc<ViewDef>>,
    udfs: HashMap<String, Arc<dyn UdfRelation>>,
    partitions: HashMap<String, PartitionMap>,
    relation_versions: HashMap<String, u64>,
    network: Option<NetworkModel>,
    epoch: u64,
}

impl Catalog {
    /// An empty catalog with a free network.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// The mutation counter: bumped by every `add_*`/`set_*` call.
    /// Two catalogs with equal epochs that originated from the same
    /// clone chain hold identical metadata.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Registers a local base table.
    pub fn add_table(&mut self, table: TableRef) {
        self.tables.insert(table.name().to_string(), table);
        self.epoch += 1;
    }

    /// Swaps a registered table's contents in place after a data
    /// mutation: the relation's version bumps (invalidating cached
    /// plans that read it) but the catalog epoch does *not* — plans
    /// over other tables stay warm. Registers the table if the name is
    /// new.
    pub fn replace_table(&mut self, table: TableRef) {
        let name = table.name().to_string();
        *self.relation_versions.entry(name.clone()).or_insert(0) += 1;
        self.tables.insert(name, table);
    }

    /// The data version of `name`: 0 until its first
    /// [`replace_table`](Catalog::replace_table), bumped by each one.
    pub fn relation_version(&self, name: &str) -> u64 {
        self.relation_versions.get(name).copied().unwrap_or(0)
    }

    /// Registers a base table stored at `site`.
    pub fn add_remote_table(&mut self, table: TableRef, site: SiteId) {
        self.table_sites.insert(table.name().to_string(), site);
        self.tables.insert(table.name().to_string(), table);
        self.epoch += 1;
    }

    /// Registers a view.
    pub fn add_view(&mut self, view: ViewDef) {
        self.views.insert(view.name.clone(), Arc::new(view));
        self.epoch += 1;
    }

    /// Registers a user-defined relation under `name`.
    pub fn add_udf(&mut self, name: impl Into<String>, udf: Arc<dyn UdfRelation>) {
        self.udfs.insert(name.into(), udf);
        self.epoch += 1;
    }

    /// Sets the network model (None = free / purely local).
    pub fn set_network(&mut self, network: NetworkModel) {
        self.network = Some(network);
        self.epoch += 1;
    }

    /// Declares `table` hash-partitioned across shards. The table keeps
    /// its full local rows (the serial oracle still runs against them);
    /// the map tells distributed coordinators how to scatter and route.
    pub fn set_partitioning(&mut self, table: impl Into<String>, map: PartitionMap) {
        self.partitions.insert(table.into(), map);
        self.epoch += 1;
    }

    /// The partition map for `table`, if declared.
    pub fn partitioning(&self, table: &str) -> Option<PartitionMap> {
        self.partitions.get(table).copied()
    }

    /// The network model in force.
    pub fn network(&self) -> NetworkModel {
        self.network.unwrap_or_else(NetworkModel::free)
    }

    /// Looks up a relation by name.
    pub fn resolve(&self, name: &str) -> Result<RelationKind, AlgebraError> {
        if let Some(t) = self.tables.get(name) {
            return Ok(match self.table_sites.get(name) {
                Some(site) if *site != SiteId::LOCAL => RelationKind::Remote(Arc::clone(t), *site),
                _ => RelationKind::Base(Arc::clone(t)),
            });
        }
        if let Some(v) = self.views.get(name) {
            return Ok(RelationKind::View(Arc::clone(v)));
        }
        if let Some(u) = self.udfs.get(name) {
            return Ok(RelationKind::Udf(Arc::clone(u)));
        }
        Err(AlgebraError::UnknownRelation(name.to_string()))
    }

    /// Direct table access (for executors and tests).
    pub fn table(&self, name: &str) -> Result<TableRef, AlgebraError> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| AlgebraError::UnknownRelation(name.to_string()))
    }

    /// Direct view access.
    pub fn view(&self, name: &str) -> Result<Arc<ViewDef>, AlgebraError> {
        self.views
            .get(name)
            .cloned()
            .ok_or_else(|| AlgebraError::UnknownRelation(name.to_string()))
    }

    /// Direct UDF access.
    pub fn udf(&self, name: &str) -> Result<Arc<dyn UdfRelation>, AlgebraError> {
        self.udfs
            .get(name)
            .cloned()
            .ok_or_else(|| AlgebraError::UnknownRelation(name.to_string()))
    }

    /// Names of all registered relations (tables, views, UDFs).
    pub fn relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .keys()
            .chain(self.views.keys())
            .chain(self.udfs.keys())
            .cloned()
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_storage::{DataType, TableBuilder};

    fn table(name: &str) -> TableRef {
        TableBuilder::new(name)
            .column("id", DataType::Int)
            .row(vec![Value::Int(1)])
            .build()
            .unwrap()
            .into_ref()
    }

    #[test]
    fn resolve_base_and_remote() {
        let mut cat = Catalog::new();
        cat.add_table(table("local_t"));
        cat.add_remote_table(table("remote_t"), SiteId(2));
        match cat.resolve("local_t").unwrap() {
            RelationKind::Base(t) => assert_eq!(t.name(), "local_t"),
            other => panic!("expected base, got {other:?}"),
        }
        match cat.resolve("remote_t").unwrap() {
            RelationKind::Remote(_, s) => assert_eq!(s, SiteId(2)),
            other => panic!("expected remote, got {other:?}"),
        }
        assert!(cat.resolve("nope").is_err());
    }

    #[test]
    fn remote_at_local_site_is_base() {
        let mut cat = Catalog::new();
        cat.add_remote_table(table("t"), SiteId::LOCAL);
        assert!(matches!(cat.resolve("t").unwrap(), RelationKind::Base(_)));
    }

    #[test]
    fn virtuality_classification() {
        let t = table("t");
        assert!(!RelationKind::Base(Arc::clone(&t)).is_virtual());
        assert!(RelationKind::Remote(t, SiteId(1)).is_virtual());
    }

    #[test]
    fn network_defaults_to_free() {
        let cat = Catalog::new();
        assert_eq!(cat.network().ship_cost(10_000), 0.0);
        let mut cat = cat;
        cat.set_network(NetworkModel::wan());
        assert!(cat.network().ship_cost(4096) > 50.0);
    }

    #[test]
    fn lan_cheaper_than_wan() {
        assert!(NetworkModel::lan().ship_cost(4096) < NetworkModel::wan().ship_cost(4096));
    }

    #[test]
    fn replace_table_bumps_relation_version_not_epoch() {
        let mut cat = Catalog::new();
        cat.add_table(table("t"));
        cat.add_table(table("u"));
        let epoch = cat.epoch();
        assert_eq!(cat.relation_version("t"), 0);
        cat.replace_table(table("t"));
        assert_eq!(cat.epoch(), epoch, "data mutation must not bump the epoch");
        assert_eq!(cat.relation_version("t"), 1);
        assert_eq!(cat.relation_version("u"), 0, "other relations untouched");
        cat.replace_table(table("t"));
        assert_eq!(cat.relation_version("t"), 2);
        // A brand-new name registers and starts at version 1.
        cat.replace_table(table("fresh"));
        assert!(cat.table("fresh").is_ok());
        assert_eq!(cat.relation_version("fresh"), 1);
    }

    #[test]
    fn relation_names_sorted() {
        let mut cat = Catalog::new();
        cat.add_table(table("zeta"));
        cat.add_table(table("alpha"));
        assert_eq!(cat.relation_names(), vec!["alpha", "zeta"]);
    }
}
