//! Property tests of the wire codec: arbitrary queries, configs,
//! values, and result rows survive an encode → decode round trip
//! unchanged, and adversarial bytes — random, truncated, mutated, or
//! crafted (depth bombs, lying lengths) — produce typed errors, never
//! panics.

use fj_algebra::{FromItem, JoinQuery, NetworkModel};
use fj_expr::{col, lit, Expr};
use fj_net::codec::{
    decode_expr, decode_fragment, decode_gather, decode_health_reply, decode_mutation_reply,
    decode_mutation_request, decode_reply, decode_request, decode_scatter, decode_scatter_ack,
    decode_semijoin, decode_semijoin_ack, decode_trace_reply, decode_value, encode_expr,
    encode_fragment, encode_gather, encode_health_reply, encode_mutation_reply,
    encode_mutation_request, encode_reply_parts, encode_request, encode_scatter,
    encode_scatter_ack, encode_semijoin, encode_semijoin_ack, encode_trace_reply, encode_value,
    CodecError, FragmentRequest, GatherReply, HealthSnapshot, HealthStatus, KeyFilter,
    MutationReply, MutationRequest, QueryRequest, Reader, ScatterAck, ScatterRequest, SemijoinAck,
    SemijoinRequest, Writer, MAX_EXPR_DEPTH,
};
use fj_optimizer::{CostParams, OptimizerConfig, PlanShape};
use fj_storage::{BloomFilter, Column, DataType, Mutation, Schema, Tuple, Value};
use proptest::prelude::*;

/// Deterministic value from two generated words.
fn value_from(tag: u64, payload: u64) -> Value {
    match tag % 5 {
        0 => Value::Null,
        1 => Value::Int(payload as i64),
        2 => Value::Double(f64::from_bits(payload)),
        3 => Value::Str(format!("s{}", payload % 1000)),
        _ => Value::Bool(payload & 1 == 0),
    }
}

/// Deterministic expression tree from a word stream (consumes words;
/// bottoms out at columns when the stream runs dry or depth is hit).
fn expr_from(words: &mut dyn Iterator<Item = u64>, depth: usize) -> Expr {
    let Some(w) = words.next() else {
        return col("T.leaf");
    };
    if depth > 24 {
        return col(format!("T.c{}", w % 8));
    }
    match w % 6 {
        0 => col(format!("T.c{}", w % 8)),
        1 => Expr::Literal(value_from(w / 7, w.rotate_left(13))),
        2 | 3 => {
            let ops = [
                fj_expr::BinOp::Eq,
                fj_expr::BinOp::Ne,
                fj_expr::BinOp::Lt,
                fj_expr::BinOp::Le,
                fj_expr::BinOp::Gt,
                fj_expr::BinOp::Ge,
                fj_expr::BinOp::And,
                fj_expr::BinOp::Or,
                fj_expr::BinOp::Add,
                fj_expr::BinOp::Sub,
                fj_expr::BinOp::Mul,
                fj_expr::BinOp::Div,
                fj_expr::BinOp::Mod,
            ];
            let op = ops[(w / 6) as usize % ops.len()];
            let left = expr_from(words, depth + 1);
            let right = expr_from(words, depth + 1);
            left.binary_for_test(op, right)
        }
        4 => expr_from(words, depth + 1).not(),
        _ => expr_from(words, depth + 1).is_null(),
    }
}

/// Builds `Expr::Binary` without a public constructor per operator.
trait BinaryForTest {
    fn binary_for_test(self, op: fj_expr::BinOp, rhs: Expr) -> Expr;
}
impl BinaryForTest for Expr {
    fn binary_for_test(self, op: fj_expr::BinOp, rhs: Expr) -> Expr {
        use fj_expr::BinOp::*;
        match op {
            Eq => self.eq(rhs),
            Ne => self.ne(rhs),
            Lt => self.lt(rhs),
            Le => self.le(rhs),
            Gt => self.gt(rhs),
            Ge => self.ge(rhs),
            And => self.and(rhs),
            Or => self.or(rhs),
            Add => self.add(rhs),
            Sub => self.sub(rhs),
            Mul => self.mul(rhs),
            Div => self.div(rhs),
            Mod => self.rem(rhs),
        }
    }
}

fn query_from(
    from_words: &[u64],
    pred_words: Option<Vec<u64>>,
    proj_words: Option<Vec<u64>>,
) -> JoinQuery {
    let from = from_words
        .iter()
        .enumerate()
        .map(|(i, w)| FromItem::new(format!("Rel{}", w % 12), format!("A{i}")))
        .collect();
    let mut q = JoinQuery::new(from);
    if let Some(words) = pred_words {
        q = q.with_predicate(expr_from(&mut words.into_iter(), 0));
    }
    if let Some(words) = proj_words {
        let sel = words
            .chunks(3)
            .enumerate()
            .map(|(i, chunk)| (expr_from(&mut chunk.iter().copied(), 0), format!("out{i}")))
            .collect();
        q = q.with_projection(sel);
    }
    q
}

/// Deterministic trace tree from a word stream: fan-out and counters
/// all derive from the words, and some labels carry characters the
/// JSON encoder must escape.
fn trace_node_from(words: &mut dyn Iterator<Item = u64>, depth: usize) -> fj_trace::TraceNode {
    let w = words.next().unwrap_or(0);
    let label = match w % 4 {
        0 => format!("seq scan {}", w % 12),
        1 => format!("hash join \"J{}\"", w % 12),
        2 => format!("filter \\{}\\", w % 12),
        _ => "π".to_string(),
    };
    let fan_out = if depth < 5 { (w % 3) as usize } else { 0 };
    fj_trace::TraceNode {
        stats: fj_trace::OpStats {
            label,
            rows_in: w.rotate_left(7),
            rows_out: w.rotate_left(11),
            build_rows: w % 100_000,
            probe_rows: w % 77_777,
            pages_read: w % 4096,
            pool_hits: w % 513,
            pool_misses: w % 129,
            wall_micros: w % 1_000_000,
            interrupt_polls: w % 64,
            spills: w % 17,
            spill_pages: w % 9_999,
        },
        children: (0..fan_out)
            .map(|_| trace_node_from(words, depth + 1))
            .collect(),
    }
}

fn config_from(flags: u64, eq_classes: usize, cpu: f64, pages: u64) -> OptimizerConfig {
    OptimizerConfig {
        enable_filter_join: flags & 1 != 0,
        enable_bloom: flags & 2 != 0,
        enable_index_nl: flags & 4 != 0,
        enable_merge_join: flags & 8 != 0,
        filter_join_on_base: flags & 16 != 0,
        allow_prefix_production: flags & 32 != 0,
        plan_shape: if flags & 64 != 0 {
            PlanShape::Bushy
        } else {
            PlanShape::LeftDeep
        },
        eq_classes,
        params: CostParams {
            cpu_weight: cpu,
            memory_pages: pages,
            network: NetworkModel {
                per_message: cpu * 3.0,
                per_byte: cpu / 1024.0,
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn value_round_trip(tag in 0u64..5, payload in 0u64..u64::MAX) {
        let v = value_from(tag, payload);
        let mut w = Writer::new();
        encode_value(&mut w, &v).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = decode_value(&mut r).unwrap();
        r.finish().unwrap();
        // Compare through Debug so Int(1) / Double(1.0) cannot blur:
        // the round trip must preserve the exact variant and payload.
        prop_assert_eq!(format!("{:?}", back), format!("{:?}", v));
    }

    #[test]
    fn expr_round_trip(words in prop::collection::vec(0u64..u64::MAX, 1..40)) {
        let e = expr_from(&mut words.into_iter(), 0);
        let mut w = Writer::new();
        encode_expr(&mut w, &e).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = decode_expr(&mut r).unwrap();
        r.finish().unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn request_round_trip(
        from_words in prop::collection::vec(0u64..u64::MAX, 1..6),
        pred_words in prop::option::of(prop::collection::vec(0u64..u64::MAX, 1..30)),
        proj_words in prop::option::of(prop::collection::vec(0u64..u64::MAX, 1..12)),
        deadline in 0u64..100_000,
        flags in 0u64..128,
        eq_classes in 0usize..16,
        cpu in 0.0f64..10.0,
        pages in 1u64..1_000_000,
        with_config in 0u64..2,
    ) {
        let request = QueryRequest {
            deadline_millis: deadline,
            want_trace: flags & 1 != 0,
            config: (with_config == 1).then(|| config_from(flags, eq_classes, cpu, pages)),
            query: query_from(&from_words, pred_words, proj_words),
        };
        let bytes = encode_request(&request).unwrap();
        let back = decode_request(&bytes).unwrap();
        prop_assert_eq!(back, request);
    }

    #[test]
    fn reply_round_trip(
        col_words in prop::collection::vec((0u64..4, 0u64..2), 1..6),
        row_words in prop::collection::vec(0u64..u64::MAX, 0..60),
        measured in 0.0f64..1e9,
        latency in 0u64..u64::MAX,
        est in prop::option::of(0.0f64..1e9),
        cache_hit in 0u64..2,
    ) {
        let types = [DataType::Int, DataType::Double, DataType::Str, DataType::Bool];
        let columns: Vec<Column> = col_words
            .iter()
            .enumerate()
            .map(|(i, (t, n))| {
                let ty = types[*t as usize % types.len()];
                if *n == 1 {
                    Column::nullable(format!("T.c{i}"), ty)
                } else {
                    Column::new(format!("T.c{i}"), ty)
                }
            })
            .collect();
        let schema = Schema::new(columns).unwrap();
        let arity = schema.arity();
        let rows: Vec<Tuple> = row_words
            .chunks(arity * 2)
            .filter(|c| c.len() == arity * 2)
            .map(|c| {
                Tuple::new(
                    (0..arity)
                        .map(|i| value_from(c[2 * i], c[2 * i + 1]))
                        .collect(),
                )
            })
            .collect();
        let bytes = encode_reply_parts(
            &schema, &rows, measured, est, cache_hit == 1, latency,
        )
        .unwrap();
        let reply = decode_reply(&bytes).unwrap();
        prop_assert_eq!(reply.schema.as_ref(), &schema);
        prop_assert_eq!(
            format!("{:?}", reply.rows),
            format!("{:?}", rows)
        );
        prop_assert_eq!(reply.measured_cost.to_bits(), measured.to_bits());
        prop_assert_eq!(reply.estimated_cost.map(f64::to_bits), est.map(f64::to_bits));
        prop_assert_eq!(reply.cache_hit, cache_hit == 1);
        prop_assert_eq!(reply.latency_micros, latency);
    }

    /// Random bytes never panic the request decoder.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(0u64..256, 0..200)) {
        let payload: Vec<u8> = bytes.iter().map(|b| *b as u8).collect();
        let _ = decode_request(&payload);
        let _ = decode_reply(&payload);
        let _ = fj_net::codec::decode_error(&payload);
        let _ = fj_net::codec::decode_stats_reply(&payload);
        let _ = decode_health_reply(&payload);
        let _ = decode_trace_reply(&payload);
        let _ = decode_scatter(&payload);
        let _ = decode_scatter_ack(&payload);
        let _ = decode_semijoin(&payload);
        let _ = decode_semijoin_ack(&payload);
        let _ = decode_fragment(&payload);
        let _ = decode_gather(&payload);
        let _ = decode_mutation_request(&payload);
        let _ = decode_mutation_reply(&payload);
    }

    /// Every health snapshot survives the encode → decode round trip —
    /// both the framed payload and the JSON body inside it.
    #[test]
    fn health_reply_round_trip(
        status_word in 0u64..3,
        workers in 0u64..u64::MAX,
        workers_replaced in 0u64..u64::MAX,
        queued in 0u64..u64::MAX,
        in_flight in 0u64..u64::MAX,
        queue_capacity in 0u64..u64::MAX,
        connections_active in 0u64..u64::MAX,
        pool_hits in 0u64..u64::MAX,
        pool_misses in 0u64..u64::MAX,
        pool_evictions in 0u64..u64::MAX,
        wal_fsyncs in 0u64..u64::MAX,
        dist in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        muts in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        spill in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
    ) {
        let health = HealthSnapshot {
            status: [HealthStatus::Ready, HealthStatus::Degraded, HealthStatus::Draining]
                [status_word as usize],
            workers,
            workers_replaced,
            queued,
            in_flight,
            queue_capacity,
            connections_active,
            pool_hits,
            pool_misses,
            pool_evictions,
            wal_fsyncs,
            fragments_served: dist.0,
            semijoin_sets_shipped: dist.1,
            bytes_scattered: dist.2,
            bytes_gathered: dist.3,
            mutations_applied: muts.0,
            wal_deltas: muts.1,
            dirty_pages: muts.2,
            checkpoints: muts.3,
            spills: spill.0,
            spill_partitions: spill.1,
            spill_bytes_written: spill.2,
            spill_bytes_read: spill.3,
            peak_temp_bytes: spill.4,
        };
        let payload = encode_health_reply(&health).unwrap();
        prop_assert_eq!(decode_health_reply(&payload).unwrap(), health);
        prop_assert_eq!(HealthSnapshot::from_json(&health.to_json()).unwrap(), health);
    }

    /// The health JSON parser accepts any key order (it is a wire
    /// format other tooling may re-serialize).
    #[test]
    fn health_json_accepts_any_key_order(shift in 0usize..24, ws in 0u64..2) {
        let health = HealthSnapshot {
            status: HealthStatus::Degraded,
            workers: 4,
            workers_replaced: 1,
            queued: 9,
            in_flight: 3,
            queue_capacity: 16,
            connections_active: 7,
            pool_hits: 40,
            pool_misses: 5,
            pool_evictions: 2,
            wal_fsyncs: 11,
            fragments_served: 6,
            semijoin_sets_shipped: 8,
            bytes_scattered: 4096,
            bytes_gathered: 2048,
            mutations_applied: 12,
            wal_deltas: 31,
            dirty_pages: 5,
            checkpoints: 2,
            spills: 3,
            spill_partitions: 24,
            spill_bytes_written: 8192,
            spill_bytes_read: 8192,
            peak_temp_bytes: 4096,
        };
        let pairs = [
            ("status", "\"degraded\"".to_string()),
            ("workers", "4".to_string()),
            ("workers_replaced", "1".to_string()),
            ("queued", "9".to_string()),
            ("in_flight", "3".to_string()),
            ("queue_capacity", "16".to_string()),
            ("connections_active", "7".to_string()),
            ("pool_hits", "40".to_string()),
            ("pool_misses", "5".to_string()),
            ("pool_evictions", "2".to_string()),
            ("wal_fsyncs", "11".to_string()),
            ("fragments_served", "6".to_string()),
            ("semijoin_sets_shipped", "8".to_string()),
            ("bytes_scattered", "4096".to_string()),
            ("bytes_gathered", "2048".to_string()),
            ("mutations_applied", "12".to_string()),
            ("wal_deltas", "31".to_string()),
            ("dirty_pages", "5".to_string()),
            ("checkpoints", "2".to_string()),
            ("spills", "3".to_string()),
            ("spill_partitions", "24".to_string()),
            ("spill_bytes_written", "8192".to_string()),
            ("spill_bytes_read", "8192".to_string()),
            ("peak_temp_bytes", "4096".to_string()),
        ];
        let sep = if ws == 1 { " " } else { "" };
        let body = (0..pairs.len())
            .map(|i| {
                let (k, v) = &pairs[(i + shift) % pairs.len()];
                format!("\"{k}\"{sep}:{sep}{v}")
            })
            .collect::<Vec<_>>()
            .join(&format!(",{sep}"));
        let json = format!("{{{sep}{body}{sep}}}");
        prop_assert_eq!(HealthSnapshot::from_json(&json).unwrap(), health);
    }

    /// Truncations and single-byte mutations of a valid health reply
    /// are typed errors or different valid snapshots — never panics.
    #[test]
    fn health_reply_mutations_never_panic(
        queued in 0u64..1_000_000,
        pos_word in 0u64..u64::MAX,
        new_byte in 0u64..256,
    ) {
        let health = HealthSnapshot {
            status: HealthStatus::Ready,
            workers: 4,
            workers_replaced: 0,
            queued,
            in_flight: 0,
            queue_capacity: 64,
            connections_active: 2,
            pool_hits: 0,
            pool_misses: 0,
            pool_evictions: 0,
            wal_fsyncs: 0,
            fragments_served: 0,
            semijoin_sets_shipped: 0,
            bytes_scattered: 0,
            bytes_gathered: 0,
            mutations_applied: 0,
            wal_deltas: 0,
            dirty_pages: 0,
            checkpoints: 0,
            spills: 0,
            spill_partitions: 0,
            spill_bytes_written: 0,
            spill_bytes_read: 0,
            peak_temp_bytes: 0,
        };
        let mut payload = encode_health_reply(&health).unwrap();
        for cut in 0..payload.len() {
            prop_assert!(decode_health_reply(&payload[..cut]).is_err());
        }
        let pos = (pos_word as usize) % payload.len();
        payload[pos] = new_byte as u8;
        let _ = decode_health_reply(&payload);
    }

    /// Random strings never panic the strict JSON parser.
    #[test]
    fn health_json_fuzz_never_panics(bytes in prop::collection::vec(0u64..256, 0..120)) {
        let raw: Vec<u8> = bytes.iter().map(|b| *b as u8).collect();
        let s = String::from_utf8_lossy(&raw);
        let _ = HealthSnapshot::from_json(&s);
    }

    /// Every generated trace tree survives the framed encode → decode
    /// round trip — including labels with characters the JSON encoder
    /// must escape.
    #[test]
    fn trace_reply_round_trip(
        words in prop::collection::vec(0u64..u64::MAX, 1..40),
        total in 0u64..u64::MAX,
    ) {
        let trace = fj_trace::QueryTrace {
            root: trace_node_from(&mut words.into_iter(), 0),
            total_wall_micros: total,
        };
        let payload = encode_trace_reply(&trace).unwrap();
        prop_assert_eq!(decode_trace_reply(&payload).unwrap(), trace.clone());
        prop_assert_eq!(
            fj_trace::QueryTrace::from_json(&trace.to_json()).unwrap(),
            trace
        );
    }

    /// Truncations of a valid trace reply are typed errors and
    /// single-byte mutations never panic (they may decode to a
    /// different valid trace; framing checksums are TCP's job).
    #[test]
    fn trace_reply_mutations_never_panic(
        words in prop::collection::vec(0u64..u64::MAX, 1..12),
        pos_word in 0u64..u64::MAX,
        new_byte in 0u64..256,
    ) {
        let trace = fj_trace::QueryTrace {
            root: trace_node_from(&mut words.into_iter(), 0),
            total_wall_micros: 42,
        };
        let mut payload = encode_trace_reply(&trace).unwrap();
        for cut in 0..payload.len() {
            prop_assert!(decode_trace_reply(&payload[..cut]).is_err());
        }
        let pos = (pos_word as usize) % payload.len();
        payload[pos] = new_byte as u8;
        let _ = decode_trace_reply(&payload);
    }

    /// Random strings never panic the strict trace JSON parser.
    #[test]
    fn trace_json_fuzz_never_panics(bytes in prop::collection::vec(0u64..256, 0..120)) {
        let raw: Vec<u8> = bytes.iter().map(|b| *b as u8).collect();
        let s = String::from_utf8_lossy(&raw);
        let _ = fj_trace::QueryTrace::from_json(&s);
    }

    /// Every truncation of a valid request is a typed error (or, only
    /// at full length, a success) — never a panic.
    #[test]
    fn truncations_are_typed_errors(
        from_words in prop::collection::vec(0u64..u64::MAX, 1..4),
        pred_words in prop::option::of(prop::collection::vec(0u64..u64::MAX, 1..20)),
    ) {
        let request = QueryRequest {
            deadline_millis: 17,
            want_trace: true,
            config: Some(OptimizerConfig::default()),
            query: query_from(&from_words, pred_words, None),
        };
        let bytes = encode_request(&request).unwrap();
        for cut in 0..bytes.len() {
            match decode_request(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("truncated payload decoded at cut {cut}/{}", bytes.len()),
            }
        }
        prop_assert_eq!(decode_request(&bytes).unwrap(), request);
    }

    /// Single-byte mutations never panic (they may decode to a
    /// different valid request; that is fine — framing checksums are
    /// TCP's job).
    #[test]
    fn mutations_never_panic(
        from_words in prop::collection::vec(0u64..u64::MAX, 1..4),
        pos_word in 0u64..u64::MAX,
        new_byte in 0u64..256,
    ) {
        let request = QueryRequest {
            deadline_millis: 3,
            want_trace: false,
            config: None,
            query: query_from(&from_words, Some(vec![pos_word]), None),
        };
        let mut bytes = encode_request(&request).unwrap();
        let pos = (pos_word as usize) % bytes.len();
        bytes[pos] = new_byte as u8;
        let _ = decode_request(&bytes);
    }
}

#[test]
fn depth_bomb_is_too_deep_not_a_stack_overflow() {
    // 300 nested NOT tags around a column: decoding must stop at
    // MAX_EXPR_DEPTH with a typed error instead of recursing away.
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_be_bytes()); // deadline
    payload.push(0); // tracing off
    payload.push(0); // no config override
    payload.extend_from_slice(&1u32.to_be_bytes()); // one FROM item
    payload.extend_from_slice(&1u32.to_be_bytes());
    payload.push(b'R');
    payload.extend_from_slice(&1u32.to_be_bytes());
    payload.push(b'A');
    payload.push(1); // predicate present
    payload.extend(vec![3u8; MAX_EXPR_DEPTH + 100]); // EXPR_NOT tags
    payload.push(0); // EXPR_COLUMN
    payload.extend_from_slice(&1u32.to_be_bytes());
    payload.push(b'x');
    payload.push(0); // no projection
    assert!(matches!(decode_request(&payload), Err(CodecError::TooDeep)));
}

#[test]
fn lying_string_length_is_rejected_before_allocation() {
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_be_bytes());
    payload.push(0); // tracing off
    payload.push(0);
    payload.extend_from_slice(&1u32.to_be_bytes());
    payload.extend_from_slice(&u32::MAX.to_be_bytes()); // "4 GiB" name
    payload.push(b'R');
    assert!(matches!(
        decode_request(&payload),
        Err(CodecError::TooLarge { .. })
    ));
}

#[test]
fn non_utf8_string_is_typed() {
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_be_bytes());
    payload.push(0); // tracing off
    payload.push(0);
    payload.extend_from_slice(&1u32.to_be_bytes());
    payload.extend_from_slice(&2u32.to_be_bytes());
    payload.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8 relation
    assert!(matches!(decode_request(&payload), Err(CodecError::BadUtf8)));
}

#[test]
fn trailing_bytes_are_rejected() {
    let request = QueryRequest {
        deadline_millis: 0,
        want_trace: false,
        config: None,
        query: JoinQuery::new(vec![FromItem::new("Emp", "E")])
            .with_predicate(col("E.age").lt(lit(30))),
    };
    let mut bytes = encode_request(&request).unwrap();
    bytes.push(0xAB);
    assert!(matches!(
        decode_request(&bytes),
        Err(CodecError::TrailingBytes(1))
    ));
}

#[test]
fn adversarial_health_json_is_typed_not_panic() {
    let valid = concat!(
        "{\"status\":\"ready\",\"workers\":4,\"workers_replaced\":0,",
        "\"queued\":0,\"in_flight\":0,\"queue_capacity\":64,",
        "\"connections_active\":1,\"pool_hits\":0,\"pool_misses\":0,",
        "\"pool_evictions\":0,\"wal_fsyncs\":0,\"fragments_served\":0,",
        "\"semijoin_sets_shipped\":0,\"bytes_scattered\":0,",
        "\"bytes_gathered\":0,\"mutations_applied\":0,",
        "\"wal_deltas\":0,\"dirty_pages\":0,\"checkpoints\":0,",
        "\"spills\":0,\"spill_partitions\":0,\"spill_bytes_written\":0,",
        "\"spill_bytes_read\":0,\"peak_temp_bytes\":0}"
    );
    HealthSnapshot::from_json(valid).unwrap();
    let cases: &[&str] = &[
        "",
        "{",
        "{}",
        "null",
        "[1,2]",
        // unknown status
        &valid.replace("ready", "sideways"),
        // status must be a string
        &valid.replace("\"ready\"", "3"),
        // duplicate key
        &valid.replace("\"workers\":4", "\"workers\":4,\"workers\":4"),
        // unknown key
        &valid.replace("\"workers\"", "\"sockets\""),
        // missing key
        &valid.replace(",\"connections_active\":1", ""),
        // nested value
        &valid.replace("\"workers\":4", "\"workers\":{\"n\":4}"),
        // negative / float / boolean counters
        &valid.replace("\"workers\":4", "\"workers\":-4"),
        &valid.replace("\"workers\":4", "\"workers\":4.5"),
        &valid.replace("\"workers\":4", "\"workers\":true"),
        // u64 overflow
        &valid.replace("\"workers\":4", "\"workers\":18446744073709551616"),
        // trailing bytes
        &format!("{valid}x"),
    ];
    for case in cases {
        assert!(
            HealthSnapshot::from_json(case).is_err(),
            "accepted adversarial health json: {case:?}"
        );
    }
}

#[test]
fn adversarial_trace_json_is_typed_not_panic() {
    let valid = concat!(
        "{\"total_wall_micros\":5,\"root\":{\"op\":\"seq scan Emp\",",
        "\"rows_in\":0,\"rows_out\":3,\"build_rows\":0,\"probe_rows\":0,",
        "\"pages_read\":1,\"pool_hits\":1,\"pool_misses\":1,",
        "\"wall_micros\":4,\"interrupt_polls\":2,",
        "\"spills\":1,\"spill_pages\":6,",
        "\"children\":[]}}"
    );
    fj_trace::QueryTrace::from_json(valid).unwrap();
    let cases: &[&str] = &[
        "",
        "{",
        "{}",
        "null",
        "[1]",
        // duplicate top-level and per-node keys
        &valid.replace(
            "\"total_wall_micros\":5",
            "\"total_wall_micros\":5,\"total_wall_micros\":5",
        ),
        &valid.replace("\"rows_out\":3", "\"rows_out\":3,\"rows_out\":3"),
        // unknown and missing keys
        &valid.replace("\"rows_out\"", "\"cols_out\""),
        &valid.replace("\"rows_in\":0,", ""),
        &valid.replace(",\"root\":{", ",\"root2\":{"),
        // counters must be unsigned integers that fit a u64
        &valid.replace("\"rows_out\":3", "\"rows_out\":-3"),
        &valid.replace("\"rows_out\":3", "\"rows_out\":3.5"),
        &valid.replace("\"rows_out\":3", "\"rows_out\":true"),
        &valid.replace("\"rows_out\":3", "\"rows_out\":18446744073709551616"),
        // op must be a string with only \" and \\ escapes
        &valid.replace("\"seq scan Emp\"", "7"),
        &valid.replace("seq scan Emp", "seq\\nscan"),
        // children must be an array of nodes
        &valid.replace("\"children\":[]", "\"children\":{}"),
        &valid.replace("\"children\":[]", "\"children\":[7]"),
        // trailing bytes
        &format!("{valid}x"),
    ];
    for case in cases {
        assert!(
            fj_trace::QueryTrace::from_json(case).is_err(),
            "accepted adversarial trace json: {case:?}"
        );
    }
}

#[test]
fn trace_depth_bomb_is_too_deep_not_a_stack_overflow() {
    // Nest children far past MAX_TRACE_DEPTH: the parser must stop
    // with a typed error instead of recursing away.
    let node_open = concat!(
        "{\"op\":\"x\",\"rows_in\":0,\"rows_out\":0,\"build_rows\":0,",
        "\"probe_rows\":0,\"pages_read\":0,\"pool_hits\":0,",
        "\"pool_misses\":0,\"wall_micros\":0,",
        "\"interrupt_polls\":0,\"children\":["
    );
    let mut json = String::from("{\"total_wall_micros\":0,\"root\":");
    for _ in 0..(fj_trace::MAX_TRACE_DEPTH + 50) {
        json.push_str(node_open);
    }
    assert!(matches!(
        fj_trace::QueryTrace::from_json(&json),
        Err(fj_trace::TraceError::TooDeep)
    ));
    // And the framed decoder surfaces it as a typed codec error.
    let mut payload = Vec::new();
    payload.extend_from_slice(&(json.len() as u32).to_be_bytes());
    payload.extend_from_slice(json.as_bytes());
    assert!(matches!(
        decode_trace_reply(&payload),
        Err(CodecError::Invalid(_))
    ));
}

#[test]
fn duplicate_reply_columns_are_invalid_not_panic() {
    // Hand-craft a reply payload whose schema repeats a column name:
    // Schema::new rejects it, and the codec must surface that as a
    // typed Invalid error.
    let mut payload = Vec::new();
    payload.extend_from_slice(&2u32.to_be_bytes()); // two columns
    for _ in 0..2 {
        payload.extend_from_slice(&3u32.to_be_bytes());
        payload.extend_from_slice(b"T.a");
        payload.push(0); // Int
        payload.push(0); // non-nullable
    }
    payload.extend_from_slice(&0u32.to_be_bytes()); // zero rows
    payload.extend_from_slice(&0f64.to_bits().to_be_bytes());
    payload.push(0); // no estimate
    payload.push(0); // cache_hit = false
    payload.extend_from_slice(&0u64.to_be_bytes());
    assert!(matches!(
        decode_reply(&payload),
        Err(CodecError::Invalid(_))
    ));
}

// ---------------------------------------------- distributed frames

/// Deterministic schema from generated (type, nullable) words.
fn schema_from(col_words: &[(u64, u64)]) -> Schema {
    let types = [
        DataType::Int,
        DataType::Double,
        DataType::Str,
        DataType::Bool,
    ];
    Schema::new(
        col_words
            .iter()
            .enumerate()
            .map(|(i, (t, n))| {
                let ty = types[*t as usize % types.len()];
                if *n == 1 {
                    Column::nullable(format!("T.c{i}"), ty)
                } else {
                    Column::new(format!("T.c{i}"), ty)
                }
            })
            .collect(),
    )
    .unwrap()
}

/// Deterministic rows from a word stream, two words per value.
fn rows_from(row_words: &[u64], arity: usize) -> Vec<Tuple> {
    row_words
        .chunks(arity * 2)
        .filter(|c| c.len() == arity * 2)
        .map(|c| {
            Tuple::new(
                (0..arity)
                    .map(|i| value_from(c[2 * i], c[2 * i + 1]))
                    .collect(),
            )
        })
        .collect()
}

/// Deterministic key filter: exact key list or a Bloom filter over the
/// same keys, chosen by `tag`.
fn key_filter_from(tag: u64, key_words: &[(u64, u64)]) -> KeyFilter {
    let keys: Vec<Value> = key_words.iter().map(|(t, p)| value_from(*t, *p)).collect();
    if tag == 0 {
        KeyFilter::Exact(keys)
    } else {
        let mut bloom = BloomFilter::with_capacity(keys.len().max(1) as u64, 0.01);
        for k in &keys {
            bloom.insert(k);
        }
        KeyFilter::Bloom(bloom)
    }
}

fn semijoin_from(
    filter_words: &[(u64, u64, u64)],
    want_rows: bool,
    keys_of: Option<u64>,
) -> SemijoinRequest {
    SemijoinRequest {
        table: "Emp__p1".to_string(),
        filters: filter_words
            .iter()
            .enumerate()
            .map(|(i, (tag, a, b))| {
                (
                    format!("c{i}"),
                    key_filter_from(*tag % 2, &[(*a % 5, *b), (*b % 5, *a)]),
                )
            })
            .collect(),
        want_rows,
        keys_of: keys_of.map(|w| format!("c{}", w % 4)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every SCATTER payload survives the encode → decode round trip.
    #[test]
    fn scatter_round_trip(
        col_words in prop::collection::vec((0u64..4, 0u64..2), 1..5),
        row_words in prop::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        let schema = schema_from(&col_words).into_ref();
        let rows = rows_from(&row_words, schema.arity());
        let req = ScatterRequest {
            table: "orders__p2".to_string(),
            schema: schema.clone(),
            rows,
        };
        let bytes = encode_scatter(&req).unwrap();
        let back = decode_scatter(&bytes).unwrap();
        prop_assert_eq!(&back.table, &req.table);
        prop_assert_eq!(back.schema.as_ref(), schema.as_ref());
        prop_assert_eq!(format!("{:?}", back.rows), format!("{:?}", req.rows));
    }

    /// SCATTER_ACK round-trips exactly.
    #[test]
    fn scatter_ack_round_trip(rows_stored in 0u64..u64::MAX, bytes_stored in 0u64..u64::MAX) {
        let ack = ScatterAck { rows_stored, bytes_stored };
        let bytes = encode_scatter_ack(&ack).unwrap();
        prop_assert_eq!(decode_scatter_ack(&bytes).unwrap(), ack);
    }

    /// Every SEMIJOIN payload — exact and Bloom filters, row/key reply
    /// selectors — survives the round trip, including Bloom geometry.
    #[test]
    fn semijoin_round_trip(
        filter_words in prop::collection::vec((0u64..2, 0u64..u64::MAX, 0u64..u64::MAX), 0..4),
        want_rows_word in 0u64..2,
        keys_of in prop::option::of(0u64..u64::MAX),
    ) {
        let req = semijoin_from(&filter_words, want_rows_word == 1, keys_of);
        let bytes = encode_semijoin(&req).unwrap();
        let back = decode_semijoin(&bytes).unwrap();
        prop_assert_eq!(&back.table, &req.table);
        prop_assert_eq!(back.want_rows, req.want_rows);
        prop_assert_eq!(&back.keys_of, &req.keys_of);
        prop_assert_eq!(back.filters.len(), req.filters.len());
        for ((na, fa), (nb, fb)) in back.filters.iter().zip(req.filters.iter()) {
            prop_assert_eq!(na, nb);
            prop_assert!(fa == fb);
        }
    }

    /// Every SEMIJOIN_ACK payload survives the round trip.
    #[test]
    fn semijoin_ack_round_trip(
        rows_before in 0u64..u64::MAX,
        rows_after in 0u64..u64::MAX,
        col_words in prop::collection::vec((0u64..4, 0u64..2), 1..4),
        row_words in prop::collection::vec(0u64..u64::MAX, 0..24),
        with_rows_word in 0u64..2,
        key_words in prop::option::of(prop::collection::vec((0u64..5, 0u64..u64::MAX), 0..12)),
    ) {
        let schema = schema_from(&col_words).into_ref();
        let rows = rows_from(&row_words, schema.arity());
        let ack = SemijoinAck {
            rows_before,
            rows_after,
            rows: (with_rows_word == 1).then(|| (schema.clone(), rows)),
            keys: key_words
                .map(|ks| ks.iter().map(|(t, p)| value_from(*t, *p)).collect()),
        };
        let bytes = encode_semijoin_ack(&ack).unwrap();
        let back = decode_semijoin_ack(&bytes).unwrap();
        prop_assert_eq!(back.rows_before, ack.rows_before);
        prop_assert_eq!(back.rows_after, ack.rows_after);
        prop_assert_eq!(format!("{:?}", back.rows), format!("{:?}", ack.rows));
        prop_assert_eq!(format!("{:?}", back.keys), format!("{:?}", ack.keys));
    }

    /// Every FRAGMENT payload (a deadline plus a full join query)
    /// survives the round trip.
    #[test]
    fn fragment_round_trip(
        deadline in 0u64..u64::MAX,
        from_words in prop::collection::vec(0u64..u64::MAX, 1..5),
        pred_words in prop::option::of(prop::collection::vec(0u64..u64::MAX, 1..24)),
        proj_words in prop::option::of(prop::collection::vec(0u64..u64::MAX, 1..9)),
    ) {
        let req = FragmentRequest {
            deadline_millis: deadline,
            query: query_from(&from_words, pred_words, proj_words),
        };
        let bytes = encode_fragment(&req).unwrap();
        let back = decode_fragment(&bytes).unwrap();
        prop_assert_eq!(back.deadline_millis, req.deadline_millis);
        prop_assert_eq!(back.query, req.query);
    }

    /// Every GATHER payload survives the round trip.
    #[test]
    fn gather_round_trip(
        col_words in prop::collection::vec((0u64..4, 0u64..2), 1..5),
        row_words in prop::collection::vec(0u64..u64::MAX, 0..40),
        latency in 0u64..u64::MAX,
    ) {
        let schema = schema_from(&col_words).into_ref();
        let rows = rows_from(&row_words, schema.arity());
        let reply = GatherReply {
            schema: schema.clone(),
            rows,
            latency_micros: latency,
        };
        let bytes = encode_gather(&reply).unwrap();
        let back = decode_gather(&bytes).unwrap();
        prop_assert_eq!(back.schema.as_ref(), schema.as_ref());
        prop_assert_eq!(format!("{:?}", back.rows), format!("{:?}", reply.rows));
        prop_assert_eq!(back.latency_micros, latency);
    }

    /// Every truncation of a valid dist payload is a typed error, and
    /// single-byte mutations never panic — the same adversarial
    /// discipline the QUERY/HEALTH/TRACE codecs keep.
    #[test]
    fn dist_truncations_and_mutations_are_typed(
        which in 0u64..4,
        filter_words in prop::collection::vec((0u64..2, 0u64..u64::MAX, 0u64..u64::MAX), 0..3),
        col_words in prop::collection::vec((0u64..4, 0u64..2), 1..4),
        row_words in prop::collection::vec(0u64..u64::MAX, 0..16),
        pos_word in 0u64..u64::MAX,
        new_byte in 0u64..256,
    ) {
        let schema = schema_from(&col_words).into_ref();
        let rows = rows_from(&row_words, schema.arity());
        let mut bytes = match which {
            0 => encode_scatter(&ScatterRequest {
                table: "t__p0".to_string(),
                schema: schema.clone(),
                rows,
            })
            .unwrap(),
            1 => encode_semijoin(&semijoin_from(&filter_words, true, Some(pos_word))).unwrap(),
            2 => encode_fragment(&FragmentRequest {
                deadline_millis: 9,
                query: query_from(&[1, 2], None, None),
            })
            .unwrap(),
            _ => encode_gather(&GatherReply {
                schema: schema.clone(),
                rows,
                latency_micros: 5,
            })
            .unwrap(),
        };
        let decode = |b: &[u8]| -> bool {
            match which {
                0 => decode_scatter(b).is_err(),
                1 => decode_semijoin(b).is_err(),
                2 => decode_fragment(b).is_err(),
                _ => decode_gather(b).is_err(),
            }
        };
        for cut in 0..bytes.len() {
            prop_assert!(decode(&bytes[..cut]), "truncation decoded at cut {}", cut);
        }
        let pos = (pos_word as usize) % bytes.len();
        bytes[pos] = new_byte as u8;
        let ok = !decode(&bytes);
        // Mutations may still decode (to a different valid payload) —
        // the only requirement is no panic, checked by getting here.
        let _ = ok;
    }
}

#[test]
fn bloom_geometry_bomb_is_rejected_before_allocation() {
    // A SEMIJOIN filter claiming 2^60 Bloom bits must be refused by
    // geometry validation, not by attempting the allocation.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u32.to_be_bytes()); // table name len
    payload.push(b'T');
    // One filter: column name, tag 1 = Bloom, absurd n_bits.
    payload.extend_from_slice(&1u32.to_be_bytes()); // one filter
    payload.extend_from_slice(&1u32.to_be_bytes()); // name len
    payload.push(b'k');
    payload.push(1); // Bloom tag
    payload.extend_from_slice(&(1u64 << 60).to_be_bytes()); // n_bits
    payload.push(4); // n_hashes
    payload.extend_from_slice(&0u64.to_be_bytes()); // inserted
    assert!(matches!(
        decode_semijoin(&payload),
        Err(CodecError::TooLarge { .. })
    ));
}

#[test]
fn bloom_word_count_is_bounded_by_remaining_bytes() {
    // Valid-looking geometry (1 MiB of bits) but a payload that ends
    // immediately: the decoder must notice the words cannot be present
    // instead of allocating and reading off the end.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u32.to_be_bytes());
    payload.push(b'T');
    payload.extend_from_slice(&1u32.to_be_bytes());
    payload.extend_from_slice(&1u32.to_be_bytes());
    payload.push(b'k');
    payload.push(1);
    payload.extend_from_slice(&(1u64 << 23).to_be_bytes()); // 8 Mbit = 1 MiB
    payload.push(4);
    payload.extend_from_slice(&0u64.to_be_bytes());
    // No words follow.
    assert!(decode_semijoin(&payload).is_err());
}

#[test]
fn dist_trailing_bytes_are_rejected() {
    let ack = ScatterAck {
        rows_stored: 1,
        bytes_stored: 2,
    };
    let mut bytes = encode_scatter_ack(&ack).unwrap();
    bytes.push(0x55);
    assert!(matches!(
        decode_scatter_ack(&bytes),
        Err(CodecError::TrailingBytes(1))
    ));
}

// ------------------------------------------------- mutation frames

/// Deterministic mutation from generated words, covering all three
/// verbs and all value shapes.
fn mutation_from(verb: u64, table_word: u64, words: &[u64]) -> Mutation {
    let table = format!("Tab{}", table_word % 7);
    match verb % 3 {
        0 => Mutation::Insert {
            table,
            rows: words
                .chunks(4)
                .map(|c| {
                    c.chunks(2)
                        .map(|p| value_from(p[0], p.get(1).copied().unwrap_or(0)))
                        .collect()
                })
                .collect(),
        },
        1 => Mutation::Update {
            table,
            set: words
                .chunks(2)
                .enumerate()
                .map(|(i, c)| {
                    (
                        format!("c{i}"),
                        value_from(c[0], c.get(1).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            where_col: "key".to_string(),
            where_value: value_from(table_word, table_word.rotate_left(17)),
        },
        _ => Mutation::Delete {
            table,
            where_col: "key".to_string(),
            where_value: value_from(table_word, table_word.rotate_left(29)),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every MUTATE request — all three verbs, all value shapes —
    /// survives the encode → decode round trip.
    #[test]
    fn mutation_request_round_trip(
        verb in 0u64..3,
        table_word in 0u64..u64::MAX,
        words in prop::collection::vec(0u64..u64::MAX, 0..24),
        deadline in 0u64..100_000,
    ) {
        let req = MutationRequest {
            deadline_millis: deadline,
            mutation: mutation_from(verb, table_word, &words),
        };
        let bytes = encode_mutation_request(&req).unwrap();
        // Compare through Debug so Int(1) / Double(1.0) cannot blur.
        prop_assert_eq!(
            format!("{:?}", decode_mutation_request(&bytes).unwrap()),
            format!("{:?}", req)
        );
    }

    /// MUTATE_REPLY round-trips exactly.
    #[test]
    fn mutation_reply_round_trip(
        rows_affected in 0u64..u64::MAX,
        row_count in 0u64..u64::MAX,
        version in 0u64..u64::MAX,
    ) {
        let reply = MutationReply { rows_affected, row_count, version };
        let bytes = encode_mutation_reply(&reply).unwrap();
        prop_assert_eq!(decode_mutation_reply(&bytes).unwrap(), reply);
    }

    /// Every truncation of a valid MUTATE request is a typed error, and
    /// single-byte mutations never panic.
    #[test]
    fn mutation_request_truncations_and_mutations_are_typed(
        verb in 0u64..3,
        table_word in 0u64..u64::MAX,
        words in prop::collection::vec(0u64..u64::MAX, 0..12),
        pos_word in 0u64..u64::MAX,
        new_byte in 0u64..256,
    ) {
        let req = MutationRequest {
            deadline_millis: 5,
            mutation: mutation_from(verb, table_word, &words),
        };
        let mut bytes = encode_mutation_request(&req).unwrap();
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_mutation_request(&bytes[..cut]).is_err(),
                "truncated MUTATE payload decoded at cut {}",
                cut
            );
        }
        let pos = (pos_word as usize) % bytes.len();
        bytes[pos] = new_byte as u8;
        // May decode to a different valid request; must never panic.
        let _ = decode_mutation_request(&bytes);
    }
}

#[test]
fn mutation_bad_verb_tag_is_typed() {
    let req = MutationRequest {
        deadline_millis: 0,
        mutation: Mutation::Delete {
            table: "T".to_string(),
            where_col: "k".to_string(),
            where_value: Value::Int(1),
        },
    };
    let mut bytes = encode_mutation_request(&req).unwrap();
    bytes[8] = 9; // the verb tag right after the deadline
    assert!(matches!(
        decode_mutation_request(&bytes),
        Err(CodecError::BadTag { .. })
    ));
}

#[test]
fn mutation_trailing_bytes_are_rejected() {
    let reply = MutationReply {
        rows_affected: 1,
        row_count: 5,
        version: 2,
    };
    let mut bytes = encode_mutation_reply(&reply).unwrap();
    bytes.push(0x7E);
    assert!(matches!(
        decode_mutation_reply(&bytes),
        Err(CodecError::TrailingBytes(1))
    ));
}

#[test]
fn semijoin_bad_option_tag_is_typed() {
    let req = SemijoinRequest {
        table: "T".to_string(),
        filters: vec![],
        want_rows: false,
        keys_of: None,
    };
    let mut bytes = encode_semijoin(&req).unwrap();
    // The trailing byte is the keys_of option tag (0 = absent).
    *bytes.last_mut().unwrap() = 7;
    assert!(matches!(
        decode_semijoin(&bytes),
        Err(CodecError::BadTag { .. })
    ));
}
