//! Loopback integration tests: a real server on an ephemeral port,
//! real TCP clients, and the behaviours the subsystem promises —
//! concurrent row-set fidelity vs the serial `Database` facade, load
//! shedding under a tiny queue, deadline expiry, graceful drain, and
//! protocol-violation handling on raw sockets.

use fj_algebra::fixtures::{paper_catalog, paper_query};
use fj_algebra::{Catalog, FromItem, JoinQuery};
use fj_core::Database;
use fj_expr::{col, lit};
use fj_net::{Client, ErrorCode, NetError, QueryOptions, Server, ServerConfig};
use fj_optimizer::OptimizerConfig;
use fj_runtime::ServiceConfig;
use fj_storage::{DataType, TableBuilder, Tuple};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// The paper query with a tweakable age threshold, so distinct
/// constants yield distinct queries (and distinct plan fingerprints).
fn query_with_age(age: i64) -> JoinQuery {
    JoinQuery::new(vec![
        FromItem::new("Emp", "E"),
        FromItem::new("Dept", "D"),
        FromItem::new("DepAvgSal", "V"),
    ])
    .with_predicate(
        col("E.did")
            .eq(col("D.did"))
            .and(col("E.did").eq(col("V.did")))
            .and(col("E.sal").gt(col("V.avgsal")))
            .and(col("E.age").lt(lit(age))),
    )
}

/// A two-table equi-join big enough that a debug-build execution takes
/// long enough to hold a worker while other requests pile up.
fn big_catalog_and_query(rows: i64) -> (Catalog, JoinQuery) {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("L")
            .column("k", DataType::Int)
            .column("v", DataType::Int)
            .rows((0..rows).map(|i| vec![(i % 97).into(), i.into()]))
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("R")
            .column("k", DataType::Int)
            .column("w", DataType::Int)
            .rows((0..rows).map(|i| vec![(i % 89).into(), (-i).into()]))
            .build()
            .unwrap()
            .into_ref(),
    );
    let q = JoinQuery::new(vec![FromItem::new("L", "A"), FromItem::new("R", "B")])
        .with_predicate(col("A.k").eq(col("B.k")));
    (cat, q)
}

#[test]
fn thirty_two_concurrent_clients_match_serial() {
    let server = Server::bind("127.0.0.1:0", paper_catalog(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let serial = Database::with_catalog(paper_catalog());
    let ages: Vec<i64> = (0..8).map(|i| 24 + i).collect();
    let expected: Vec<Vec<Tuple>> = ages
        .iter()
        .map(|&a| sorted(serial.execute(&query_with_age(a)).unwrap().rows))
        .collect();

    let handles: Vec<_> = (0..32)
        .map(|i| {
            let which = i % ages.len();
            let age = ages[which];
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Two requests per connection: the protocol is
                // request/response, not one-shot.
                let first = client.query(&query_with_age(age)).unwrap();
                let second = client.query(&query_with_age(age)).unwrap();
                (which, sorted(first.rows), sorted(second.rows))
            })
        })
        .collect();
    for h in handles {
        let (which, first, second) = h.join().unwrap();
        assert_eq!(first, expected[which], "variant {which} diverged over TCP");
        assert_eq!(
            second, expected[which],
            "repeat of variant {which} diverged"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.connections_total, 32);
    assert_eq!(stats.requests, 64);
    assert_eq!(stats.results, 64);
    assert_eq!(stats.sheds, 0);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    server.shutdown();
}

#[test]
fn per_request_config_override_changes_the_plan_not_the_rows() {
    let server = Server::bind("127.0.0.1:0", paper_catalog(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let default_reply = client.query(&paper_query()).unwrap();
    let override_reply = client
        .query_with(
            &paper_query(),
            &QueryOptions {
                deadline: None,
                config: Some(OptimizerConfig::without_filter_join()),
                want_trace: false,
            },
        )
        .unwrap();
    assert_eq!(
        sorted(default_reply.rows),
        sorted(override_reply.rows),
        "an optimizer override may change the plan but never the answer"
    );
    server.shutdown();
}

#[test]
fn queue_full_sheds_with_retryable_code_and_no_hang() {
    let (cat, query) = big_catalog_and_query(1500);
    let server = Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            service: ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let start = Instant::now();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let query = query.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                match client.query(&query) {
                    Ok(reply) => Ok(reply.rows.len()),
                    Err(e) => Err(e),
                }
            })
        })
        .collect();
    let mut oks = 0u32;
    let mut sheds = 0u32;
    for h in handles {
        match h.join().unwrap() {
            Ok(nrows) => {
                assert!(nrows > 0);
                oks += 1;
            }
            Err(NetError::Remote { code, .. }) => {
                assert_eq!(code, ErrorCode::Shed, "only SHED is expected here");
                sheds += 1;
            }
            Err(other) => panic!("unexpected client error: {other}"),
        }
    }
    assert_eq!(oks + sheds, 8);
    assert!(oks >= 1, "at least the first-in request must be served");
    assert!(
        sheds >= 1,
        "8 slow queries against workers=1/queue=1 must shed at least one"
    );
    // Shed replies are immediate refusals, not timeouts: the whole
    // burst must resolve in far less time than serving 8 queries
    // serially would take.
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "shedding must not degrade into hanging"
    );
    let stats = server.stats();
    assert_eq!(stats.sheds as u32, sheds);
    assert!(server.stats_json().contains("\"sheds\":"));

    // A shed client's NetError advertises retryability — and now that
    // the burst is over, an actual retry succeeds.
    let mut retry = Client::connect(addr).unwrap();
    match retry.query(&query) {
        Ok(reply) => assert!(!reply.rows.is_empty()),
        Err(e) => assert!(e.is_retryable(), "SHED must be marked retryable: {e}"),
    }
    server.shutdown();
}

#[test]
fn deadline_expiry_surfaces_without_poisoning_the_connection() {
    let (cat, query) = big_catalog_and_query(2000);
    let server = Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            service: ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // 1 ms against a query that takes orders of magnitude longer.
    let err = client
        .query_with(
            &query,
            &QueryOptions {
                deadline: Some(Duration::from_millis(1)),
                config: None,
                want_trace: false,
            },
        )
        .unwrap_err();
    match &err {
        NetError::Remote { code, .. } => assert_eq!(*code, ErrorCode::DeadlineExceeded),
        other => panic!("expected DEADLINE, got {other}"),
    }
    assert!(
        !err.is_retryable(),
        "an expired deadline is the caller's budget, not server pushback"
    );
    assert!(server.stats().deadline_hits >= 1);

    // The connection stays usable. The abandoned query was cancelled
    // server-side (expiry trips its interrupt), so the worker is free
    // and the retry without a deadline succeeds promptly.
    let reply = client.query(&query).unwrap();
    assert!(!reply.rows.is_empty());
    assert!(
        server.metrics().cancelled >= 1,
        "deadline expiry must cancel the server-side query"
    );
    server.shutdown();
}

#[test]
fn cancel_frame_tears_down_the_server_side_query() {
    let (cat, query) = big_catalog_and_query(3000);
    let server = Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            service: ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Fire the CANCEL from another thread while `query` blocks on the
    // reply. The query may win the race on a fast run, so retry until
    // one cancellation lands.
    let mut cancelled = false;
    for _ in 0..32 {
        let mut canceller = client.canceller().unwrap();
        let killer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            canceller.cancel().unwrap();
        });
        let outcome = client.query(&query);
        killer.join().unwrap();
        match outcome {
            Err(NetError::Remote {
                code: ErrorCode::Cancelled,
                ..
            }) => {
                cancelled = true;
                break;
            }
            Ok(reply) => assert!(!reply.rows.is_empty(), "a racing winner returns full rows"),
            Err(other) => panic!("expected CANCELLED or a result, got {other}"),
        }
    }
    assert!(cancelled, "32 attempts should land one mid-query CANCEL");
    assert!(server.metrics().cancelled >= 1);

    // The connection and the worker both survive the teardown.
    let reply = client.query(&query).unwrap();
    assert!(!reply.rows.is_empty());
    server.shutdown();
}

#[test]
fn query_with_retry_rides_out_load_shedding() {
    use fj_net::RetryPolicy;

    let (cat, query) = big_catalog_and_query(1500);
    let server = Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            service: ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // The same burst that sheds plain `query` calls resolves fully when
    // every client retries with backoff.
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let query = query.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let policy = RetryPolicy {
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(100),
                    max_attempts: 200,
                    seed: i,
                };
                client
                    .query_with_retry(&query, &QueryOptions::default(), &policy)
                    .map(|r| r.rows.len())
            })
        })
        .collect();
    for h in handles {
        let nrows = h.join().unwrap().expect("retries must ride out SHED");
        assert!(nrows > 0);
    }
    assert!(
        server.stats().sheds > 0,
        "the burst must actually have shed (otherwise this test proves nothing)"
    );
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_accepted_query() {
    let (cat, query) = big_catalog_and_query(1200);
    let expected = sorted(
        Database::with_catalog(cat.clone())
            .execute(&query)
            .unwrap()
            .rows,
    );
    let server = Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            service: ServiceConfig {
                workers: 2,
                queue_capacity: 64,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let query = query.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.query(&query).map(|r| sorted(r.rows))
            })
        })
        .collect();

    // Wait until all 8 requests are accepted (decoded and counted),
    // then begin draining while most are still queued or executing.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().requests < 8 {
        assert!(Instant::now() < deadline, "requests never arrived");
        thread::sleep(Duration::from_millis(2));
    }
    server.shutdown();

    // Every accepted query completed with full, correct rows — drain
    // means finish, not abort.
    for h in handles {
        let rows = h
            .join()
            .unwrap()
            .expect("accepted work must not be dropped");
        assert_eq!(rows, expected);
    }

    // And the listener is gone: new connections are refused.
    assert!(
        Client::connect(addr).is_err(),
        "a drained server must not accept new connections"
    );
}

#[test]
fn version_mismatch_is_rejected_in_the_handshake() {
    let server = Server::bind("127.0.0.1:0", paper_catalog(), ServerConfig::default()).unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut hello = Vec::new();
    hello.extend_from_slice(b"FJNT");
    hello.extend_from_slice(&0x7777u16.to_be_bytes()); // unknown version
    raw.write_all(&hello).unwrap();
    let mut echo = [0u8; 6];
    raw.read_exact(&mut echo).unwrap();
    assert_eq!(&echo[0..4], b"FJNT");
    assert_eq!(
        u16::from_be_bytes([echo[4], echo[5]]),
        fj_net::wire::VERSION_REJECTED
    );
    server.shutdown();
}

#[test]
fn response_frame_from_a_client_is_malformed() {
    let server = Server::bind("127.0.0.1:0", paper_catalog(), ServerConfig::default()).unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    fj_net::wire::client_handshake(&mut raw).unwrap();
    // A RESULT frame is server→client only; sending one upstream is a
    // protocol violation the server must answer with a typed error.
    fj_net::wire::write_frame(&mut raw, fj_net::FrameType::Result, &[1, 2, 3]).unwrap();
    let mut reader = fj_net::wire::FrameReader::new(fj_net::wire::DEFAULT_MAX_FRAME_BYTES);
    let frame = reader.read_frame_blocking(&mut raw).unwrap().unwrap();
    assert_eq!(frame.ty, fj_net::FrameType::Error);
    let (code, _) = fj_net::codec::decode_error(&frame.payload).unwrap();
    assert_eq!(code, ErrorCode::Malformed);
    server.shutdown();
}

#[test]
fn connection_cap_sheds_at_the_edge() {
    let server = Server::bind(
        "127.0.0.1:0",
        paper_catalog(),
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let _first = Client::connect(addr).unwrap();
    // The second connection completes the handshake but its first
    // request is answered SHED and the connection closed.
    let outcome = Client::connect(addr).and_then(|mut c| c.query(&paper_query()));
    match outcome {
        Err(e) => assert!(
            e.is_retryable() || matches!(e, NetError::ConnectionClosed | NetError::Io(_)),
            "over-cap connection must be shed or closed, got {e}"
        ),
        Ok(_) => panic!("second connection must not be served while capped at 1"),
    }
    assert!(server.stats().connections_shed >= 1);
    server.shutdown();
}

#[test]
fn health_frame_reports_pool_shape_and_readiness() {
    let server = Server::bind(
        "127.0.0.1:0",
        paper_catalog(),
        ServerConfig {
            service: ServiceConfig {
                workers: 3,
                queue_capacity: 17,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let health = client.health(Duration::from_secs(5)).unwrap();
    assert_eq!(health.status, fj_net::HealthStatus::Ready);
    assert_eq!(health.workers, 3);
    assert_eq!(health.workers_replaced, 0);
    assert_eq!(health.queue_capacity, 17);
    assert!(health.connections_active >= 1, "this probe's connection");

    // Health probes and queries interleave on one connection.
    assert_eq!(client.query(&paper_query()).unwrap().rows.len(), 2);
    let again = client.health(Duration::from_secs(5)).unwrap();
    assert_eq!(again.status, fj_net::HealthStatus::Ready);
    assert!(server.stats().health_probes >= 2);
    assert!(server.stats_json().contains("\"health_probes\":"));
    server.shutdown();
}

#[test]
fn begin_drain_refuses_new_queries_but_serves_health_and_accepted_work() {
    let (cat, query) = big_catalog_and_query(1500);
    let expected = sorted(
        Database::with_catalog(cat.clone())
            .execute(&query)
            .unwrap()
            .rows,
    );
    let server = Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            service: ServiceConfig {
                workers: 2,
                queue_capacity: 64,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Get a batch of queries accepted, then drain mid-flight.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let query = query.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.query(&query).map(|r| sorted(r.rows))
            })
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().requests < 4 {
        assert!(Instant::now() < deadline, "requests never arrived");
        thread::sleep(Duration::from_millis(2));
    }
    server.begin_drain();
    assert!(server.is_draining());

    // Accepted queries still finish with full, correct rows.
    for h in handles {
        let rows = h.join().unwrap().expect("drain must finish accepted work");
        assert_eq!(rows, expected);
    }

    // New queries are refused with the typed, retryable drain code —
    // over a *new* connection, because the listener is still up.
    let mut late = Client::connect(addr).expect("drain keeps the listener alive");
    match late.query(&query) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("expected SHUTTING_DOWN during drain, got {other:?}"),
    }

    // And HEALTH keeps answering, reporting the drain — this is what
    // lets a replica router tell "draining" from "dead".
    let health = late.health(Duration::from_secs(5)).unwrap();
    assert_eq!(health.status, fj_net::HealthStatus::Draining);
    assert!(server.stats_json().contains("\"state\":\"draining\""));
    server.shutdown();
}

#[test]
fn drain_under_an_active_fault_plan_still_answers_typed() {
    use fj_runtime::FaultPlan;
    use std::sync::Arc;

    // Aggressive injected read errors: accepted queries may fail, but
    // they must fail *typed*, drain must still finish/refuse correctly,
    // and health must still answer.
    let (cat, query) = big_catalog_and_query(1200);
    let server = Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            service: ServiceConfig {
                workers: 2,
                queue_capacity: 64,
                fault_plan: Some(Arc::new(
                    FaultPlan::new(7)
                        .with_read_errors(40)
                        .with_stalls(60, Duration::from_micros(200)),
                )),
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..6)
        .map(|_| {
            let query = query.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.query(&query)
            })
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().requests < 6 {
        assert!(Instant::now() < deadline, "requests never arrived");
        thread::sleep(Duration::from_millis(2));
    }
    server.begin_drain();

    for h in handles {
        match h.join().unwrap() {
            Ok(reply) => assert!(!reply.rows.is_empty()),
            // An injected read error surfaces as QUERY_FAILED — typed,
            // not a dropped connection.
            Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::QueryFailed),
            Err(other) => panic!("fault under drain must stay typed, got {other}"),
        }
    }

    let mut late = Client::connect(addr).unwrap();
    assert!(
        matches!(
            late.query(&query),
            Err(NetError::Remote {
                code: ErrorCode::ShuttingDown,
                ..
            })
        ),
        "drain refusals must keep working under fault injection"
    );
    let health = late.health(Duration::from_secs(5)).unwrap();
    assert_eq!(health.status, fj_net::HealthStatus::Draining);
    server.shutdown();
}

#[test]
fn abort_models_a_crash_with_transport_errors_not_replies() {
    let (cat, query) = big_catalog_and_query(3000);
    let server = Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            service: ServiceConfig {
                workers: 2,
                queue_capacity: 64,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let query = query.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.query(&query)
            })
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().requests < 4 {
        assert!(Instant::now() < deadline, "requests never arrived");
        thread::sleep(Duration::from_millis(2));
    }
    let killed_at = Instant::now();
    server.abort();
    assert!(
        killed_at.elapsed() < Duration::from_secs(60),
        "abort must not wait for queries to finish"
    );

    // Every in-flight client sees a transport-level failure (or, if it
    // raced the kill, a cancellation) — never a silent hang. A real
    // crashed process looks exactly like this.
    for h in handles {
        match h.join().unwrap() {
            Err(e) if e.is_transport() => {}
            Err(NetError::Remote {
                code: ErrorCode::Cancelled | ErrorCode::Internal,
                ..
            }) => {}
            Ok(_) => panic!("an aborted server must not deliver results"),
            Err(other) => panic!("expected a transport error after abort, got {other}"),
        }
    }
    // And the listener is gone: the replica is dead, not draining.
    assert!(Client::connect(addr).is_err());
}

#[test]
fn stats_request_returns_merged_json() {
    let server = Server::bind("127.0.0.1:0", paper_catalog(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.query(&paper_query()).unwrap();
    let json = client.stats_json().unwrap();
    for key in [
        "\"connections_total\":",
        "\"requests\":1",
        "\"results\":1",
        "\"sheds\":0",
        "\"deadline_hits\":0",
        "\"bytes_in\":",
        "\"bytes_out\":",
        "\"runtime\":{",
        "\"completed\":1",
        "\"cache_hit_rate\":",
    ] {
        assert!(json.contains(key), "stats JSON missing {key}: {json}");
    }
    server.shutdown();
}

#[test]
fn traced_query_carries_the_operator_trace_over_the_wire() {
    let server = Server::bind("127.0.0.1:0", paper_catalog(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // An untraced query first: no TRACE_REPLY frame rides behind the
    // RESULT, so the connection must stay in sync for what follows.
    let plain = client.query(&paper_query()).unwrap();
    assert!(plain.trace.is_none());

    let traced = client
        .query_with(
            &paper_query(),
            &QueryOptions {
                deadline: None,
                config: None,
                want_trace: true,
            },
        )
        .unwrap();
    assert_eq!(sorted(plain.rows), sorted(traced.rows.clone()));
    let trace = traced.trace.expect("traced query must carry a trace");
    assert_eq!(trace.rows_out() as usize, traced.rows.len());
    assert!(
        trace.node_count() >= 3,
        "a three-relation join plan has at least three operators, got {}",
        trace.node_count()
    );

    // The connection is still healthy after the extra frame.
    let again = client.query(&paper_query()).unwrap();
    assert!(again.trace.is_none());
    assert_eq!(sorted(again.rows), sorted(traced.rows));
    server.shutdown();
}

#[test]
fn mutate_over_the_wire_changes_results_and_counts_in_health() {
    let (catalog, query) = big_catalog_and_query(50);
    let server = Server::bind("127.0.0.1:0", catalog, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let before = client.query(&query).unwrap().rows.len();

    // L gains one row with k=3; R (50 rows, keys i % 89) holds k=3
    // exactly once, so the join gains exactly one pair.
    let reply = client
        .mutate(&fj_net::Mutation::Insert {
            table: "L".to_string(),
            rows: vec![vec![3i64.into(), 999i64.into()]],
        })
        .unwrap();
    assert_eq!(reply.rows_affected, 1);
    assert_eq!(reply.row_count, 51);
    assert_eq!(reply.version, 1, "first mutation of L bumps it to v1");

    let after = client.query(&query).unwrap().rows.len();
    assert_eq!(after, before + 1, "the inserted row joins exactly once");

    // DELETE it again; results return to the baseline.
    let undone = client
        .mutate(&fj_net::Mutation::Delete {
            table: "L".to_string(),
            where_col: "v".to_string(),
            where_value: 999i64.into(),
        })
        .unwrap();
    assert_eq!(undone.rows_affected, 1);
    assert_eq!(undone.row_count, 50);
    assert_eq!(undone.version, 2);
    assert_eq!(client.query(&query).unwrap().rows.len(), before);

    let health = client.health(Duration::from_secs(5)).unwrap();
    assert_eq!(health.mutations_applied, 2);
    server.shutdown();
}

#[test]
fn mutate_on_an_unknown_table_is_a_typed_error_not_a_panic() {
    let server = Server::bind("127.0.0.1:0", paper_catalog(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let err = client
        .mutate(&fj_net::Mutation::Delete {
            table: "NoSuchTable".to_string(),
            where_col: "k".to_string(),
            where_value: 1i64.into(),
        })
        .unwrap_err();
    assert_eq!(err.error_code(), Some(ErrorCode::QueryFailed));
    // The connection survives the refusal.
    assert!(!client.query(&paper_query()).unwrap().rows.is_empty());
    server.shutdown();
}
