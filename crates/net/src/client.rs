//! Blocking TCP client for the `fj-net` protocol.
//!
//! One [`Client`] owns one connection and runs one request at a time
//! (the protocol is strictly request/response per connection — run
//! several clients for concurrency). Server-refused work surfaces as
//! [`NetError::Remote`] with the typed [`ErrorCode`]; the
//! [`NetError::is_retryable`] helper identifies shed/drain replies a
//! caller should back off and retry.

use crate::codec::{self, CodecError, QueryReply, QueryRequest};
use crate::wire::{self, ErrorCode, FrameReader, FrameType, WireError};
use fj_algebra::JoinQuery;
use fj_optimizer::OptimizerConfig;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::Error),
    /// Framing/handshake failure.
    Wire(WireError),
    /// The server's payload failed to decode.
    Codec(CodecError),
    /// The server refused or failed the request with a typed code.
    Remote {
        /// Typed error code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server closed the connection before replying.
    ConnectionClosed,
    /// The server replied with a frame type that makes no sense here.
    Protocol(&'static str),
}

impl NetError {
    /// The typed server error code, if this is a [`NetError::Remote`].
    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            NetError::Remote { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// Whether backing off and retrying (possibly against another
    /// replica) can succeed: load-shed and draining replies.
    pub fn is_retryable(&self) -> bool {
        self.error_code().is_some_and(ErrorCode::is_retryable)
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Codec(e) => write!(f, "codec error: {e}"),
            NetError::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
            NetError::ConnectionClosed => f.write_str("server closed the connection"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

/// Per-request options.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Give the server at most this long (measured from its receipt of
    /// the request) before it answers [`ErrorCode::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Optimizer-config override for this request only.
    pub config: Option<OptimizerConfig>,
}

/// Bounded-retry policy: exponential backoff with decorrelated jitter
/// (`sleep = min(cap, uniform(base, prev_sleep * 3))`), driven by the
/// server's retryability classification — only [`ErrorCode::Shed`] and
/// [`ErrorCode::ShuttingDown`] replies are retried.
///
/// The jitter stream is seeded, so a test (or a reproduce run) can
/// replay the exact backoff schedule.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Smallest sleep between attempts.
    pub base: Duration,
    /// Largest sleep between attempts.
    pub cap: Duration,
    /// Total tries, first included (so `1` disables retries).
    pub max_attempts: u32,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            max_attempts: 5,
            seed: 0x5eed,
        }
    }
}

/// SplitMix64 finalizer — the same generator the storage fault plan
/// uses; good enough to decorrelate backoff schedules.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The next sleep after `prev`, advancing the jitter state.
    fn next_sleep(&self, state: &mut u64, prev: Duration) -> Duration {
        *state = splitmix64(*state);
        let lo = self.base.as_micros() as u64;
        let hi = (prev.as_micros() as u64).saturating_mul(3).max(lo + 1);
        let picked = lo + *state % (hi - lo);
        Duration::from_micros(picked.min(self.cap.as_micros() as u64))
    }
}

/// A handle that cancels the query in flight on its [`Client`]'s
/// connection, from another thread (the client itself is blocked
/// waiting for the reply). Obtained from [`Client::canceller`].
#[derive(Debug)]
pub struct Canceller {
    stream: TcpStream,
}

impl Canceller {
    /// Sends a CANCEL frame. The server trips the query's interrupt;
    /// the blocked `query*` call returns [`ErrorCode::Cancelled`] (or
    /// the result, if the query won the race). Harmless when no query
    /// is in flight.
    pub fn cancel(&mut self) -> Result<(), NetError> {
        wire::write_frame(&mut self.stream, FrameType::Cancel, &[])?;
        Ok(())
    }
}

/// A blocking connection to an `fj-net` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    /// Connects and performs the magic + version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        wire::client_handshake(&mut stream)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(wire::DEFAULT_MAX_FRAME_BYTES),
        })
    }

    /// Executes `query` under the server's default optimizer config,
    /// with no deadline.
    pub fn query(&mut self, query: &JoinQuery) -> Result<QueryReply, NetError> {
        self.query_with(query, &QueryOptions::default())
    }

    /// Executes `query` with per-request options.
    pub fn query_with(
        &mut self,
        query: &JoinQuery,
        opts: &QueryOptions,
    ) -> Result<QueryReply, NetError> {
        let deadline_millis = opts
            .deadline
            .map(|d| (d.as_millis() as u64).max(1))
            .unwrap_or(0);
        let request = QueryRequest {
            deadline_millis,
            config: opts.config,
            query: query.clone(),
        };
        let payload = codec::encode_request(&request)?;
        // Bound our own wait a bit past the server's deadline so a dead
        // server cannot hang a deadline-scoped call forever.
        let read_timeout = opts.deadline.map(|d| d + Duration::from_secs(30));
        self.stream.set_read_timeout(read_timeout)?;
        wire::write_frame(&mut self.stream, FrameType::Query, &payload)?;
        let frame = self.recv()?;
        match frame.0 {
            FrameType::Result => Ok(codec::decode_reply(&frame.1)?),
            FrameType::Error => Err(self.remote_error(&frame.1)),
            _ => Err(NetError::Protocol("expected RESULT or ERROR frame")),
        }
    }

    /// A [`Canceller`] for this connection (a cloned socket handle), to
    /// tear down an in-flight query from another thread.
    pub fn canceller(&self) -> Result<Canceller, NetError> {
        Ok(Canceller {
            stream: self.stream.try_clone()?,
        })
    }

    /// Executes `query`, retrying retryable refusals ([`ErrorCode::Shed`],
    /// [`ErrorCode::ShuttingDown`]) up to `policy.max_attempts` total
    /// tries with decorrelated-jitter backoff. Non-retryable errors and
    /// results return immediately.
    pub fn query_with_retry(
        &mut self,
        query: &JoinQuery,
        opts: &QueryOptions,
        policy: &RetryPolicy,
    ) -> Result<QueryReply, NetError> {
        let mut state = splitmix64(policy.seed);
        let mut prev = policy.base;
        let mut attempt = 1;
        loop {
            match self.query_with(query, opts) {
                Err(e) if e.is_retryable() && attempt < policy.max_attempts.max(1) => {
                    attempt += 1;
                    prev = policy.next_sleep(&mut state, prev);
                    std::thread::sleep(prev);
                }
                other => return other,
            }
        }
    }

    /// Fetches the server's combined stats JSON line.
    pub fn stats_json(&mut self) -> Result<String, NetError> {
        self.stream.set_read_timeout(None)?;
        wire::write_frame(&mut self.stream, FrameType::Stats, &[])?;
        let frame = self.recv()?;
        match frame.0 {
            FrameType::StatsReply => Ok(codec::decode_stats_reply(&frame.1)?),
            FrameType::Error => Err(self.remote_error(&frame.1)),
            _ => Err(NetError::Protocol("expected STATS_REPLY or ERROR frame")),
        }
    }

    fn recv(&mut self) -> Result<(FrameType, Vec<u8>), NetError> {
        match self.reader.read_frame_blocking(&mut self.stream) {
            Ok(Some(frame)) => Ok((frame.ty, frame.payload)),
            Ok(None) => Err(NetError::ConnectionClosed),
            Err(e) => Err(NetError::Wire(e)),
        }
    }

    fn remote_error(&self, payload: &[u8]) -> NetError {
        match codec::decode_error(payload) {
            Ok((code, message)) => NetError::Remote { code, message },
            Err(e) => NetError::Codec(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(policy: &RetryPolicy, n: usize) -> Vec<Duration> {
        let mut state = splitmix64(policy.seed);
        let mut prev = policy.base;
        (0..n)
            .map(|_| {
                prev = policy.next_sleep(&mut state, prev);
                prev
            })
            .collect()
    }

    #[test]
    fn backoff_stays_within_base_and_cap() {
        let policy = RetryPolicy::default();
        for sleep in schedule(&policy, 64) {
            assert!(sleep >= policy.base, "sleep {sleep:?} below base");
            assert!(sleep <= policy.cap, "sleep {sleep:?} above cap");
        }
    }

    #[test]
    fn backoff_schedule_is_seeded_and_decorrelated() {
        let policy = RetryPolicy::default();
        assert_eq!(schedule(&policy, 16), schedule(&policy, 16), "replayable");
        let other = RetryPolicy {
            seed: policy.seed + 1,
            ..policy.clone()
        };
        assert_ne!(
            schedule(&policy, 16),
            schedule(&other, 16),
            "different seeds must produce different jitter"
        );
    }

    #[test]
    fn backoff_grows_from_the_previous_sleep() {
        // Decorrelated jitter draws from [base, prev*3): starting at
        // base, the second sleep can exceed base but never 3×base.
        let policy = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(10),
            max_attempts: 5,
            seed: 42,
        };
        let s = schedule(&policy, 1);
        assert!(s[0] < Duration::from_millis(30));
    }
}
