//! Blocking TCP client for the `fj-net` protocol.
//!
//! One [`Client`] owns one connection and runs one request at a time
//! (the protocol is strictly request/response per connection — run
//! several clients for concurrency). Server-refused work surfaces as
//! [`NetError::Remote`] with the typed [`ErrorCode`]; the
//! [`NetError::is_retryable`] helper identifies shed/drain replies a
//! caller should back off and retry.

use crate::codec::{
    self, CodecError, FragmentRequest, GatherReply, HealthSnapshot, MutationReply, MutationRequest,
    QueryReply, QueryRequest, ScatterAck, ScatterRequest, SemijoinAck, SemijoinRequest,
};
use crate::wire::{self, ErrorCode, FrameReader, FrameType, WireError};
use fj_algebra::JoinQuery;
use fj_optimizer::OptimizerConfig;
use fj_storage::Mutation;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::Error),
    /// Framing/handshake failure.
    Wire(WireError),
    /// The server's payload failed to decode.
    Codec(CodecError),
    /// The server refused or failed the request with a typed code.
    Remote {
        /// Typed error code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server closed the connection before replying.
    ConnectionClosed,
    /// The server replied with a frame type that makes no sense here.
    Protocol(&'static str),
    /// The shared [`RetryBudget`] ran dry before a retryable refusal
    /// could be retried — the typed "we gave up on purpose" outcome,
    /// distinct from whatever transport or server error happened last.
    RetryBudgetExhausted {
        /// The retryable error that could not be retried.
        last: Box<NetError>,
    },
}

impl NetError {
    /// The typed server error code, if this is a [`NetError::Remote`].
    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            NetError::Remote { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// Whether backing off and retrying (possibly against another
    /// replica) can succeed: load-shed and draining replies.
    pub fn is_retryable(&self) -> bool {
        self.error_code().is_some_and(ErrorCode::is_retryable)
    }

    /// Whether this is a transport-level failure (socket, framing, or
    /// an unannounced close) rather than a typed server reply. A
    /// replica router treats these as "this replica, right now, is
    /// broken" and fails over.
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            NetError::Io(_) | NetError::Wire(_) | NetError::ConnectionClosed
        )
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Codec(e) => write!(f, "codec error: {e}"),
            NetError::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
            NetError::ConnectionClosed => f.write_str("server closed the connection"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NetError::RetryBudgetExhausted { last } => {
                write!(f, "retry budget exhausted; last error: {last}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

/// Per-request options.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Give the server at most this long (measured from its receipt of
    /// the request) before it answers [`ErrorCode::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Optimizer-config override for this request only.
    pub config: Option<OptimizerConfig>,
    /// Request per-operator tracing: the server executes with tracing
    /// on and follows the RESULT frame with a TRACE_REPLY frame, which
    /// lands in [`QueryReply::trace`].
    pub want_trace: bool,
}

/// Bounded-retry policy: exponential backoff with decorrelated jitter
/// (`sleep = min(cap, uniform(base, prev_sleep * 3))`), driven by the
/// server's retryability classification — only [`ErrorCode::Shed`] and
/// [`ErrorCode::ShuttingDown`] replies are retried.
///
/// The jitter stream is seeded, so a test (or a reproduce run) can
/// replay the exact backoff schedule.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Smallest sleep between attempts.
    pub base: Duration,
    /// Largest sleep between attempts.
    pub cap: Duration,
    /// Total tries, first included (so `1` disables retries).
    pub max_attempts: u32,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            max_attempts: 5,
            seed: 0x5eed,
        }
    }
}

/// SplitMix64 finalizer — the same generator the storage fault plan
/// uses; good enough to decorrelate backoff schedules.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The next sleep after `prev`, advancing the jitter state.
    fn next_sleep(&self, state: &mut u64, prev: Duration) -> Duration {
        *state = splitmix64(*state);
        let lo = self.base.as_micros() as u64;
        let hi = (prev.as_micros() as u64).saturating_mul(3).max(lo + 1);
        let picked = lo + *state % (hi - lo);
        Duration::from_micros(picked.min(self.cap.as_micros() as u64))
    }
}

/// A shared **retry budget**: a token bucket that bounds the total
/// retry volume a client (or a whole replica-aware cluster client) may
/// generate, so a dying server cannot trigger a retry storm.
///
/// Every retry or failover attempt withdraws one token
/// ([`RetryBudget::try_withdraw`]); every successful request deposits a
/// configurable fraction of a token ([`RetryBudget::record_success`]).
/// In steady state the budget therefore caps the retry rate at
/// `deposit_per_success` retries per successful request, with a burst
/// allowance of `capacity` tokens. All state is atomic — one budget is
/// meant to be shared across threads and connections.
///
/// Tokens are tracked in integer **millitokens** so deposits like 0.1
/// accumulate exactly; the arithmetic is saturating and lock-free.
#[derive(Debug)]
pub struct RetryBudget {
    millitokens: AtomicU64,
    capacity_milli: u64,
    deposit_milli: u64,
    exhausted: AtomicU64,
    withdrawn: AtomicU64,
}

/// One withdrawal in millitokens.
const WITHDRAW_MILLI: u64 = 1000;

impl RetryBudget {
    /// A budget holding `capacity` tokens (starts full), depositing
    /// `deposit_per_success` tokens per recorded success. Fractions
    /// below a millitoken round to zero (no replenishment).
    pub fn new(capacity: u32, deposit_per_success: f64) -> RetryBudget {
        let capacity_milli = u64::from(capacity) * WITHDRAW_MILLI;
        RetryBudget {
            millitokens: AtomicU64::new(capacity_milli),
            capacity_milli,
            deposit_milli: (deposit_per_success.clamp(0.0, 1000.0) * WITHDRAW_MILLI as f64) as u64,
            exhausted: AtomicU64::new(0),
            withdrawn: AtomicU64::new(0),
        }
    }

    /// Deposits the per-success fraction, saturating at capacity.
    pub fn record_success(&self) {
        let mut cur = self.millitokens.load(Ordering::Relaxed);
        loop {
            let next = cur
                .saturating_add(self.deposit_milli)
                .min(self.capacity_milli);
            match self.millitokens.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Withdraws one retry token. `false` means the budget is dry —
    /// the caller must give up (typed) instead of retrying.
    pub fn try_withdraw(&self) -> bool {
        let mut cur = self.millitokens.load(Ordering::Relaxed);
        loop {
            if cur < WITHDRAW_MILLI {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.millitokens.compare_exchange_weak(
                cur,
                cur - WITHDRAW_MILLI,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.withdrawn.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Whole tokens currently available.
    pub fn available(&self) -> u64 {
        self.millitokens.load(Ordering::Relaxed) / WITHDRAW_MILLI
    }

    /// Times a withdrawal was refused (budget dry).
    pub fn exhaustions(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Retry tokens successfully withdrawn so far.
    pub fn withdrawals(&self) -> u64 {
        self.withdrawn.load(Ordering::Relaxed)
    }
}

/// Exact wire bytes exchanged by one distributed request/reply pair,
/// measured at the framing layer (header included). The `dist`
/// reproduce experiment reconciles these against the optimizer's
/// predicted network costs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireBytes {
    /// Bytes put on the wire for the request frame.
    pub sent: u64,
    /// Bytes read off the wire for the reply frame.
    pub received: u64,
}

impl WireBytes {
    fn of(sent: usize, reply_payload: usize) -> WireBytes {
        WireBytes {
            sent: sent as u64,
            received: (reply_payload + wire::FRAME_HEADER_BYTES) as u64,
        }
    }

    /// Total bytes both directions.
    pub fn total(&self) -> u64 {
        self.sent + self.received
    }

    /// Accumulates another exchange into this tally.
    pub fn add(&mut self, other: WireBytes) {
        self.sent += other.sent;
        self.received += other.received;
    }
}

/// A handle that cancels the query in flight on its [`Client`]'s
/// connection, from another thread (the client itself is blocked
/// waiting for the reply). Obtained from [`Client::canceller`].
#[derive(Debug)]
pub struct Canceller {
    stream: TcpStream,
}

impl Canceller {
    /// Sends a CANCEL frame. The server trips the query's interrupt;
    /// the blocked `query*` call returns [`ErrorCode::Cancelled`] (or
    /// the result, if the query won the race). Harmless when no query
    /// is in flight.
    pub fn cancel(&mut self) -> Result<(), NetError> {
        wire::write_frame(&mut self.stream, FrameType::Cancel, &[])?;
        Ok(())
    }
}

/// A blocking connection to an `fj-net` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    /// Connects and performs the magic + version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        wire::client_handshake(&mut stream)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(wire::DEFAULT_MAX_FRAME_BYTES),
        })
    }

    /// Like [`Client::connect`], but gives up on the TCP connect after
    /// `timeout` — a replica router probing a possibly-dead server must
    /// not block for the OS default (minutes).
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Client, NetError> {
        let mut stream = TcpStream::connect_timeout(addr, timeout)?;
        let _ = stream.set_nodelay(true);
        // Bound the handshake reads too: a half-up server that accepts
        // but never responds would otherwise hang the probe.
        stream.set_read_timeout(Some(timeout))?;
        wire::client_handshake(&mut stream)?;
        stream.set_read_timeout(None)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(wire::DEFAULT_MAX_FRAME_BYTES),
        })
    }

    /// Executes `query` under the server's default optimizer config,
    /// with no deadline.
    pub fn query(&mut self, query: &JoinQuery) -> Result<QueryReply, NetError> {
        self.query_with(query, &QueryOptions::default())
    }

    /// Executes `query` with per-request options.
    pub fn query_with(
        &mut self,
        query: &JoinQuery,
        opts: &QueryOptions,
    ) -> Result<QueryReply, NetError> {
        self.query_with_raw(query, opts).map(|(reply, _)| reply)
    }

    /// Like [`Client::query_with`], but also returns the raw RESULT
    /// payload bytes. A cluster client hedging the same query against
    /// two replicas compares these bytes to verify the replies agree.
    pub fn query_with_raw(
        &mut self,
        query: &JoinQuery,
        opts: &QueryOptions,
    ) -> Result<(QueryReply, Vec<u8>), NetError> {
        let deadline_millis = opts
            .deadline
            .map(|d| (d.as_millis() as u64).max(1))
            .unwrap_or(0);
        let request = QueryRequest {
            deadline_millis,
            want_trace: opts.want_trace,
            config: opts.config,
            query: query.clone(),
        };
        let payload = codec::encode_request(&request)?;
        // Bound our own wait a bit past the server's deadline so a dead
        // server cannot hang a deadline-scoped call forever.
        let read_timeout = opts.deadline.map(|d| d + Duration::from_secs(30));
        self.stream.set_read_timeout(read_timeout)?;
        wire::write_frame(&mut self.stream, FrameType::Query, &payload)?;
        let frame = self.recv()?;
        match frame.0 {
            FrameType::Result => {
                let mut reply = codec::decode_reply(&frame.1)?;
                if opts.want_trace {
                    // The trace travels in its own frame right behind
                    // the RESULT, keeping the result bytes themselves
                    // replica-comparable.
                    let trace_frame = self.recv()?;
                    match trace_frame.0 {
                        FrameType::TraceReply => {
                            reply.trace = Some(codec::decode_trace_reply(&trace_frame.1)?);
                        }
                        FrameType::Error => return Err(self.remote_error(&trace_frame.1)),
                        _ => return Err(NetError::Protocol("expected TRACE_REPLY or ERROR frame")),
                    }
                }
                Ok((reply, frame.1))
            }
            FrameType::Error => Err(self.remote_error(&frame.1)),
            _ => Err(NetError::Protocol("expected RESULT or ERROR frame")),
        }
    }

    /// Probes the server's health/readiness. Served even while the
    /// server drains, so a router can tell "draining" from "dead". The
    /// wait is bounded by `timeout`.
    pub fn health(&mut self, timeout: Duration) -> Result<HealthSnapshot, NetError> {
        self.stream.set_read_timeout(Some(timeout))?;
        wire::write_frame(&mut self.stream, FrameType::Health, &[])?;
        let frame = self.recv()?;
        self.stream.set_read_timeout(None)?;
        match frame.0 {
            FrameType::HealthReply => Ok(codec::decode_health_reply(&frame.1)?),
            FrameType::Error => Err(self.remote_error(&frame.1)),
            _ => Err(NetError::Protocol("expected HEALTH_REPLY or ERROR frame")),
        }
    }

    /// A [`Canceller`] for this connection (a cloned socket handle), to
    /// tear down an in-flight query from another thread.
    pub fn canceller(&self) -> Result<Canceller, NetError> {
        Ok(Canceller {
            stream: self.stream.try_clone()?,
        })
    }

    /// Executes `query`, retrying retryable refusals ([`ErrorCode::Shed`],
    /// [`ErrorCode::ShuttingDown`]) up to `policy.max_attempts` total
    /// tries with decorrelated-jitter backoff. Non-retryable errors and
    /// results return immediately.
    pub fn query_with_retry(
        &mut self,
        query: &JoinQuery,
        opts: &QueryOptions,
        policy: &RetryPolicy,
    ) -> Result<QueryReply, NetError> {
        // An ad-hoc per-call budget large enough to never bind: the
        // attempt cap alone governs, preserving the original contract.
        let budget = RetryBudget::new(policy.max_attempts.max(1), 0.0);
        self.query_with_retry_budgeted(query, opts, policy, &budget)
    }

    /// Like [`Client::query_with_retry`], but every retry must also
    /// withdraw a token from the shared `budget`. When the budget is
    /// dry the call gives up immediately with the typed
    /// [`NetError::RetryBudgetExhausted`] instead of sleeping — under a
    /// sustained outage the whole fleet of callers sharing the budget
    /// stops retrying together rather than storming the server.
    ///
    /// Successful replies deposit back into the budget.
    pub fn query_with_retry_budgeted(
        &mut self,
        query: &JoinQuery,
        opts: &QueryOptions,
        policy: &RetryPolicy,
        budget: &RetryBudget,
    ) -> Result<QueryReply, NetError> {
        let mut state = splitmix64(policy.seed);
        let mut prev = policy.base;
        let mut attempt = 1;
        loop {
            match self.query_with(query, opts) {
                Ok(reply) => {
                    budget.record_success();
                    return Ok(reply);
                }
                Err(e) if e.is_retryable() && attempt < policy.max_attempts.max(1) => {
                    if !budget.try_withdraw() {
                        return Err(NetError::RetryBudgetExhausted { last: Box::new(e) });
                    }
                    attempt += 1;
                    prev = policy.next_sleep(&mut state, prev);
                    std::thread::sleep(prev);
                }
                other => return other,
            }
        }
    }

    /// Fetches the server's combined stats JSON line.
    pub fn stats_json(&mut self) -> Result<String, NetError> {
        self.stream.set_read_timeout(None)?;
        wire::write_frame(&mut self.stream, FrameType::Stats, &[])?;
        let frame = self.recv()?;
        match frame.0 {
            FrameType::StatsReply => Ok(codec::decode_stats_reply(&frame.1)?),
            FrameType::Error => Err(self.remote_error(&frame.1)),
            _ => Err(NetError::Protocol("expected STATS_REPLY or ERROR frame")),
        }
    }

    /// Ships one partition of a base table to this shard (deploy-time
    /// only; shards never mutate after scatter). Returns the ack plus
    /// the exact wire bytes exchanged, for predicted-vs-actual network
    /// cost reconciliation.
    pub fn scatter(
        &mut self,
        req: &ScatterRequest,
        timeout: Duration,
    ) -> Result<(ScatterAck, WireBytes), NetError> {
        let payload = codec::encode_scatter(req)?;
        self.stream.set_read_timeout(Some(timeout))?;
        let sent = wire::write_frame(&mut self.stream, FrameType::Scatter, &payload)?;
        let frame = self.recv()?;
        self.stream.set_read_timeout(None)?;
        let wire = WireBytes::of(sent, frame.1.len());
        match frame.0 {
            FrameType::ScatterAck => Ok((codec::decode_scatter_ack(&frame.1)?, wire)),
            FrameType::Error => Err(self.remote_error(&frame.1)),
            _ => Err(NetError::Protocol("expected SCATTER_ACK or ERROR frame")),
        }
    }

    /// Runs one stateless semijoin step against this shard: filters the
    /// named shard-resident table by the shipped key/Bloom sets and
    /// returns surviving rows and/or distinct keys, plus the exact wire
    /// bytes exchanged.
    pub fn semijoin(
        &mut self,
        req: &SemijoinRequest,
        timeout: Duration,
    ) -> Result<(SemijoinAck, WireBytes), NetError> {
        let payload = codec::encode_semijoin(req)?;
        self.stream.set_read_timeout(Some(timeout))?;
        let sent = wire::write_frame(&mut self.stream, FrameType::Semijoin, &payload)?;
        let frame = self.recv()?;
        self.stream.set_read_timeout(None)?;
        let wire = WireBytes::of(sent, frame.1.len());
        match frame.0 {
            FrameType::SemijoinAck => Ok((codec::decode_semijoin_ack(&frame.1)?, wire)),
            FrameType::Error => Err(self.remote_error(&frame.1)),
            _ => Err(NetError::Protocol("expected SEMIJOIN_ACK or ERROR frame")),
        }
    }

    /// Runs one query fragment on this shard through its admission
    /// control and returns the partial result as a GATHER reply, plus
    /// the exact wire bytes exchanged. The fragment's `deadline_millis`
    /// bounds the shard-side run; use a [`Canceller`] from another
    /// thread to tear an in-flight fragment down early.
    pub fn fragment(
        &mut self,
        req: &FragmentRequest,
    ) -> Result<(GatherReply, WireBytes), NetError> {
        let payload = codec::encode_fragment(req)?;
        // Bound our own wait a bit past the shard's deadline so a dead
        // shard cannot hang a deadline-scoped fragment forever.
        let read_timeout = match req.deadline_millis {
            0 => None,
            ms => Some(Duration::from_millis(ms) + Duration::from_secs(30)),
        };
        self.stream.set_read_timeout(read_timeout)?;
        let sent = wire::write_frame(&mut self.stream, FrameType::Fragment, &payload)?;
        let frame = self.recv()?;
        self.stream.set_read_timeout(None)?;
        let wire = WireBytes::of(sent, frame.1.len());
        match frame.0 {
            FrameType::Gather => Ok((codec::decode_gather(&frame.1)?, wire)),
            FrameType::Error => Err(self.remote_error(&frame.1)),
            _ => Err(NetError::Protocol("expected GATHER or ERROR frame")),
        }
    }

    /// Executes one mutation (INSERT/UPDATE/DELETE) on the server, with
    /// no deadline. The reply reports rows affected, the table's new
    /// row count, and its new data version.
    pub fn mutate(&mut self, mutation: &Mutation) -> Result<MutationReply, NetError> {
        self.mutate_with(mutation, None)
    }

    /// Like [`Client::mutate`], with a server-side deadline. A deadline
    /// that trips before the server's WAL commit aborts the mutation
    /// with no state change ([`ErrorCode::DeadlineExceeded`]); one that
    /// trips after it loses the race and the committed reply arrives.
    /// Use a [`Canceller`] from another thread to abort mid-flight.
    pub fn mutate_with(
        &mut self,
        mutation: &Mutation,
        deadline: Option<Duration>,
    ) -> Result<MutationReply, NetError> {
        let deadline_millis = deadline.map(|d| (d.as_millis() as u64).max(1)).unwrap_or(0);
        let request = MutationRequest {
            deadline_millis,
            mutation: mutation.clone(),
        };
        let payload = codec::encode_mutation_request(&request)?;
        // Bound our own wait a bit past the server's deadline so a dead
        // server cannot hang a deadline-scoped call forever.
        let read_timeout = deadline.map(|d| d + Duration::from_secs(30));
        self.stream.set_read_timeout(read_timeout)?;
        wire::write_frame(&mut self.stream, FrameType::Mutate, &payload)?;
        let frame = self.recv()?;
        self.stream.set_read_timeout(None)?;
        match frame.0 {
            FrameType::MutateReply => Ok(codec::decode_mutation_reply(&frame.1)?),
            FrameType::Error => Err(self.remote_error(&frame.1)),
            _ => Err(NetError::Protocol("expected MUTATE_REPLY or ERROR frame")),
        }
    }

    fn recv(&mut self) -> Result<(FrameType, Vec<u8>), NetError> {
        match self.reader.read_frame_blocking(&mut self.stream) {
            Ok(Some(frame)) => Ok((frame.ty, frame.payload)),
            Ok(None) => Err(NetError::ConnectionClosed),
            Err(e) => Err(NetError::Wire(e)),
        }
    }

    fn remote_error(&self, payload: &[u8]) -> NetError {
        match codec::decode_error(payload) {
            Ok((code, message)) => NetError::Remote { code, message },
            Err(e) => NetError::Codec(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(policy: &RetryPolicy, n: usize) -> Vec<Duration> {
        let mut state = splitmix64(policy.seed);
        let mut prev = policy.base;
        (0..n)
            .map(|_| {
                prev = policy.next_sleep(&mut state, prev);
                prev
            })
            .collect()
    }

    #[test]
    fn backoff_stays_within_base_and_cap() {
        let policy = RetryPolicy::default();
        for sleep in schedule(&policy, 64) {
            assert!(sleep >= policy.base, "sleep {sleep:?} below base");
            assert!(sleep <= policy.cap, "sleep {sleep:?} above cap");
        }
    }

    #[test]
    fn backoff_schedule_is_seeded_and_decorrelated() {
        let policy = RetryPolicy::default();
        assert_eq!(schedule(&policy, 16), schedule(&policy, 16), "replayable");
        let other = RetryPolicy {
            seed: policy.seed + 1,
            ..policy.clone()
        };
        assert_ne!(
            schedule(&policy, 16),
            schedule(&other, 16),
            "different seeds must produce different jitter"
        );
    }

    #[test]
    fn backoff_grows_from_the_previous_sleep() {
        // Decorrelated jitter draws from [base, prev*3): starting at
        // base, the second sleep can exceed base but never 3×base.
        let policy = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(10),
            max_attempts: 5,
            seed: 42,
        };
        let s = schedule(&policy, 1);
        assert!(s[0] < Duration::from_millis(30));
    }

    #[test]
    fn retry_budget_withdraws_until_dry_then_refuses() {
        let budget = RetryBudget::new(3, 0.0);
        assert_eq!(budget.available(), 3);
        assert!(budget.try_withdraw());
        assert!(budget.try_withdraw());
        assert!(budget.try_withdraw());
        assert!(!budget.try_withdraw(), "fourth withdrawal must fail");
        assert!(!budget.try_withdraw(), "stays dry without deposits");
        assert_eq!(budget.available(), 0);
        assert_eq!(budget.withdrawals(), 3);
        assert_eq!(budget.exhaustions(), 2);
    }

    #[test]
    fn retry_budget_fractional_deposits_accumulate_exactly() {
        // 0.1 token per success: ten successes buy one retry.
        let budget = RetryBudget::new(1, 0.1);
        assert!(budget.try_withdraw());
        assert!(!budget.try_withdraw());
        for _ in 0..9 {
            budget.record_success();
            assert!(!budget.try_withdraw(), "9 deposits of 0.1 are not enough");
        }
        budget.record_success();
        assert!(budget.try_withdraw(), "10 × 0.1 must buy exactly one token");
        assert!(!budget.try_withdraw());
    }

    #[test]
    fn retry_budget_deposits_saturate_at_capacity() {
        let budget = RetryBudget::new(2, 1.0);
        for _ in 0..100 {
            budget.record_success();
        }
        assert_eq!(budget.available(), 2, "deposits must cap at capacity");
        assert!(budget.try_withdraw());
        assert!(budget.try_withdraw());
        assert!(!budget.try_withdraw());
    }

    #[test]
    fn retry_budget_is_shared_across_threads() {
        use std::sync::Arc;
        let budget = Arc::new(RetryBudget::new(64, 0.0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let b = Arc::clone(&budget);
                std::thread::spawn(move || (0..16).filter(|_| b.try_withdraw()).count())
            })
            .collect();
        let granted: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(granted, 64, "exactly capacity tokens may be granted");
        assert_eq!(budget.exhaustions(), 8 * 16 - 64);
    }
}
