//! Hand-rolled binary encoding of values, expressions, queries,
//! optimizer-config overrides, and query replies.
//!
//! Every decoder is **total**: adversarial bytes yield a typed
//! [`CodecError`], never a panic. Three disciplines make that hold:
//!
//! * element counts are never trusted for allocation — vectors grow by
//!   pushing, and a lying count simply runs the reader into
//!   [`CodecError::UnexpectedEof`];
//! * string lengths are checked against the bytes actually remaining
//!   before any allocation;
//! * expression trees are depth-limited ([`MAX_EXPR_DEPTH`]) on both
//!   encode and decode, so recursion cannot overflow the stack.
//!
//! All integers are big-endian; doubles travel as IEEE-754 bit
//! patterns (NaN payloads survive a round trip).

use fj_algebra::{FromItem, JoinQuery, NetworkModel};
use fj_core::QueryResult;
use fj_expr::{BinOp, Expr};
use fj_optimizer::{CostParams, OptimizerConfig, PlanShape};
use fj_storage::{BloomFilter, Column, DataType, Mutation, Schema, SchemaRef, Tuple, Value};
use std::fmt;
use std::sync::Arc;

/// Maximum expression-tree depth accepted on either side of the wire.
pub const MAX_EXPR_DEPTH: usize = 200;

/// Payload-level decode/encode failures.
#[derive(Debug)]
pub enum CodecError {
    /// The payload ended before the structure did.
    UnexpectedEof,
    /// The structure ended before the payload did.
    TrailingBytes(usize),
    /// An enum discriminant outside its domain.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A length field exceeded what the payload can hold.
    TooLarge {
        /// What was being decoded.
        what: &'static str,
        /// Claimed length.
        len: u64,
    },
    /// An expression nested beyond [`MAX_EXPR_DEPTH`].
    TooDeep,
    /// A structurally valid payload that violates an invariant (e.g.
    /// duplicate schema column names).
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => f.write_str("payload truncated"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            CodecError::BadTag { what, tag } => write!(f, "bad {what} tag 0x{tag:02x}"),
            CodecError::BadUtf8 => f.write_str("string field is not UTF-8"),
            CodecError::TooLarge { what, len } => {
                write!(f, "{what} length {len} exceeds remaining payload")
            }
            CodecError::TooDeep => write!(f, "expression deeper than {MAX_EXPR_DEPTH}"),
            CodecError::Invalid(msg) => write!(f, "invalid payload: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Cursor over a received payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Fails unless every byte was consumed — requests with junk
    /// appended are rejected, not silently half-read.
    pub fn finish(self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { what: "bool", tag }),
        }
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::TooLarge {
                what: "string",
                len: len as u64,
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }
}

/// Growable payload buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    fn string(&mut self, s: &str) -> Result<(), CodecError> {
        let len: u32 = s.len().try_into().map_err(|_| CodecError::TooLarge {
            what: "string",
            len: s.len() as u64,
        })?;
        self.u32(len);
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    fn count(&mut self, what: &'static str, n: usize) -> Result<(), CodecError> {
        let n: u32 = n.try_into().map_err(|_| CodecError::TooLarge {
            what,
            len: n as u64,
        })?;
        self.u32(n);
        Ok(())
    }
}

// ---------------------------------------------------------------- values

const VALUE_NULL: u8 = 0;
const VALUE_INT: u8 = 1;
const VALUE_DOUBLE: u8 = 2;
const VALUE_STR: u8 = 3;
const VALUE_BOOL: u8 = 4;

/// Encodes one [`Value`].
pub fn encode_value(w: &mut Writer, v: &Value) -> Result<(), CodecError> {
    match v {
        Value::Null => w.u8(VALUE_NULL),
        Value::Int(i) => {
            w.u8(VALUE_INT);
            w.i64(*i);
        }
        Value::Double(d) => {
            w.u8(VALUE_DOUBLE);
            w.f64(*d);
        }
        Value::Str(s) => {
            w.u8(VALUE_STR);
            w.string(s)?;
        }
        Value::Bool(b) => {
            w.u8(VALUE_BOOL);
            w.bool(*b);
        }
    }
    Ok(())
}

/// Decodes one [`Value`].
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value, CodecError> {
    match r.u8()? {
        VALUE_NULL => Ok(Value::Null),
        VALUE_INT => Ok(Value::Int(r.i64()?)),
        VALUE_DOUBLE => Ok(Value::Double(r.f64()?)),
        VALUE_STR => Ok(Value::Str(r.string()?)),
        VALUE_BOOL => Ok(Value::Bool(r.bool()?)),
        tag => Err(CodecError::BadTag { what: "value", tag }),
    }
}

// ----------------------------------------------------------- expressions

const EXPR_COLUMN: u8 = 0;
const EXPR_LITERAL: u8 = 1;
const EXPR_BINARY: u8 = 2;
const EXPR_NOT: u8 = 3;
const EXPR_IS_NULL: u8 = 4;

fn binop_to_u8(op: BinOp) -> u8 {
    match op {
        BinOp::Eq => 0,
        BinOp::Ne => 1,
        BinOp::Lt => 2,
        BinOp::Le => 3,
        BinOp::Gt => 4,
        BinOp::Ge => 5,
        BinOp::And => 6,
        BinOp::Or => 7,
        BinOp::Add => 8,
        BinOp::Sub => 9,
        BinOp::Mul => 10,
        BinOp::Div => 11,
        BinOp::Mod => 12,
    }
}

fn binop_from_u8(b: u8) -> Option<BinOp> {
    Some(match b {
        0 => BinOp::Eq,
        1 => BinOp::Ne,
        2 => BinOp::Lt,
        3 => BinOp::Le,
        4 => BinOp::Gt,
        5 => BinOp::Ge,
        6 => BinOp::And,
        7 => BinOp::Or,
        8 => BinOp::Add,
        9 => BinOp::Sub,
        10 => BinOp::Mul,
        11 => BinOp::Div,
        12 => BinOp::Mod,
        _ => return None,
    })
}

fn encode_expr_at(w: &mut Writer, e: &Expr, depth: usize) -> Result<(), CodecError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(CodecError::TooDeep);
    }
    match e {
        Expr::Column(name) => {
            w.u8(EXPR_COLUMN);
            w.string(name)?;
        }
        Expr::Literal(v) => {
            w.u8(EXPR_LITERAL);
            encode_value(w, v)?;
        }
        Expr::Binary { op, left, right } => {
            w.u8(EXPR_BINARY);
            w.u8(binop_to_u8(*op));
            encode_expr_at(w, left, depth + 1)?;
            encode_expr_at(w, right, depth + 1)?;
        }
        Expr::Not(inner) => {
            w.u8(EXPR_NOT);
            encode_expr_at(w, inner, depth + 1)?;
        }
        Expr::IsNull(inner) => {
            w.u8(EXPR_IS_NULL);
            encode_expr_at(w, inner, depth + 1)?;
        }
    }
    Ok(())
}

fn decode_expr_at(r: &mut Reader<'_>, depth: usize) -> Result<Expr, CodecError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(CodecError::TooDeep);
    }
    match r.u8()? {
        EXPR_COLUMN => Ok(Expr::Column(r.string()?)),
        EXPR_LITERAL => Ok(Expr::Literal(decode_value(r)?)),
        EXPR_BINARY => {
            let op_byte = r.u8()?;
            let op = binop_from_u8(op_byte).ok_or(CodecError::BadTag {
                what: "binop",
                tag: op_byte,
            })?;
            let left = decode_expr_at(r, depth + 1)?;
            let right = decode_expr_at(r, depth + 1)?;
            Ok(Expr::Binary {
                op,
                left: Arc::new(left),
                right: Arc::new(right),
            })
        }
        EXPR_NOT => Ok(Expr::Not(Arc::new(decode_expr_at(r, depth + 1)?))),
        EXPR_IS_NULL => Ok(Expr::IsNull(Arc::new(decode_expr_at(r, depth + 1)?))),
        tag => Err(CodecError::BadTag { what: "expr", tag }),
    }
}

/// Encodes one [`Expr`] (depth-limited).
pub fn encode_expr(w: &mut Writer, e: &Expr) -> Result<(), CodecError> {
    encode_expr_at(w, e, 0)
}

/// Decodes one [`Expr`] (depth-limited).
pub fn decode_expr(r: &mut Reader<'_>) -> Result<Expr, CodecError> {
    decode_expr_at(r, 0)
}

// ---------------------------------------------------------------- queries

/// Encodes a [`JoinQuery`].
pub fn encode_query(w: &mut Writer, q: &JoinQuery) -> Result<(), CodecError> {
    w.count("from items", q.from.len())?;
    for item in &q.from {
        w.string(&item.relation)?;
        w.string(&item.alias)?;
    }
    match &q.predicate {
        None => w.u8(0),
        Some(p) => {
            w.u8(1);
            encode_expr(w, p)?;
        }
    }
    match &q.projection {
        None => w.u8(0),
        Some(sel) => {
            w.u8(1);
            w.count("projection", sel.len())?;
            for (e, name) in sel {
                encode_expr(w, e)?;
                w.string(name)?;
            }
        }
    }
    Ok(())
}

/// Decodes a [`JoinQuery`].
pub fn decode_query(r: &mut Reader<'_>) -> Result<JoinQuery, CodecError> {
    let n_from = r.u32()?;
    let mut from = Vec::new();
    for _ in 0..n_from {
        let relation = r.string()?;
        let alias = r.string()?;
        from.push(FromItem::new(relation, alias));
    }
    let predicate = match r.u8()? {
        0 => None,
        1 => Some(decode_expr(r)?),
        tag => {
            return Err(CodecError::BadTag {
                what: "predicate option",
                tag,
            })
        }
    };
    let projection = match r.u8()? {
        0 => None,
        1 => {
            let n = r.u32()?;
            let mut sel = Vec::new();
            for _ in 0..n {
                let e = decode_expr(r)?;
                let name = r.string()?;
                sel.push((e, name));
            }
            Some(sel)
        }
        tag => {
            return Err(CodecError::BadTag {
                what: "projection option",
                tag,
            })
        }
    };
    Ok(JoinQuery {
        from,
        predicate,
        projection,
    })
}

// ----------------------------------------------------- optimizer config

/// Encodes an [`OptimizerConfig`] override.
pub fn encode_config(w: &mut Writer, c: &OptimizerConfig) -> Result<(), CodecError> {
    let mut flags = 0u8;
    for (bit, on) in [
        c.enable_filter_join,
        c.enable_bloom,
        c.enable_index_nl,
        c.enable_merge_join,
        c.filter_join_on_base,
        c.allow_prefix_production,
        c.plan_shape == PlanShape::Bushy,
    ]
    .into_iter()
    .enumerate()
    {
        if on {
            flags |= 1 << bit;
        }
    }
    w.u8(flags);
    let eq: u32 = c.eq_classes.try_into().map_err(|_| CodecError::TooLarge {
        what: "eq_classes",
        len: c.eq_classes as u64,
    })?;
    w.u32(eq);
    w.f64(c.params.cpu_weight);
    w.u64(c.params.memory_pages);
    w.f64(c.params.network.per_message);
    w.f64(c.params.network.per_byte);
    Ok(())
}

/// Decodes an [`OptimizerConfig`] override.
pub fn decode_config(r: &mut Reader<'_>) -> Result<OptimizerConfig, CodecError> {
    let flags = r.u8()?;
    if flags >= 1 << 7 {
        return Err(CodecError::BadTag {
            what: "config flags",
            tag: flags,
        });
    }
    let eq_classes = r.u32()? as usize;
    let cpu_weight = r.f64()?;
    let memory_pages = r.u64()?;
    let per_message = r.f64()?;
    let per_byte = r.f64()?;
    Ok(OptimizerConfig {
        enable_filter_join: flags & (1 << 0) != 0,
        enable_bloom: flags & (1 << 1) != 0,
        enable_index_nl: flags & (1 << 2) != 0,
        enable_merge_join: flags & (1 << 3) != 0,
        filter_join_on_base: flags & (1 << 4) != 0,
        allow_prefix_production: flags & (1 << 5) != 0,
        plan_shape: if flags & (1 << 6) != 0 {
            PlanShape::Bushy
        } else {
            PlanShape::LeftDeep
        },
        eq_classes,
        params: CostParams {
            cpu_weight,
            memory_pages,
            network: NetworkModel {
                per_message,
                per_byte,
            },
        },
    })
}

// --------------------------------------------------------------- requests

/// A decoded QUERY request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Wall-clock budget in milliseconds measured from server receipt;
    /// 0 = no deadline.
    pub deadline_millis: u64,
    /// Whether the server should execute with per-operator tracing on
    /// and follow the RESULT frame with a TRACE_REPLY frame.
    pub want_trace: bool,
    /// Per-request optimizer override (`None` = the server's default).
    pub config: Option<OptimizerConfig>,
    /// The query itself.
    pub query: JoinQuery,
}

/// Encodes a QUERY request payload.
pub fn encode_request(req: &QueryRequest) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    w.u64(req.deadline_millis);
    w.bool(req.want_trace);
    match &req.config {
        None => w.u8(0),
        Some(c) => {
            w.u8(1);
            encode_config(&mut w, c)?;
        }
    }
    encode_query(&mut w, &req.query)?;
    Ok(w.into_bytes())
}

/// Decodes a QUERY request payload (consuming it fully).
pub fn decode_request(payload: &[u8]) -> Result<QueryRequest, CodecError> {
    let mut r = Reader::new(payload);
    let deadline_millis = r.u64()?;
    let want_trace = r.bool()?;
    let config = match r.u8()? {
        0 => None,
        1 => Some(decode_config(&mut r)?),
        tag => {
            return Err(CodecError::BadTag {
                what: "config option",
                tag,
            })
        }
    };
    let query = decode_query(&mut r)?;
    r.finish()?;
    Ok(QueryRequest {
        deadline_millis,
        want_trace,
        config,
        query,
    })
}

// -------------------------------------------------------------- mutations

const MUTATION_INSERT: u8 = 0;
const MUTATION_UPDATE: u8 = 1;
const MUTATION_DELETE: u8 = 2;

/// Encodes one [`Mutation`].
pub fn encode_mutation(w: &mut Writer, m: &Mutation) -> Result<(), CodecError> {
    match m {
        Mutation::Insert { table, rows } => {
            w.u8(MUTATION_INSERT);
            w.string(table)?;
            w.count("insert rows", rows.len())?;
            for row in rows {
                w.count("insert row values", row.len())?;
                for v in row {
                    encode_value(w, v)?;
                }
            }
        }
        Mutation::Update {
            table,
            set,
            where_col,
            where_value,
        } => {
            w.u8(MUTATION_UPDATE);
            w.string(table)?;
            w.count("set clauses", set.len())?;
            for (col, v) in set {
                w.string(col)?;
                encode_value(w, v)?;
            }
            w.string(where_col)?;
            encode_value(w, where_value)?;
        }
        Mutation::Delete {
            table,
            where_col,
            where_value,
        } => {
            w.u8(MUTATION_DELETE);
            w.string(table)?;
            w.string(where_col)?;
            encode_value(w, where_value)?;
        }
    }
    Ok(())
}

/// Decodes one [`Mutation`].
pub fn decode_mutation(r: &mut Reader<'_>) -> Result<Mutation, CodecError> {
    match r.u8()? {
        MUTATION_INSERT => {
            let table = r.string()?;
            let nrows = r.u32()?;
            let mut rows = Vec::new();
            for _ in 0..nrows {
                let nvals = r.u32()?;
                let mut row = Vec::new();
                for _ in 0..nvals {
                    row.push(decode_value(r)?);
                }
                rows.push(row);
            }
            Ok(Mutation::Insert { table, rows })
        }
        MUTATION_UPDATE => {
            let table = r.string()?;
            let nset = r.u32()?;
            let mut set = Vec::new();
            for _ in 0..nset {
                let col = r.string()?;
                let v = decode_value(r)?;
                set.push((col, v));
            }
            let where_col = r.string()?;
            let where_value = decode_value(r)?;
            Ok(Mutation::Update {
                table,
                set,
                where_col,
                where_value,
            })
        }
        MUTATION_DELETE => {
            let table = r.string()?;
            let where_col = r.string()?;
            let where_value = decode_value(r)?;
            Ok(Mutation::Delete {
                table,
                where_col,
                where_value,
            })
        }
        tag => Err(CodecError::BadTag {
            what: "mutation",
            tag,
        }),
    }
}

/// A decoded MUTATE request.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationRequest {
    /// Wall-clock budget in milliseconds measured from server receipt;
    /// 0 = no deadline. A deadline that trips before the WAL commit
    /// cancels the mutation with no state change.
    pub deadline_millis: u64,
    /// The mutation itself.
    pub mutation: Mutation,
}

/// Encodes a MUTATE request payload.
pub fn encode_mutation_request(req: &MutationRequest) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    w.u64(req.deadline_millis);
    encode_mutation(&mut w, &req.mutation)?;
    Ok(w.into_bytes())
}

/// Decodes a MUTATE request payload (consuming it fully).
pub fn decode_mutation_request(payload: &[u8]) -> Result<MutationRequest, CodecError> {
    let mut r = Reader::new(payload);
    let deadline_millis = r.u64()?;
    let mutation = decode_mutation(&mut r)?;
    r.finish()?;
    Ok(MutationRequest {
        deadline_millis,
        mutation,
    })
}

/// A MUTATE_REPLY payload: the committed mutation's effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationReply {
    /// Rows inserted, updated, or deleted.
    pub rows_affected: u64,
    /// The table's row count after the mutation.
    pub row_count: u64,
    /// The table's data version after the mutation (monotone per
    /// relation; plan fingerprints fold it in).
    pub version: u64,
}

/// Encodes a MUTATE_REPLY payload.
pub fn encode_mutation_reply(reply: &MutationReply) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    w.u64(reply.rows_affected);
    w.u64(reply.row_count);
    w.u64(reply.version);
    Ok(w.into_bytes())
}

/// Decodes a MUTATE_REPLY payload (consuming it fully).
pub fn decode_mutation_reply(payload: &[u8]) -> Result<MutationReply, CodecError> {
    let mut r = Reader::new(payload);
    let rows_affected = r.u64()?;
    let row_count = r.u64()?;
    let version = r.u64()?;
    r.finish()?;
    Ok(MutationReply {
        rows_affected,
        row_count,
        version,
    })
}

// ---------------------------------------------------------------- replies

/// The client-side view of a query result: rows plus the per-query
/// runtime-metrics snapshot fields the server measured.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// Result schema.
    pub schema: SchemaRef,
    /// Result rows.
    pub rows: Vec<Tuple>,
    /// Ledger charges weighted into one scalar, as measured server-side.
    pub measured_cost: f64,
    /// The optimizer's estimate for the executed plan.
    pub estimated_cost: Option<f64>,
    /// Whether the plan came from the server's plan cache.
    pub cache_hit: bool,
    /// Server-side optimize+execute latency in microseconds.
    pub latency_micros: u64,
    /// Per-operator execution trace. Never part of the RESULT payload
    /// (which stays byte-comparable across replicas); the client fills
    /// this in from the separate TRACE_REPLY frame when it requested
    /// one.
    pub trace: Option<fj_trace::QueryTrace>,
}

fn datatype_to_u8(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    }
}

fn datatype_from_u8(b: u8) -> Option<DataType> {
    Some(match b {
        0 => DataType::Int,
        1 => DataType::Double,
        2 => DataType::Str,
        3 => DataType::Bool,
        _ => return None,
    })
}

/// Encodes a RESULT payload from its constituent parts.
pub fn encode_reply_parts(
    schema: &Schema,
    rows: &[Tuple],
    measured_cost: f64,
    estimated_cost: Option<f64>,
    cache_hit: bool,
    latency_micros: u64,
) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    w.count("columns", schema.arity())?;
    for col in schema.columns() {
        w.string(&col.name)?;
        w.u8(datatype_to_u8(col.data_type));
        w.bool(col.nullable);
    }
    w.count("rows", rows.len())?;
    for row in rows {
        if row.arity() != schema.arity() {
            return Err(CodecError::Invalid(format!(
                "row arity {} does not match schema arity {}",
                row.arity(),
                schema.arity()
            )));
        }
        for v in row.values() {
            encode_value(&mut w, v)?;
        }
    }
    w.f64(measured_cost);
    match estimated_cost {
        None => w.u8(0),
        Some(c) => {
            w.u8(1);
            w.f64(c);
        }
    }
    w.bool(cache_hit);
    w.u64(latency_micros);
    Ok(w.into_bytes())
}

/// Encodes a RESULT payload from an executed [`QueryResult`].
pub fn encode_reply(result: &QueryResult) -> Result<Vec<u8>, CodecError> {
    encode_reply_parts(
        &result.schema,
        &result.rows,
        result.measured_cost,
        result.estimated_cost,
        result.cache_hit,
        result.latency_micros,
    )
}

/// Decodes a RESULT payload (consuming it fully).
pub fn decode_reply(payload: &[u8]) -> Result<QueryReply, CodecError> {
    let mut r = Reader::new(payload);
    let ncols = r.u32()?;
    let mut columns = Vec::new();
    for _ in 0..ncols {
        let name = r.string()?;
        let ty_byte = r.u8()?;
        let data_type = datatype_from_u8(ty_byte).ok_or(CodecError::BadTag {
            what: "data type",
            tag: ty_byte,
        })?;
        let nullable = r.bool()?;
        columns.push(if nullable {
            Column::nullable(name, data_type)
        } else {
            Column::new(name, data_type)
        });
    }
    let schema = Schema::new(columns)
        .map_err(|e| CodecError::Invalid(format!("bad schema: {e}")))?
        .into_ref();
    let nrows = r.u32()?;
    let mut rows = Vec::new();
    for _ in 0..nrows {
        let mut values = Vec::with_capacity(schema.arity());
        for _ in 0..schema.arity() {
            values.push(decode_value(&mut r)?);
        }
        rows.push(Tuple::new(values));
    }
    let measured_cost = r.f64()?;
    let estimated_cost = match r.u8()? {
        0 => None,
        1 => Some(r.f64()?),
        tag => {
            return Err(CodecError::BadTag {
                what: "estimate option",
                tag,
            })
        }
    };
    let cache_hit = r.bool()?;
    let latency_micros = r.u64()?;
    r.finish()?;
    Ok(QueryReply {
        schema,
        rows,
        measured_cost,
        estimated_cost,
        cache_hit,
        latency_micros,
        trace: None,
    })
}

// ----------------------------------------------------------------- errors

/// Encodes an ERROR payload.
pub fn encode_error(code: crate::wire::ErrorCode, message: &str) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(code as u8);
    // Error messages are bounded so the error path itself can never
    // overflow a frame; back off to a char boundary when truncating.
    let msg = if message.len() > 4096 {
        let mut end = 4096;
        while !message.is_char_boundary(end) {
            end -= 1;
        }
        &message[..end]
    } else {
        message
    };
    w.string(msg).expect("truncated message fits in u32");
    w.into_bytes()
}

/// Decodes an ERROR payload.
pub fn decode_error(payload: &[u8]) -> Result<(crate::wire::ErrorCode, String), CodecError> {
    let mut r = Reader::new(payload);
    let code_byte = r.u8()?;
    let code = crate::wire::ErrorCode::from_u8(code_byte).ok_or(CodecError::BadTag {
        what: "error code",
        tag: code_byte,
    })?;
    let message = r.string()?;
    r.finish()?;
    Ok((code, message))
}

/// Encodes a STATS_REPLY payload (one JSON string).
pub fn encode_stats_reply(json: &str) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    w.string(json)?;
    Ok(w.into_bytes())
}

/// Decodes a STATS_REPLY payload.
pub fn decode_stats_reply(payload: &[u8]) -> Result<String, CodecError> {
    let mut r = Reader::new(payload);
    let json = r.string()?;
    r.finish()?;
    Ok(json)
}

// ----------------------------------------------------------------- health

/// A replica's readiness classification, as reported in HEALTH replies.
///
/// The router contract: `Ready` and `Degraded` replicas accept new
/// queries (`Degraded` is deprioritized), `Draining` replicas finish
/// accepted work but refuse new queries, and a replica that cannot be
/// reached at all is *dead* — a state the replica cannot report, which
/// is why it is not a variant here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Full pool strength, queue below capacity, accepting work.
    Ready,
    /// Accepting work, but the pool has replaced workers after panics
    /// or the submission queue is at capacity (sheds likely).
    Degraded,
    /// Finishing accepted work; new queries are refused with
    /// [`crate::wire::ErrorCode::ShuttingDown`].
    Draining,
}

impl HealthStatus {
    fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ready => "ready",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Draining => "draining",
        }
    }

    fn from_str(s: &str) -> Option<HealthStatus> {
        match s {
            "ready" => Some(HealthStatus::Ready),
            "degraded" => Some(HealthStatus::Degraded),
            "draining" => Some(HealthStatus::Draining),
            _ => None,
        }
    }
}

impl fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One replica's health report: the HEALTH reply payload, carried on
/// the wire as a flat JSON object so operators can read it off a
/// tcpdump and other tooling can scrape it without our codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Readiness classification (see [`HealthStatus`]).
    pub status: HealthStatus,
    /// Configured worker-pool size.
    pub workers: u64,
    /// Workers respawned after caught panics.
    pub workers_replaced: u64,
    /// Jobs waiting in the submission queue.
    pub queued: u64,
    /// Jobs executing right now.
    pub in_flight: u64,
    /// Submission-queue capacity (the shed threshold).
    pub queue_capacity: u64,
    /// Connections currently open on the server.
    pub connections_active: u64,
    /// Buffer-pool hits since start (0 when the replica runs in
    /// memory).
    pub pool_hits: u64,
    /// Buffer-pool misses — physical page reads — since start (0 in
    /// memory).
    pub pool_misses: u64,
    /// Pages evicted from the buffer pool since start.
    pub pool_evictions: u64,
    /// WAL group fsyncs issued since start.
    pub wal_fsyncs: u64,
    /// Distributed query fragments executed by this shard since start.
    pub fragments_served: u64,
    /// Semijoin filter sets (exact key sets or Bloom filters) this
    /// shard has received and applied since start.
    pub semijoin_sets_shipped: u64,
    /// Payload bytes of table partitions scattered onto this shard.
    pub bytes_scattered: u64,
    /// Payload bytes of partial results gathered off this shard.
    pub bytes_gathered: u64,
    /// Mutations committed (WAL fsync reached) since start.
    pub mutations_applied: u64,
    /// WAL page-delta records appended by mutations since start.
    pub wal_deltas: u64,
    /// Dirty pages currently held in the buffer pool (awaiting
    /// write-back or the next checkpoint).
    pub dirty_pages: u64,
    /// Fuzzy checkpoints completed since start.
    pub checkpoints: u64,
    /// Operator spill events since start (0 when spilling is off).
    pub spills: u64,
    /// Temp partitions created by spilling operators since start.
    pub spill_partitions: u64,
    /// Bytes appended to spill temp files since start.
    pub spill_bytes_written: u64,
    /// Bytes read back from spill temp files since start.
    pub spill_bytes_read: u64,
    /// High-water mark of bytes simultaneously held in live spill temp
    /// files.
    pub peak_temp_bytes: u64,
}

impl HealthSnapshot {
    /// Renders the snapshot as its wire JSON: one flat object with a
    /// stable key order.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"status\":\"{}\",\"workers\":{},\"workers_replaced\":{},",
                "\"queued\":{},\"in_flight\":{},\"queue_capacity\":{},",
                "\"connections_active\":{},\"pool_hits\":{},",
                "\"pool_misses\":{},\"pool_evictions\":{},",
                "\"wal_fsyncs\":{},\"fragments_served\":{},",
                "\"semijoin_sets_shipped\":{},\"bytes_scattered\":{},",
                "\"bytes_gathered\":{},\"mutations_applied\":{},",
                "\"wal_deltas\":{},\"dirty_pages\":{},",
                "\"checkpoints\":{},\"spills\":{},",
                "\"spill_partitions\":{},\"spill_bytes_written\":{},",
                "\"spill_bytes_read\":{},\"peak_temp_bytes\":{}}}"
            ),
            self.status,
            self.workers,
            self.workers_replaced,
            self.queued,
            self.in_flight,
            self.queue_capacity,
            self.connections_active,
            self.pool_hits,
            self.pool_misses,
            self.pool_evictions,
            self.wal_fsyncs,
            self.fragments_served,
            self.semijoin_sets_shipped,
            self.bytes_scattered,
            self.bytes_gathered,
            self.mutations_applied,
            self.wal_deltas,
            self.dirty_pages,
            self.checkpoints,
            self.spills,
            self.spill_partitions,
            self.spill_bytes_written,
            self.spill_bytes_read,
            self.peak_temp_bytes,
        )
    }

    /// Parses the wire JSON back into a snapshot. The parser is total
    /// and strict: a flat object with exactly the expected keys (any
    /// order, each exactly once), unsigned-integer counters, and a
    /// known status string. Anything else — junk bytes, duplicate or
    /// unknown keys, nested values, numeric overflow — is a typed
    /// [`CodecError`], never a panic.
    pub fn from_json(json: &str) -> Result<HealthSnapshot, CodecError> {
        let fields = parse_flat_json(json)?;
        let mut status = None;
        let mut counters = [None; 23];
        const KEYS: [&str; 23] = [
            "workers",
            "workers_replaced",
            "queued",
            "in_flight",
            "queue_capacity",
            "connections_active",
            "pool_hits",
            "pool_misses",
            "pool_evictions",
            "wal_fsyncs",
            "fragments_served",
            "semijoin_sets_shipped",
            "bytes_scattered",
            "bytes_gathered",
            "mutations_applied",
            "wal_deltas",
            "dirty_pages",
            "checkpoints",
            "spills",
            "spill_partitions",
            "spill_bytes_written",
            "spill_bytes_read",
            "peak_temp_bytes",
        ];
        for (key, value) in fields {
            if key == "status" {
                let JsonValue::Str(s) = value else {
                    return Err(CodecError::Invalid(
                        "health: status must be a string".into(),
                    ));
                };
                let parsed = HealthStatus::from_str(&s)
                    .ok_or_else(|| CodecError::Invalid(format!("health: unknown status {s:?}")))?;
                if status.replace(parsed).is_some() {
                    return Err(CodecError::Invalid("health: duplicate key status".into()));
                }
                continue;
            }
            let slot = KEYS
                .iter()
                .position(|k| *k == key)
                .ok_or_else(|| CodecError::Invalid(format!("health: unknown key {key:?}")))?;
            let JsonValue::Uint(n) = value else {
                return Err(CodecError::Invalid(format!(
                    "health: {key} must be an unsigned integer"
                )));
            };
            if counters[slot].replace(n).is_some() {
                return Err(CodecError::Invalid(format!(
                    "health: duplicate key {key:?}"
                )));
            }
        }
        let status =
            status.ok_or_else(|| CodecError::Invalid("health: missing key status".into()))?;
        let counter = |slot: usize| {
            counters[slot]
                .ok_or_else(|| CodecError::Invalid(format!("health: missing key {:?}", KEYS[slot])))
        };
        Ok(HealthSnapshot {
            status,
            workers: counter(0)?,
            workers_replaced: counter(1)?,
            queued: counter(2)?,
            in_flight: counter(3)?,
            queue_capacity: counter(4)?,
            connections_active: counter(5)?,
            pool_hits: counter(6)?,
            pool_misses: counter(7)?,
            pool_evictions: counter(8)?,
            wal_fsyncs: counter(9)?,
            fragments_served: counter(10)?,
            semijoin_sets_shipped: counter(11)?,
            bytes_scattered: counter(12)?,
            bytes_gathered: counter(13)?,
            mutations_applied: counter(14)?,
            wal_deltas: counter(15)?,
            dirty_pages: counter(16)?,
            checkpoints: counter(17)?,
            spills: counter(18)?,
            spill_partitions: counter(19)?,
            spill_bytes_written: counter(20)?,
            spill_bytes_read: counter(21)?,
            peak_temp_bytes: counter(22)?,
        })
    }
}

/// A parsed flat-JSON scalar: the only value shapes health uses.
enum JsonValue {
    Uint(u64),
    Str(String),
}

/// Total parser for one flat JSON object of string/uint fields —
/// `{"key":123,"other":"text"}` with optional ASCII whitespace between
/// tokens. Strings accept the two escapes the renderer can emit (`\"`
/// and `\\`); everything else (nesting, floats, negatives, booleans)
/// is a typed error. Deliberately tiny: this is a wire-format parser
/// for payloads *we* define, not a general JSON library.
fn parse_flat_json(json: &str) -> Result<Vec<(String, JsonValue)>, CodecError> {
    let bad = |msg: &str| CodecError::Invalid(format!("health json: {msg}"));
    let bytes = json.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && (bytes[*pos] as char).is_ascii_whitespace() {
            *pos += 1;
        }
    };
    let parse_string = |pos: &mut usize| -> Result<String, CodecError> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(bad("expected '\"'"));
        }
        *pos += 1;
        let mut out = Vec::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(bad("unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return String::from_utf8(out).map_err(|_| CodecError::BadUtf8);
                }
                Some(b'\\') => match bytes.get(*pos + 1) {
                    Some(b'"') | Some(b'\\') => {
                        out.push(bytes[*pos + 1]);
                        *pos += 2;
                    }
                    _ => return Err(bad("unsupported escape")),
                },
                Some(b) => {
                    out.push(*b);
                    *pos += 1;
                }
            }
        }
    };
    let parse_uint = |pos: &mut usize| -> Result<u64, CodecError> {
        let start = *pos;
        let mut n: u64 = 0;
        while let Some(d) = bytes.get(*pos).filter(|b| b.is_ascii_digit()) {
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(u64::from(d - b'0')))
                .ok_or_else(|| bad("integer overflows u64"))?;
            *pos += 1;
        }
        if *pos == start {
            return Err(bad("expected a digit"));
        }
        Ok(n)
    };

    skip_ws(&mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err(bad("expected '{'"));
    }
    pos += 1;
    let mut fields = Vec::new();
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        pos += 1;
    } else {
        loop {
            skip_ws(&mut pos);
            let key = parse_string(&mut pos)?;
            skip_ws(&mut pos);
            if bytes.get(pos) != Some(&b':') {
                return Err(bad("expected ':'"));
            }
            pos += 1;
            skip_ws(&mut pos);
            let value = match bytes.get(pos) {
                Some(b'"') => JsonValue::Str(parse_string(&mut pos)?),
                Some(b) if b.is_ascii_digit() => JsonValue::Uint(parse_uint(&mut pos)?),
                _ => return Err(bad("expected a string or unsigned integer value")),
            };
            fields.push((key, value));
            skip_ws(&mut pos);
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                _ => return Err(bad("expected ',' or '}'")),
            }
        }
    }
    skip_ws(&mut pos);
    if pos != bytes.len() {
        return Err(CodecError::TrailingBytes(bytes.len() - pos));
    }
    Ok(fields)
}

// ------------------------------------------------------------------ traces

/// Encodes a TRACE_REPLY payload (the trace's JSON as one string).
pub fn encode_trace_reply(trace: &fj_trace::QueryTrace) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    w.string(&trace.to_json())?;
    Ok(w.into_bytes())
}

/// Decodes a TRACE_REPLY payload (consuming it fully). The embedded
/// JSON goes through [`fj_trace::QueryTrace::from_json`], which is
/// strict and total like the HEALTH parser: truncations, duplicate or
/// unknown keys, depth bombs, and malformed numbers are all typed
/// errors, never panics.
pub fn decode_trace_reply(payload: &[u8]) -> Result<fj_trace::QueryTrace, CodecError> {
    let mut r = Reader::new(payload);
    let json = r.string()?;
    r.finish()?;
    fj_trace::QueryTrace::from_json(&json)
        .map_err(|e| CodecError::Invalid(format!("trace json: {e}")))
}

/// Encodes a HEALTH_REPLY payload (the snapshot's JSON as one string).
pub fn encode_health_reply(health: &HealthSnapshot) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    w.string(&health.to_json())?;
    Ok(w.into_bytes())
}

/// Decodes a HEALTH_REPLY payload (consuming it fully).
pub fn decode_health_reply(payload: &[u8]) -> Result<HealthSnapshot, CodecError> {
    let mut r = Reader::new(payload);
    let json = r.string()?;
    r.finish()?;
    HealthSnapshot::from_json(&json)
}

// ------------------------------------------------- distributed execution

/// Encodes a schema as (count, [name, type byte, nullable]...).
fn encode_schema(w: &mut Writer, schema: &Schema) -> Result<(), CodecError> {
    w.count("columns", schema.arity())?;
    for col in schema.columns() {
        w.string(&col.name)?;
        w.u8(datatype_to_u8(col.data_type));
        w.bool(col.nullable);
    }
    Ok(())
}

fn decode_schema(r: &mut Reader<'_>) -> Result<SchemaRef, CodecError> {
    let ncols = r.u32()?;
    let mut columns = Vec::new();
    for _ in 0..ncols {
        let name = r.string()?;
        let ty_byte = r.u8()?;
        let data_type = datatype_from_u8(ty_byte).ok_or(CodecError::BadTag {
            what: "data type",
            tag: ty_byte,
        })?;
        let nullable = r.bool()?;
        columns.push(if nullable {
            Column::nullable(name, data_type)
        } else {
            Column::new(name, data_type)
        });
    }
    Ok(Schema::new(columns)
        .map_err(|e| CodecError::Invalid(format!("bad schema: {e}")))?
        .into_ref())
}

/// Encodes rows against `schema`, rejecting arity mismatches.
fn encode_rows(w: &mut Writer, schema: &Schema, rows: &[Tuple]) -> Result<(), CodecError> {
    w.count("rows", rows.len())?;
    for row in rows {
        if row.arity() != schema.arity() {
            return Err(CodecError::Invalid(format!(
                "row arity {} does not match schema arity {}",
                row.arity(),
                schema.arity()
            )));
        }
        for v in row.values() {
            encode_value(w, v)?;
        }
    }
    Ok(())
}

fn decode_rows(r: &mut Reader<'_>, schema: &Schema) -> Result<Vec<Tuple>, CodecError> {
    let nrows = r.u32()?;
    let mut rows = Vec::new();
    for _ in 0..nrows {
        let mut values = Vec::with_capacity(schema.arity());
        for _ in 0..schema.arity() {
            values.push(decode_value(r)?);
        }
        rows.push(Tuple::new(values));
    }
    Ok(rows)
}

/// A SCATTER payload: one hash partition of a base table, to be
/// installed into the receiving shard's catalog under `table`.
#[derive(Debug, Clone)]
pub struct ScatterRequest {
    /// Shard-local name for the partition table (e.g. `orders__p2`).
    pub table: String,
    /// The partition's schema (the base schema plus the coordinator's
    /// hidden row-ordinal column).
    pub schema: SchemaRef,
    /// The partition's rows.
    pub rows: Vec<Tuple>,
}

/// A SCATTER_ACK payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScatterAck {
    /// Rows installed on the shard.
    pub rows_stored: u64,
    /// Their total wire width in bytes.
    pub bytes_stored: u64,
}

/// Encodes a SCATTER payload.
pub fn encode_scatter(req: &ScatterRequest) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    w.string(&req.table)?;
    encode_schema(&mut w, &req.schema)?;
    encode_rows(&mut w, &req.schema, &req.rows)?;
    Ok(w.into_bytes())
}

/// Decodes a SCATTER payload (consuming it fully).
pub fn decode_scatter(payload: &[u8]) -> Result<ScatterRequest, CodecError> {
    let mut r = Reader::new(payload);
    let table = r.string()?;
    let schema = decode_schema(&mut r)?;
    let rows = decode_rows(&mut r, &schema)?;
    r.finish()?;
    Ok(ScatterRequest {
        table,
        schema,
        rows,
    })
}

/// Encodes a SCATTER_ACK payload.
pub fn encode_scatter_ack(ack: &ScatterAck) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    w.u64(ack.rows_stored);
    w.u64(ack.bytes_stored);
    Ok(w.into_bytes())
}

/// Decodes a SCATTER_ACK payload (consuming it fully).
pub fn decode_scatter_ack(payload: &[u8]) -> Result<ScatterAck, CodecError> {
    let mut r = Reader::new(payload);
    let rows_stored = r.u64()?;
    let bytes_stored = r.u64()?;
    r.finish()?;
    Ok(ScatterAck {
        rows_stored,
        bytes_stored,
    })
}

/// A filter set shipped to a shard — the paper's exact vs lossy
/// representations (§3.2): an exact key list, or a Bloom filter whose
/// false positives cost shipped bytes but never correctness.
#[derive(Debug, Clone)]
pub enum KeyFilter {
    /// The exact distinct key set.
    Exact(Vec<Value>),
    /// A lossy Bloom representation of the key set.
    Bloom(BloomFilter),
}

impl KeyFilter {
    /// Membership test; `Bloom` may return false positives, never
    /// false negatives.
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            KeyFilter::Exact(keys) => keys.contains(v),
            KeyFilter::Bloom(f) => f.contains(v),
        }
    }
}

impl PartialEq for KeyFilter {
    fn eq(&self, other: &KeyFilter) -> bool {
        match (self, other) {
            (KeyFilter::Exact(a), KeyFilter::Exact(b)) => a == b,
            (KeyFilter::Bloom(a), KeyFilter::Bloom(b)) => {
                a.words() == b.words()
                    && a.n_bits() == b.n_bits()
                    && a.n_hashes() == b.n_hashes()
                    && a.inserted() == b.inserted()
            }
            _ => false,
        }
    }
}

fn encode_key_filter(w: &mut Writer, f: &KeyFilter) -> Result<(), CodecError> {
    match f {
        KeyFilter::Exact(keys) => {
            w.u8(0);
            w.count("filter keys", keys.len())?;
            for k in keys {
                encode_value(w, k)?;
            }
        }
        KeyFilter::Bloom(bloom) => {
            w.u8(1);
            w.u64(bloom.n_bits());
            w.u8(bloom.n_hashes() as u8);
            w.u64(bloom.inserted());
            for word in bloom.words() {
                w.u64(*word);
            }
        }
    }
    Ok(())
}

fn decode_key_filter(r: &mut Reader<'_>) -> Result<KeyFilter, CodecError> {
    match r.u8()? {
        0 => {
            let n = r.u32()?;
            let mut keys = Vec::new();
            for _ in 0..n {
                keys.push(decode_value(r)?);
            }
            Ok(KeyFilter::Exact(keys))
        }
        1 => {
            let n_bits = r.u64()?;
            let n_hashes = u32::from(r.u8()?);
            let inserted = r.u64()?;
            // Validate geometry *before* allocating word storage, so a
            // lying n_bits cannot demand 2^61 words.
            if n_bits == 0 || n_bits % 64 != 0 || n_bits > fj_storage::bloom::MAX_BLOOM_BITS {
                return Err(CodecError::TooLarge {
                    what: "bloom bits",
                    len: n_bits,
                });
            }
            let n_words = (n_bits / 64) as usize;
            if r.remaining() < n_words * 8 {
                return Err(CodecError::UnexpectedEof);
            }
            let mut words = Vec::with_capacity(n_words);
            for _ in 0..n_words {
                words.push(r.u64()?);
            }
            let bloom = BloomFilter::from_parts(words, n_bits, n_hashes, inserted).ok_or(
                CodecError::BadTag {
                    what: "bloom hash count",
                    tag: n_hashes as u8,
                },
            )?;
            Ok(KeyFilter::Bloom(bloom))
        }
        tag => Err(CodecError::BadTag {
            what: "key filter",
            tag,
        }),
    }
}

/// A SEMIJOIN payload: reduce shard-resident `table` by the conjunction
/// of the shipped per-column filters, then report what the coordinator
/// asked for — surviving rows, distinct keys of one column, or both
/// (the SDD-1 reducer building block).
#[derive(Debug, Clone, PartialEq)]
pub struct SemijoinRequest {
    /// Shard-local table to reduce.
    pub table: String,
    /// `(column name, filter)` pairs; a row survives if every filter
    /// accepts its value in that column. Empty = no reduction.
    pub filters: Vec<(String, KeyFilter)>,
    /// Return the surviving rows.
    pub want_rows: bool,
    /// Return the distinct values of this column among survivors.
    pub keys_of: Option<String>,
}

/// A SEMIJOIN_ACK payload.
#[derive(Debug, Clone)]
pub struct SemijoinAck {
    /// Partition rows before reduction.
    pub rows_before: u64,
    /// Rows surviving all filters.
    pub rows_after: u64,
    /// Surviving rows, when requested.
    pub rows: Option<(SchemaRef, Vec<Tuple>)>,
    /// Distinct surviving keys, when requested.
    pub keys: Option<Vec<Value>>,
}

/// Encodes a SEMIJOIN payload.
pub fn encode_semijoin(req: &SemijoinRequest) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    w.string(&req.table)?;
    w.count("filters", req.filters.len())?;
    for (column, filter) in &req.filters {
        w.string(column)?;
        encode_key_filter(&mut w, filter)?;
    }
    w.bool(req.want_rows);
    match &req.keys_of {
        None => w.u8(0),
        Some(col) => {
            w.u8(1);
            w.string(col)?;
        }
    }
    Ok(w.into_bytes())
}

/// Decodes a SEMIJOIN payload (consuming it fully).
pub fn decode_semijoin(payload: &[u8]) -> Result<SemijoinRequest, CodecError> {
    let mut r = Reader::new(payload);
    let table = r.string()?;
    let nfilters = r.u32()?;
    let mut filters = Vec::new();
    for _ in 0..nfilters {
        let column = r.string()?;
        let filter = decode_key_filter(&mut r)?;
        filters.push((column, filter));
    }
    let want_rows = r.bool()?;
    let keys_of = match r.u8()? {
        0 => None,
        1 => Some(r.string()?),
        tag => {
            return Err(CodecError::BadTag {
                what: "keys_of option",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(SemijoinRequest {
        table,
        filters,
        want_rows,
        keys_of,
    })
}

/// Encodes a SEMIJOIN_ACK payload.
pub fn encode_semijoin_ack(ack: &SemijoinAck) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    w.u64(ack.rows_before);
    w.u64(ack.rows_after);
    match &ack.rows {
        None => w.u8(0),
        Some((schema, rows)) => {
            w.u8(1);
            encode_schema(&mut w, schema)?;
            encode_rows(&mut w, schema, rows)?;
        }
    }
    match &ack.keys {
        None => w.u8(0),
        Some(keys) => {
            w.u8(1);
            w.count("keys", keys.len())?;
            for k in keys {
                encode_value(&mut w, k)?;
            }
        }
    }
    Ok(w.into_bytes())
}

/// Decodes a SEMIJOIN_ACK payload (consuming it fully).
pub fn decode_semijoin_ack(payload: &[u8]) -> Result<SemijoinAck, CodecError> {
    let mut r = Reader::new(payload);
    let rows_before = r.u64()?;
    let rows_after = r.u64()?;
    let rows = match r.u8()? {
        0 => None,
        1 => {
            let schema = decode_schema(&mut r)?;
            let rows = decode_rows(&mut r, &schema)?;
            Some((schema, rows))
        }
        tag => {
            return Err(CodecError::BadTag {
                what: "rows option",
                tag,
            })
        }
    };
    let keys = match r.u8()? {
        0 => None,
        1 => {
            let n = r.u32()?;
            let mut keys = Vec::new();
            for _ in 0..n {
                keys.push(decode_value(&mut r)?);
            }
            Some(keys)
        }
        tag => {
            return Err(CodecError::BadTag {
                what: "keys option",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(SemijoinAck {
        rows_before,
        rows_after,
        rows,
        keys,
    })
}

/// A FRAGMENT payload: one query fragment to run through the shard's
/// query service, with the same deadline semantics as a QUERY frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentRequest {
    /// Milliseconds the coordinator will wait; 0 = no deadline.
    pub deadline_millis: u64,
    /// The fragment, phrased over shard-local partition tables.
    pub query: JoinQuery,
}

/// Encodes a FRAGMENT payload.
pub fn encode_fragment(req: &FragmentRequest) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    w.u64(req.deadline_millis);
    encode_query(&mut w, &req.query)?;
    Ok(w.into_bytes())
}

/// Decodes a FRAGMENT payload (consuming it fully).
pub fn decode_fragment(payload: &[u8]) -> Result<FragmentRequest, CodecError> {
    let mut r = Reader::new(payload);
    let deadline_millis = r.u64()?;
    let query = decode_query(&mut r)?;
    r.finish()?;
    Ok(FragmentRequest {
        deadline_millis,
        query,
    })
}

/// A GATHER payload: one fragment's partial result.
#[derive(Debug, Clone)]
pub struct GatherReply {
    /// Fragment result schema.
    pub schema: SchemaRef,
    /// Fragment result rows.
    pub rows: Vec<Tuple>,
    /// Shard-side fragment latency in microseconds.
    pub latency_micros: u64,
}

/// Encodes a GATHER payload.
pub fn encode_gather(reply: &GatherReply) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    encode_schema(&mut w, &reply.schema)?;
    encode_rows(&mut w, &reply.schema, &reply.rows)?;
    w.u64(reply.latency_micros);
    Ok(w.into_bytes())
}

/// Decodes a GATHER payload (consuming it fully).
pub fn decode_gather(payload: &[u8]) -> Result<GatherReply, CodecError> {
    let mut r = Reader::new(payload);
    let schema = decode_schema(&mut r)?;
    let rows = decode_rows(&mut r, &schema)?;
    let latency_micros = r.u64()?;
    r.finish()?;
    Ok(GatherReply {
        schema,
        rows,
        latency_micros,
    })
}
