//! The framed wire protocol: magic + version handshake, then
//! length-prefixed frames.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! handshake   client → server   [4B magic "FJNT"][u16 version]
//!             server → client   [4B magic "FJNT"][u16 version]
//!                               (version 0xFFFF = rejected)
//! frame       either direction  [u8 type][u32 payload_len][payload]
//! ```
//!
//! Frame payloads are encoded by [`crate::codec`]. Every decode path
//! is total: adversarial bytes produce typed errors, never panics, and
//! a claimed payload length above the configured cap is rejected
//! *before* any allocation ([`WireError::FrameTooLarge`]).

use std::fmt;
use std::io::{self, Read, Write};

/// Protocol magic: the first four bytes on every connection.
pub const MAGIC: [u8; 4] = *b"FJNT";

/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;

/// Version value the server echoes to refuse a handshake.
pub const VERSION_REJECTED: u16 = 0xFFFF;

/// Default cap on one frame's payload (16 MiB).
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Bytes of a frame header: 1 type byte + 4 length bytes.
pub const FRAME_HEADER_BYTES: usize = 5;

/// Frame discriminants. Requests use the low range, responses the
/// high range, so a peer speaking the wrong role is caught immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server: execute a query (payload: request encoding).
    Query = 0x01,
    /// Client → server: fetch server + runtime counters.
    Stats = 0x02,
    /// Client → server: cancel the in-flight query on this connection
    /// (empty payload). The server trips the query's interrupt; the
    /// reply is an [`ErrorCode::Cancelled`] error frame (or the result,
    /// if the query won the race).
    Cancel = 0x03,
    /// Client → server: health/readiness probe (empty payload). Served
    /// even while the server drains, so a replica router can tell
    /// "draining" from "dead".
    Health = 0x04,
    /// Coordinator → shard: install one hash partition of a base table
    /// into the shard's catalog (payload: table name + schema + rows).
    /// Refused with a retryable error while the shard drains.
    Scatter = 0x05,
    /// Coordinator → shard: semijoin-filter a shard-resident table by
    /// shipped key / Bloom filter sets, optionally returning surviving
    /// rows and/or the distinct keys of one column (the SDD-1 reducer
    /// step, §5.1).
    Semijoin = 0x06,
    /// Coordinator → shard: run one query fragment (a [`fj_algebra::JoinQuery`]
    /// over shard-local partition tables) through the shard's query
    /// service — admission, governor and CANCEL apply exactly as for
    /// [`FrameType::Query`].
    Fragment = 0x07,
    /// Client → server: execute a mutation (INSERT/UPDATE/DELETE;
    /// payload: [`crate::codec::MutationRequest`] encoding). Admission
    /// control, deadlines, and CANCEL apply exactly as for
    /// [`FrameType::Query`]; a cancellation observed before the WAL
    /// commit leaves no state.
    Mutate = 0x08,
    /// Server → client: query result (payload: reply encoding).
    Result = 0x81,
    /// Server → client: stats reply (payload: one JSON string).
    StatsReply = 0x82,
    /// Server → client: health reply (payload: one JSON object — see
    /// [`crate::codec::HealthSnapshot`]).
    HealthReply = 0x83,
    /// Server → client: the per-operator execution trace of the query
    /// just answered with [`FrameType::Result`] (payload: one JSON
    /// object — see [`fj_trace::QueryTrace`]). Sent only when the
    /// request set its trace flag, always immediately after the RESULT
    /// frame, so the reply encoding itself stays byte-comparable
    /// across replicas.
    TraceReply = 0x84,
    /// Shard → coordinator: acknowledgement of a [`FrameType::Scatter`]
    /// (payload: rows stored + bytes stored).
    ScatterAck = 0x85,
    /// Shard → coordinator: reply to a [`FrameType::Semijoin`] (payload:
    /// row counts before/after reduction, optional surviving rows,
    /// optional distinct key set).
    SemijoinAck = 0x86,
    /// Shard → coordinator: the rows of one executed fragment (payload:
    /// schema + rows + latency), the partial-result half of the
    /// scatter/gather exchange.
    Gather = 0x87,
    /// Server → client: reply to a [`FrameType::Mutate`] (payload:
    /// rows affected + new row count + new table version).
    MutateReply = 0x88,
    /// Server → client: typed error (payload: code + message).
    Error = 0x7F,
}

impl FrameType {
    /// Decodes a frame-type byte.
    pub fn from_u8(b: u8) -> Option<FrameType> {
        match b {
            0x01 => Some(FrameType::Query),
            0x02 => Some(FrameType::Stats),
            0x03 => Some(FrameType::Cancel),
            0x04 => Some(FrameType::Health),
            0x05 => Some(FrameType::Scatter),
            0x06 => Some(FrameType::Semijoin),
            0x07 => Some(FrameType::Fragment),
            0x08 => Some(FrameType::Mutate),
            0x81 => Some(FrameType::Result),
            0x82 => Some(FrameType::StatsReply),
            0x83 => Some(FrameType::HealthReply),
            0x84 => Some(FrameType::TraceReply),
            0x85 => Some(FrameType::ScatterAck),
            0x86 => Some(FrameType::SemijoinAck),
            0x87 => Some(FrameType::Gather),
            0x88 => Some(FrameType::MutateReply),
            0x7F => Some(FrameType::Error),
            _ => None,
        }
    }
}

/// Typed error codes carried in [`FrameType::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request payload failed to decode.
    Malformed = 1,
    /// Admission control refused the query (submission queue or
    /// connection cap full). Retryable after backoff.
    Shed = 2,
    /// The per-request deadline expired before the query finished.
    DeadlineExceeded = 3,
    /// The server is draining and accepts no new work. Retryable
    /// against another replica.
    ShuttingDown = 4,
    /// The optimizer or executor rejected the query.
    QueryFailed = 5,
    /// The handshake offered a protocol version this peer cannot speak.
    UnsupportedVersion = 6,
    /// A frame claimed a payload larger than the configured cap.
    FrameTooLarge = 7,
    /// Anything else (worker lost, internal invariant).
    Internal = 8,
    /// The query was cancelled — by a client CANCEL frame or a
    /// server-side deadline tearing down execution.
    Cancelled = 9,
}

impl ErrorCode {
    /// Decodes an error-code byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::Shed),
            3 => Some(ErrorCode::DeadlineExceeded),
            4 => Some(ErrorCode::ShuttingDown),
            5 => Some(ErrorCode::QueryFailed),
            6 => Some(ErrorCode::UnsupportedVersion),
            7 => Some(ErrorCode::FrameTooLarge),
            8 => Some(ErrorCode::Internal),
            9 => Some(ErrorCode::Cancelled),
            _ => None,
        }
    }

    /// Whether a client should retry (possibly elsewhere, after
    /// backoff): load shedding and drain are transient by design.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Shed | ErrorCode::ShuttingDown)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Malformed => "MALFORMED",
            ErrorCode::Shed => "SHED",
            ErrorCode::DeadlineExceeded => "DEADLINE",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
            ErrorCode::QueryFailed => "QUERY_FAILED",
            ErrorCode::UnsupportedVersion => "UNSUPPORTED_VERSION",
            ErrorCode::FrameTooLarge => "FRAME_TOO_LARGE",
            ErrorCode::Internal => "INTERNAL",
            ErrorCode::Cancelled => "CANCELLED",
        };
        f.write_str(s)
    }
}

/// Transport-layer failures (framing and handshake; payload decoding
/// errors are [`crate::codec::CodecError`]).
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(io::Error),
    /// The peer's first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks an incompatible protocol version.
    VersionMismatch {
        /// Version the peer offered (or echoed).
        theirs: u16,
    },
    /// A frame-type byte outside the protocol.
    UnknownFrameType(u8),
    /// A frame header claimed more payload than the cap allows.
    FrameTooLarge {
        /// Claimed payload length.
        len: u32,
        /// Configured cap.
        max: u32,
    },
    /// The connection closed mid-frame.
    TruncatedFrame,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad protocol magic {m:02x?}"),
            WireError::VersionMismatch { theirs } => {
                write!(
                    f,
                    "peer speaks protocol version {theirs}, we speak {VERSION}"
                )
            }
            WireError::UnknownFrameType(b) => write!(f, "unknown frame type 0x{b:02x}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap of {max}")
            }
            WireError::TruncatedFrame => f.write_str("connection closed mid-frame"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame; returns the total bytes put on the wire.
pub fn write_frame(w: &mut impl Write, ty: FrameType, payload: &[u8]) -> io::Result<usize> {
    debug_assert!(payload.len() <= u32::MAX as usize);
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[0] = ty as u8;
    header[1..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(FRAME_HEADER_BYTES + payload.len())
}

/// Incremental frame reader: buffers partial reads so a socket with a
/// read timeout never loses sync, and lets the caller interleave a
/// stop condition (the server's drain flag) between reads.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max: u32,
}

/// One received frame plus its size on the wire.
#[derive(Debug)]
pub struct Frame {
    /// Frame discriminant.
    pub ty: FrameType,
    /// Decoded payload bytes.
    pub payload: Vec<u8>,
    /// Header + payload size, for byte accounting.
    pub wire_bytes: usize,
}

impl FrameReader {
    /// A reader enforcing `max` payload bytes per frame.
    pub fn new(max: u32) -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            max,
        }
    }

    /// Parses a complete frame out of the buffer, if present.
    fn take_buffered(&mut self) -> Result<Option<Frame>, WireError> {
        if self.buf.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let ty = FrameType::from_u8(self.buf[0]).ok_or(WireError::UnknownFrameType(self.buf[0]))?;
        let len = u32::from_be_bytes([self.buf[1], self.buf[2], self.buf[3], self.buf[4]]);
        if len > self.max {
            return Err(WireError::FrameTooLarge { len, max: self.max });
        }
        let total = FRAME_HEADER_BYTES + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[FRAME_HEADER_BYTES..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Frame {
            ty,
            payload,
            wire_bytes: total,
        }))
    }

    /// Reads until one frame is complete, the peer closes cleanly
    /// between frames (`Ok(None)`), or `should_stop(mid_frame)` says to
    /// give up. Timeout-flavoured read errors re-check `should_stop`
    /// instead of failing, so servers poll with short socket timeouts.
    pub fn read_frame<R: Read>(
        &mut self,
        r: &mut R,
        mut should_stop: impl FnMut(bool) -> bool,
    ) -> Result<Option<Frame>, WireError> {
        let mut chunk = [0u8; 8 * 1024];
        loop {
            if let Some(frame) = self.take_buffered()? {
                return Ok(Some(frame));
            }
            if should_stop(!self.buf.is_empty()) {
                return Ok(None);
            }
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(WireError::TruncatedFrame)
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }

    /// Blocking convenience: reads one frame with no stop condition.
    pub fn read_frame_blocking<R: Read>(&mut self, r: &mut R) -> Result<Option<Frame>, WireError> {
        self.read_frame(r, |_| false)
    }
}

/// Client side of the handshake: offer our magic + version, check the
/// echo.
pub fn client_handshake<S: Read + Write>(stream: &mut S) -> Result<(), WireError> {
    let mut hello = [0u8; 6];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4..].copy_from_slice(&VERSION.to_be_bytes());
    stream.write_all(&hello)?;
    stream.flush()?;

    let mut echo = [0u8; 6];
    stream.read_exact(&mut echo).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::TruncatedFrame
        } else {
            WireError::Io(e)
        }
    })?;
    let magic: [u8; 4] = [echo[0], echo[1], echo[2], echo[3]];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let theirs = u16::from_be_bytes([echo[4], echo[5]]);
    if theirs != VERSION {
        return Err(WireError::VersionMismatch { theirs });
    }
    Ok(())
}

/// Server side of the handshake: read the client's offer, echo our
/// version on success, echo [`VERSION_REJECTED`] (then error) on a
/// version we cannot speak.
pub fn server_handshake<S: Read + Write>(stream: &mut S) -> Result<(), WireError> {
    let mut hello = [0u8; 6];
    stream.read_exact(&mut hello).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::TruncatedFrame
        } else {
            WireError::Io(e)
        }
    })?;
    let magic: [u8; 4] = [hello[0], hello[1], hello[2], hello[3]];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let theirs = u16::from_be_bytes([hello[4], hello[5]]);
    let mut echo = [0u8; 6];
    echo[..4].copy_from_slice(&MAGIC);
    if theirs != VERSION {
        echo[4..].copy_from_slice(&VERSION_REJECTED.to_be_bytes());
        let _ = stream.write_all(&echo);
        let _ = stream.flush();
        return Err(WireError::VersionMismatch { theirs });
    }
    echo[4..].copy_from_slice(&VERSION.to_be_bytes());
    stream.write_all(&echo)?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut wire = Vec::new();
        let n = write_frame(&mut wire, FrameType::Query, b"hello").unwrap();
        assert_eq!(n, FRAME_HEADER_BYTES + 5);
        let mut fr = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        let frame = fr
            .read_frame_blocking(&mut Cursor::new(wire))
            .unwrap()
            .unwrap();
        assert_eq!(frame.ty, FrameType::Query);
        assert_eq!(frame.payload, b"hello");
        assert_eq!(frame.wire_bytes, n);
    }

    #[test]
    fn two_frames_in_one_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Stats, b"").unwrap();
        write_frame(&mut wire, FrameType::Error, &[2]).unwrap();
        let mut cur = Cursor::new(wire);
        let mut fr = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        assert_eq!(
            fr.read_frame_blocking(&mut cur).unwrap().unwrap().ty,
            FrameType::Stats
        );
        let second = fr.read_frame_blocking(&mut cur).unwrap().unwrap();
        assert_eq!(second.ty, FrameType::Error);
        assert_eq!(second.payload, vec![2]);
        assert!(fr.read_frame_blocking(&mut cur).unwrap().is_none());
    }

    #[test]
    fn dist_frame_types_round_trip() {
        for ty in [
            FrameType::Scatter,
            FrameType::Semijoin,
            FrameType::Fragment,
            FrameType::ScatterAck,
            FrameType::SemijoinAck,
            FrameType::Gather,
            FrameType::Mutate,
            FrameType::MutateReply,
        ] {
            assert_eq!(FrameType::from_u8(ty as u8), Some(ty));
            let mut wire = Vec::new();
            write_frame(&mut wire, ty, b"x").unwrap();
            let mut fr = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
            let frame = fr
                .read_frame_blocking(&mut Cursor::new(wire))
                .unwrap()
                .unwrap();
            assert_eq!(frame.ty, ty);
            assert_eq!(frame.payload, b"x");
        }
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut wire = vec![FrameType::Query as u8];
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut fr = FrameReader::new(1024);
        assert!(matches!(
            fr.read_frame_blocking(&mut Cursor::new(wire)),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn unknown_type_and_truncation_are_typed_errors() {
        let mut fr = FrameReader::new(1024);
        let wire = vec![0xEEu8, 0, 0, 0, 0];
        assert!(matches!(
            fr.read_frame_blocking(&mut Cursor::new(wire)),
            Err(WireError::UnknownFrameType(0xEE))
        ));
        let mut fr = FrameReader::new(1024);
        let mut wire = vec![FrameType::Query as u8];
        wire.extend_from_slice(&8u32.to_be_bytes());
        wire.extend_from_slice(b"abc"); // promises 8, delivers 3
        assert!(matches!(
            fr.read_frame_blocking(&mut Cursor::new(wire)),
            Err(WireError::TruncatedFrame)
        ));
    }

    #[test]
    fn handshake_agrees_over_a_pipe() {
        // Emulate the two directions with separate buffers.
        struct Duplex {
            incoming: Cursor<Vec<u8>>,
            outgoing: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.incoming.read(buf)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.outgoing.write(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        // Client writes its hello...
        let mut client = Duplex {
            incoming: Cursor::new(Vec::new()),
            outgoing: Vec::new(),
        };
        let mut hello = [0u8; 6];
        hello[..4].copy_from_slice(&MAGIC);
        hello[4..].copy_from_slice(&VERSION.to_be_bytes());
        // ...the server consumes it and echoes...
        let mut server = Duplex {
            incoming: Cursor::new(hello.to_vec()),
            outgoing: Vec::new(),
        };
        server_handshake(&mut server).unwrap();
        // ...and the client accepts the echo.
        client.incoming = Cursor::new(server.outgoing.clone());
        client_handshake(&mut client).unwrap();
    }

    #[test]
    fn server_rejects_bad_magic_and_version() {
        let mut bad_magic = Cursor::new(b"NOPE\x00\x01".to_vec());
        assert!(matches!(
            server_handshake(&mut bad_magic),
            Err(WireError::BadMagic(_))
        ));
        let mut hello = MAGIC.to_vec();
        hello.extend_from_slice(&99u16.to_be_bytes());
        let mut bad_version = Cursor::new(hello);
        assert!(matches!(
            server_handshake(&mut bad_version),
            Err(WireError::VersionMismatch { theirs: 99 })
        ));
    }

    #[test]
    fn error_codes_round_trip_and_classify() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::Shed,
            ErrorCode::DeadlineExceeded,
            ErrorCode::ShuttingDown,
            ErrorCode::QueryFailed,
            ErrorCode::UnsupportedVersion,
            ErrorCode::FrameTooLarge,
            ErrorCode::Internal,
            ErrorCode::Cancelled,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert!(ErrorCode::Shed.is_retryable());
        assert!(ErrorCode::ShuttingDown.is_retryable());
        assert!(!ErrorCode::Malformed.is_retryable());
        assert!(
            !ErrorCode::Cancelled.is_retryable(),
            "a cancellation is deliberate, never retried"
        );
    }

    #[test]
    fn health_frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Health, b"").unwrap();
        write_frame(&mut wire, FrameType::HealthReply, b"{}").unwrap();
        let mut cur = Cursor::new(wire);
        let mut fr = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        let probe = fr.read_frame_blocking(&mut cur).unwrap().unwrap();
        assert_eq!(probe.ty, FrameType::Health);
        assert!(probe.payload.is_empty());
        let reply = fr.read_frame_blocking(&mut cur).unwrap().unwrap();
        assert_eq!(reply.ty, FrameType::HealthReply);
        assert_eq!(reply.payload, b"{}");
    }

    #[test]
    fn cancel_frame_round_trips() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Cancel, b"").unwrap();
        let mut fr = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        let frame = fr
            .read_frame_blocking(&mut Cursor::new(wire))
            .unwrap()
            .unwrap();
        assert_eq!(frame.ty, FrameType::Cancel);
        assert!(frame.payload.is_empty());
    }
}
