//! # fj-net
//!
//! The network boundary of the filterjoin engine: a std-only TCP query
//! server fronting [`fj_runtime::QueryService`], plus a blocking
//! client, speaking a versioned length-prefixed binary protocol.
//!
//! * [`wire`] — magic + version handshake, `[type][len][payload]`
//!   frames, typed [`ErrorCode`]s (SHED, DEADLINE, SHUTTING_DOWN, …);
//! * [`codec`] — hand-rolled (serde-free) encoding of values,
//!   expressions, [`fj_algebra::JoinQuery`], optimizer-config
//!   overrides, and result rows; total decoders — adversarial bytes
//!   produce typed errors, never panics;
//! * [`server`] — accept loop + per-connection handler threads with a
//!   connection cap, per-request deadlines that **cancel** the query
//!   server-side on expiry, mid-query CANCEL frames tearing execution
//!   down, load shedding at the edge (`try_submit` → retryable SHED),
//!   graceful drain, and a STATS request + periodic JSON log line over
//!   server counters;
//! * [`client`] — one blocking connection per [`Client`], with
//!   [`NetError::is_retryable`] marking shed/drain replies, a
//!   [`Canceller`] handle to abort an in-flight query from another
//!   thread, and [`Client::query_with_retry`] — bounded retries with
//!   exponential backoff and decorrelated jitter.
//!
//! ```
//! use fj_algebra::fixtures::{paper_catalog, paper_query};
//! use fj_net::{Client, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", paper_catalog(), ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let reply = client.query(&paper_query()).unwrap();
//! assert_eq!(reply.rows.len(), 2);
//! server.shutdown(); // drains in-flight queries, then closes
//! ```

pub mod client;
pub mod codec;
pub mod server;
pub mod wire;

pub use client::{Canceller, Client, NetError, QueryOptions, RetryBudget, RetryPolicy, WireBytes};
pub use codec::{
    CodecError, FragmentRequest, GatherReply, HealthSnapshot, HealthStatus, KeyFilter,
    MutationReply, MutationRequest, QueryReply, QueryRequest, ScatterAck, ScatterRequest,
    SemijoinAck, SemijoinRequest,
};
pub use fj_storage::Mutation;
pub use fj_trace::QueryTrace;
pub use server::{Server, ServerConfig, ServerStats};
pub use wire::{ErrorCode, FrameType, WireError, VERSION};
