//! The TCP query server: an accept loop feeding per-connection handler
//! threads that decode framed requests, run them through
//! [`fj_runtime::QueryService`] admission control, and reply with
//! results or typed errors.
//!
//! Operational behaviour (see `DESIGN.md`, "Network service & wire
//! protocol"):
//!
//! * **Load shedding** — `try_submit` maps a full submission queue to
//!   a retryable [`ErrorCode::Shed`] reply instead of blocking the
//!   connection handler, and the connection cap sheds the same way at
//!   accept time;
//! * **Deadlines** — a request's `deadline_millis` is measured from the
//!   instant the request frame was decoded; expiry **tears the query
//!   down**: the handler trips the query's interrupt with
//!   [`fj_runtime::InterruptReason::Deadline`], the worker stops within
//!   a bounded number of tuples, and the client gets
//!   [`ErrorCode::DeadlineExceeded`];
//! * **Cancellation** — a [`FrameType::Cancel`] frame received while a
//!   query is in flight trips its interrupt with
//!   [`fj_runtime::InterruptReason::Cancelled`]; the reply is an
//!   [`ErrorCode::Cancelled`] error (or the result, if the query won
//!   the race). A stale CANCEL between requests is a no-op;
//! * **Graceful drain** — [`Server::shutdown`] stops the accept loop,
//!   lets every handler finish the request it is serving (replies
//!   included), then closes the worker pool. Accepted work is never
//!   dropped; connections idling between requests are closed.

use crate::codec::{self, HealthSnapshot, HealthStatus};
use crate::wire::{self, ErrorCode, Frame, FrameReader, FrameType, WireError};
use fj_algebra::Catalog;
use fj_optimizer::OptimizerConfig;
use fj_runtime::{InterruptReason, QueryService, RuntimeError, ServiceConfig};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent connections accepted before shedding at the edge.
    pub max_connections: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame_bytes: u32,
    /// Emit a JSON stats line to stderr this often (`None` = never).
    pub stats_log_every: Option<Duration>,
    /// How long a handler mid-request-frame at shutdown may keep
    /// reading before its connection is dropped.
    pub drain_grace: Duration,
    /// The query-service pool fronted by this server.
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_frame_bytes: wire::DEFAULT_MAX_FRAME_BYTES,
            stats_log_every: None,
            drain_grace: Duration::from_secs(2),
            service: ServiceConfig::default(),
        }
    }
}

/// Live server-side counters (monotonic except `connections_active`).
#[derive(Debug, Default)]
struct Counters {
    connections_total: AtomicU64,
    connections_active: AtomicUsize,
    connections_shed: AtomicU64,
    requests: AtomicU64,
    results: AtomicU64,
    sheds: AtomicU64,
    deadline_hits: AtomicU64,
    errors_sent: AtomicU64,
    health_probes: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

/// One observable snapshot of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted since start (including later-shed ones).
    pub connections_total: u64,
    /// Connections currently open.
    pub connections_active: usize,
    /// Connections refused by the connection cap.
    pub connections_shed: u64,
    /// QUERY requests decoded.
    pub requests: u64,
    /// RESULT frames sent.
    pub results: u64,
    /// QUERY requests refused with [`ErrorCode::Shed`] (queue full).
    pub sheds: u64,
    /// QUERY requests that missed their deadline.
    pub deadline_hits: u64,
    /// ERROR frames sent (all codes).
    pub errors_sent: u64,
    /// HEALTH probes answered.
    pub health_probes: u64,
    /// Bytes received (frames after handshake).
    pub bytes_in: u64,
    /// Bytes sent (frames after handshake).
    pub bytes_out: u64,
}

struct Shared {
    service: QueryService,
    default_config: OptimizerConfig,
    counters: Counters,
    /// Soft drain: refuse new queries (typed, retryable), keep serving
    /// HEALTH/STATS and finish accepted work. Connections stay open.
    draining: AtomicBool,
    /// Full stop: accept loop exits, handlers close between requests.
    shutting_down: AtomicBool,
    /// Hard kill: handlers drop connections immediately — mid-frame,
    /// mid-query — without replies, and tear their queries down. Models
    /// a crashed replica for the cluster chaos harness.
    aborting: AtomicBool,
    max_frame_bytes: u32,
    drain_grace: Duration,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let c = &self.counters;
        ServerStats {
            connections_total: c.connections_total.load(Ordering::Relaxed),
            connections_active: c.connections_active.load(Ordering::Relaxed),
            connections_shed: c.connections_shed.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            results: c.results.load(Ordering::Relaxed),
            sheds: c.sheds.load(Ordering::Relaxed),
            deadline_hits: c.deadline_hits.load(Ordering::Relaxed),
            errors_sent: c.errors_sent.load(Ordering::Relaxed),
            health_probes: c.health_probes.load(Ordering::Relaxed),
            bytes_in: c.bytes_in.load(Ordering::Relaxed),
            bytes_out: c.bytes_out.load(Ordering::Relaxed),
        }
    }

    /// Whether new QUERY frames are refused with SHUTTING_DOWN.
    fn refusing_queries(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || self.shutting_down.load(Ordering::SeqCst)
    }

    /// The HEALTH reply body: drain state, pool strength, and queue
    /// pressure, classified for the replica router.
    fn health(&self) -> HealthSnapshot {
        let h = self.service.health();
        let status = if self.refusing_queries() {
            HealthStatus::Draining
        } else if h.workers_replaced > 0 || h.saturated() {
            HealthStatus::Degraded
        } else {
            HealthStatus::Ready
        };
        HealthSnapshot {
            status,
            workers: h.workers as u64,
            workers_replaced: h.workers_replaced,
            queued: h.queued as u64,
            in_flight: h.in_flight as u64,
            queue_capacity: h.queue_capacity as u64,
            connections_active: self.counters.connections_active.load(Ordering::Relaxed) as u64,
            pool_hits: h.pool_hits,
            pool_misses: h.pool_misses,
            pool_evictions: h.pool_evictions,
            wal_fsyncs: h.wal_fsyncs,
            fragments_served: h.fragments_served,
            semijoin_sets_shipped: h.semijoin_sets_shipped,
            bytes_scattered: h.bytes_scattered,
            bytes_gathered: h.bytes_gathered,
            mutations_applied: h.mutations_applied,
            wal_deltas: h.wal_deltas,
            dirty_pages: h.dirty_pages,
            checkpoints: h.checkpoints,
            spills: h.spills,
            spill_partitions: h.spill_partitions,
            spill_bytes_written: h.spill_bytes_written,
            spill_bytes_read: h.spill_bytes_read,
            peak_temp_bytes: h.peak_temp_bytes,
        }
    }

    /// Server counters + runtime metrics as one stable-key JSON line —
    /// the STATS reply body and the periodic log line.
    fn stats_json(&self) -> String {
        let s = self.stats();
        format!(
            concat!(
                "{{\"state\":\"{}\",\"connections_total\":{},\"connections_active\":{},",
                "\"connections_shed\":{},\"requests\":{},\"results\":{},",
                "\"sheds\":{},\"deadline_hits\":{},\"errors_sent\":{},",
                "\"health_probes\":{},",
                "\"bytes_in\":{},\"bytes_out\":{},\"runtime\":{}}}"
            ),
            self.health().status,
            s.connections_total,
            s.connections_active,
            s.connections_shed,
            s.requests,
            s.results,
            s.sheds,
            s.deadline_hits,
            s.errors_sent,
            s.health_probes,
            s.bytes_in,
            s.bytes_out,
            self.service.metrics().to_json(),
        )
    }
}

/// The TCP query server; see the module docs.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    logger: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("stats", &self.shared.stats())
            .finish()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), starts the
    /// query service over `catalog`, and begins accepting connections.
    ///
    /// The service config is validated strictly — a zero-sized knob is
    /// an error here, not a clamp: a network server with a silently
    /// resized queue would lie to its operators.
    pub fn bind(
        addr: impl ToSocketAddrs,
        catalog: Catalog,
        config: ServerConfig,
    ) -> io::Result<Server> {
        config
            .service
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        if config.max_connections == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "max_connections must be ≥ 1",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            service: QueryService::start(catalog, config.service.clone()),
            default_config: config.service.optimizer,
            counters: Counters::default(),
            draining: AtomicBool::new(false),
            shutting_down: AtomicBool::new(false),
            aborting: AtomicBool::new(false),
            max_frame_bytes: config.max_frame_bytes,
            drain_grace: config.drain_grace,
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            let max_conns = config.max_connections;
            std::thread::Builder::new()
                .name("fj-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &handlers, max_conns))
                .expect("spawn fj-net accept thread")
        };

        let logger = config.stats_log_every.map(|every| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fj-net-stats".into())
                .spawn(move || stats_logger_loop(&shared, every))
                .expect("spawn fj-net stats thread")
        });

        Ok(Server {
            shared,
            local_addr,
            accept: Some(accept),
            logger: Some(logger).flatten(),
            handlers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the server-side counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// The combined server + runtime stats JSON line (same body a
    /// STATS request returns).
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// Live metrics of the fronted query service.
    pub fn metrics(&self) -> fj_runtime::RuntimeMetrics {
        self.shared.service.metrics()
    }

    /// The server's current health report (what a HEALTH frame returns).
    pub fn health(&self) -> HealthSnapshot {
        self.shared.health()
    }

    /// What recovery found when this server started from a disk-backed
    /// data directory; `None` for the in-memory storage mode.
    pub fn recovery_report(&self) -> Option<fj_runtime::RecoveryReport> {
        self.shared.service.recovery_report()
    }

    /// Store counters of the fronted service (all zero in memory mode).
    pub fn store_stats(&self) -> fj_runtime::StoreStats {
        self.shared.service.store_stats()
    }

    /// Runs one fuzzy checkpoint on the fronted store (a no-op in
    /// memory mode): dirty pages flush, the manifest is published, and
    /// the WAL prefix is truncated — all without blocking concurrent
    /// queries, loads, or mutations.
    pub fn checkpoint(&self) -> Result<(), fj_runtime::RuntimeError> {
        self.shared.service.checkpoint()
    }

    /// Begins a **soft drain**: new QUERY frames are refused with a
    /// typed, retryable [`ErrorCode::ShuttingDown`] so clients fail
    /// over, while queries already accepted finish with full replies.
    /// Unlike [`Server::shutdown`], the listener stays up and
    /// HEALTH/STATS requests keep being served (reporting `draining`),
    /// so a replica router can tell a draining replica from a dead one.
    /// Irreversible; call [`Server::shutdown`] to finish the teardown.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether [`Server::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// **Hard kill**, modelling a crashed replica: every connection is
    /// dropped immediately — mid-frame, mid-query, no replies — and
    /// in-flight queries are torn down via their interrupts. Clients
    /// observe transport errors, exactly as they would against a
    /// process that died. The worker pool is still joined before this
    /// returns so the test harness leaks nothing.
    pub fn abort(mut self) {
        self.shared.aborting.store(true, Ordering::SeqCst);
        self.stop();
    }

    /// Graceful drain: stop accepting, finish every in-flight request
    /// (replies included), then stop the worker pool. Idempotent with
    /// respect to `Drop`.
    pub fn shutdown(mut self) {
        self.stop();
        // Dropping `self` drops the last `Arc<Shared>`, which shuts the
        // QueryService down (close queue + join workers). The queue is
        // already empty: every submitted request had a handler waiting
        // on its ticket, and all handlers have been joined.
    }

    fn stop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.logger.take() {
            let _ = t.join();
        }
        let drained: Vec<JoinHandle<()>> = {
            let mut guard = self.handlers.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for t in drained {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    max_conns: usize,
) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let c = &shared.counters;
                c.connections_total.fetch_add(1, Ordering::Relaxed);
                let active = c.connections_active.fetch_add(1, Ordering::Relaxed);
                let over_cap = active >= max_conns;
                if over_cap {
                    c.connections_shed.fetch_add(1, Ordering::Relaxed);
                }
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("fj-net-conn".into())
                    .spawn(move || {
                        handle_connection(stream, &conn_shared, over_cap);
                        conn_shared
                            .counters
                            .connections_active
                            .fetch_sub(1, Ordering::Relaxed);
                    });
                match spawned {
                    Ok(handle) => {
                        let mut guard = handlers.lock().unwrap_or_else(|e| e.into_inner());
                        // Reap finished handlers so long-lived servers
                        // don't accumulate handles.
                        guard.retain(|h| !h.is_finished());
                        guard.push(handle);
                    }
                    Err(_) => {
                        // Spawn failure: undo the active count; the
                        // stream drops (connection refused).
                        shared
                            .counters
                            .connections_active
                            .fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn stats_logger_loop(shared: &Shared, every: Duration) {
    let mut last = Instant::now();
    while !shared.shutting_down.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50).min(every));
        if last.elapsed() >= every {
            eprintln!("fj-net stats {}", shared.stats_json());
            last = Instant::now();
        }
    }
}

/// Sends one frame, charging the byte counter; returns false when the
/// peer is gone (handler should close).
fn send_frame(stream: &mut TcpStream, shared: &Shared, ty: FrameType, payload: &[u8]) -> bool {
    match wire::write_frame(stream, ty, payload) {
        Ok(n) => {
            shared
                .counters
                .bytes_out
                .fetch_add(n as u64, Ordering::Relaxed);
            true
        }
        Err(_) => false,
    }
}

fn send_error(stream: &mut TcpStream, shared: &Shared, code: ErrorCode, message: &str) -> bool {
    shared.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
    if code == ErrorCode::Shed {
        shared.counters.sheds.fetch_add(1, Ordering::Relaxed);
    }
    if code == ErrorCode::DeadlineExceeded {
        shared
            .counters
            .deadline_hits
            .fetch_add(1, Ordering::Relaxed);
    }
    let payload = codec::encode_error(code, message);
    send_frame(stream, shared, FrameType::Error, &payload)
}

fn handle_connection(mut stream: TcpStream, shared: &Shared, over_cap: bool) {
    let _ = stream.set_nodelay(true);
    // Generous handshake window; a silent peer cannot pin the handler.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    if wire::server_handshake(&mut stream).is_err() {
        return;
    }
    if over_cap {
        send_error(
            &mut stream,
            shared,
            ErrorCode::Shed,
            "connection limit reached; retry later",
        );
        return;
    }
    // Short poll timeout so the handler notices a drain promptly.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));

    let mut reader = FrameReader::new(shared.max_frame_bytes);
    let mut drain_started: Option<Instant> = None;
    loop {
        let polled = reader.read_frame(&mut stream, |mid_frame| {
            if shared.aborting.load(Ordering::SeqCst) {
                return true; // hard kill: drop the connection as-is
            }
            if !shared.shutting_down.load(Ordering::SeqCst) {
                return false;
            }
            if !mid_frame {
                return true;
            }
            // Mid-frame at drain time: the request is partially on the
            // wire, so grant a grace window to finish receiving it.
            let started = *drain_started.get_or_insert_with(Instant::now);
            started.elapsed() >= shared.drain_grace
        });
        let frame = match polled {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean close or drain between frames
            Err(WireError::FrameTooLarge { len, max }) => {
                send_error(
                    &mut stream,
                    shared,
                    ErrorCode::FrameTooLarge,
                    &format!("frame of {len} bytes exceeds cap of {max}"),
                );
                return;
            }
            Err(WireError::UnknownFrameType(b)) => {
                send_error(
                    &mut stream,
                    shared,
                    ErrorCode::Malformed,
                    &format!("unknown frame type 0x{b:02x}"),
                );
                return;
            }
            Err(_) => return, // socket error or truncation: just close
        };
        shared
            .counters
            .bytes_in
            .fetch_add(frame.wire_bytes as u64, Ordering::Relaxed);

        match frame.ty {
            FrameType::Query => {
                if !handle_query(&mut stream, shared, &frame, &mut reader) {
                    return;
                }
            }
            // A CANCEL with no query in flight lost the race against
            // the reply; it is a harmless no-op.
            FrameType::Cancel => {}
            FrameType::Health => {
                shared
                    .counters
                    .health_probes
                    .fetch_add(1, Ordering::Relaxed);
                let payload = match codec::encode_health_reply(&shared.health()) {
                    Ok(p) => p,
                    Err(_) => return,
                };
                if !send_frame(&mut stream, shared, FrameType::HealthReply, &payload) {
                    return;
                }
            }
            FrameType::Stats => {
                let json = shared.stats_json();
                let payload = match codec::encode_stats_reply(&json) {
                    Ok(p) => p,
                    Err(_) => return,
                };
                if !send_frame(&mut stream, shared, FrameType::StatsReply, &payload) {
                    return;
                }
            }
            FrameType::Scatter => {
                if !handle_scatter(&mut stream, shared, &frame) {
                    return;
                }
            }
            FrameType::Semijoin => {
                if !handle_semijoin(&mut stream, shared, &frame) {
                    return;
                }
            }
            FrameType::Fragment => {
                if !handle_fragment(&mut stream, shared, &frame, &mut reader) {
                    return;
                }
            }
            FrameType::Mutate => {
                if !handle_mutate(&mut stream, shared, &frame, &mut reader) {
                    return;
                }
            }
            FrameType::Result
            | FrameType::StatsReply
            | FrameType::HealthReply
            | FrameType::TraceReply
            | FrameType::ScatterAck
            | FrameType::SemijoinAck
            | FrameType::Gather
            | FrameType::MutateReply
            | FrameType::Error => {
                send_error(
                    &mut stream,
                    shared,
                    ErrorCode::Malformed,
                    "response frame sent to server",
                );
                return;
            }
        }
    }
}

/// Serves one QUERY frame; returns false when the connection should
/// close. While the query runs, the handler alternates polling the
/// ticket with short reads on the socket, so a CANCEL frame tears the
/// query down mid-flight and a deadline expiry cancels instead of
/// leaking the worker.
fn handle_query(
    stream: &mut TcpStream,
    shared: &Shared,
    frame: &Frame,
    reader: &mut FrameReader,
) -> bool {
    let received = Instant::now();
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    let request = match codec::decode_request(&frame.payload) {
        Ok(req) => req,
        Err(e) => {
            return send_error(stream, shared, ErrorCode::Malformed, &e.to_string());
        }
    };
    let config = request.config.unwrap_or(shared.default_config);
    let deadline = match request.deadline_millis {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };

    // Soft drain: accepted work keeps running, but nothing new is
    // admitted — a typed, retryable refusal sends clients elsewhere.
    if shared.refusing_queries() {
        return send_error(stream, shared, ErrorCode::ShuttingDown, "server draining");
    }

    let want_trace = request.want_trace;
    let ticket = match shared
        .service
        .try_submit_with_options(request.query, config, want_trace)
    {
        Ok(t) => t,
        Err(RuntimeError::QueueFull) => {
            return send_error(
                stream,
                shared,
                ErrorCode::Shed,
                "submission queue full; retry with backoff",
            );
        }
        Err(RuntimeError::ShuttingDown) => {
            return send_error(stream, shared, ErrorCode::ShuttingDown, "server draining");
        }
        Err(e) => {
            return send_error(stream, shared, ErrorCode::Internal, &e.to_string());
        }
    };

    // While the query is in flight the handler alternates ticket polls
    // with socket reads; a short read timeout keeps each read pass from
    // delaying result delivery by more than ~2ms.
    enum Waited {
        Reply(Box<Result<fj_core::QueryResult, RuntimeError>>),
        DeadlineExpired,
        ProtocolViolation,
        PeerGone,
    }
    let interrupt = ticket.interrupt_handle();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(2)));
    let waited = loop {
        if shared.aborting.load(Ordering::SeqCst) {
            // Hard kill mid-query: tear the query down and vanish
            // without a reply, as a crashed process would.
            interrupt.trip(InterruptReason::Cancelled);
            return false;
        }
        if let Some(reply) = ticket.poll(Duration::from_millis(2)) {
            break Waited::Reply(Box::new(reply));
        }
        if let Some(d) = deadline {
            if received.elapsed() >= d {
                break Waited::DeadlineExpired;
            }
        }
        // One bounded read pass looking for a mid-query CANCEL frame.
        let mut passes = 0;
        match reader.read_frame(stream, |_| {
            passes += 1;
            passes > 1
        }) {
            Ok(Some(f)) if f.ty == FrameType::Cancel => {
                shared
                    .counters
                    .bytes_in
                    .fetch_add(f.wire_bytes as u64, Ordering::Relaxed);
                interrupt.trip(InterruptReason::Cancelled);
            }
            Ok(Some(_)) => break Waited::ProtocolViolation,
            Ok(None) => {} // nothing (or only a partial frame) buffered
            Err(_) => break Waited::PeerGone,
        }
    };
    // Back to the between-requests poll cadence.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let outcome = match waited {
        Waited::Reply(reply) => *reply,
        Waited::DeadlineExpired => {
            // Expiry cancels: the worker stops within a bounded number
            // of tuples (its Interrupted reply goes to the dropped
            // ticket), and the client hears immediately.
            interrupt.trip(InterruptReason::Deadline);
            return send_error(
                stream,
                shared,
                ErrorCode::DeadlineExceeded,
                "deadline expired; query cancelled",
            );
        }
        Waited::ProtocolViolation => {
            // Any other frame while a query is in flight is a protocol
            // violation: tear the query down and close.
            interrupt.trip(InterruptReason::Cancelled);
            send_error(
                stream,
                shared,
                ErrorCode::Malformed,
                "only CANCEL may be sent while a query is in flight",
            );
            return false;
        }
        Waited::PeerGone => {
            // Peer vanished mid-query: tear the query down too.
            interrupt.trip(InterruptReason::Cancelled);
            return false;
        }
    };
    match outcome {
        Ok(result) => match codec::encode_reply(&result) {
            Ok(payload) => {
                shared.counters.results.fetch_add(1, Ordering::Relaxed);
                if !send_frame(stream, shared, FrameType::Result, &payload) {
                    return false;
                }
                // The trace rides in its own frame after the RESULT so
                // the result encoding stays byte-comparable across
                // replicas whether or not tracing was requested.
                match (want_trace, &result.trace) {
                    (true, Some(trace)) => match codec::encode_trace_reply(trace) {
                        Ok(tp) => send_frame(stream, shared, FrameType::TraceReply, &tp),
                        Err(e) => send_error(stream, shared, ErrorCode::Internal, &e.to_string()),
                    },
                    // A client that asked for a trace is waiting on a
                    // second frame; never leave it hanging.
                    (true, None) => {
                        send_error(stream, shared, ErrorCode::Internal, "trace unavailable")
                    }
                    (false, _) => true,
                }
            }
            Err(e) => send_error(stream, shared, ErrorCode::Internal, &e.to_string()),
        },
        Err(RuntimeError::Interrupted(InterruptReason::Cancelled)) => {
            send_error(stream, shared, ErrorCode::Cancelled, "query cancelled")
        }
        Err(RuntimeError::Interrupted(InterruptReason::Deadline))
        | Err(RuntimeError::DeadlineExceeded) => send_error(
            stream,
            shared,
            ErrorCode::DeadlineExceeded,
            "deadline expired; query cancelled",
        ),
        Err(RuntimeError::Interrupted(reason)) => send_error(
            stream,
            shared,
            ErrorCode::QueryFailed,
            &format!("query interrupted: {reason}"),
        ),
        Err(RuntimeError::Query(e)) => {
            send_error(stream, shared, ErrorCode::QueryFailed, &e.to_string())
        }
        Err(RuntimeError::WorkerPanicked(msg)) => send_error(
            stream,
            shared,
            ErrorCode::Internal,
            &format!("worker panicked: {msg}"),
        ),
        Err(RuntimeError::ShuttingDown) => {
            send_error(stream, shared, ErrorCode::ShuttingDown, "server draining")
        }
        Err(e) => send_error(stream, shared, ErrorCode::Internal, &e.to_string()),
    }
}

/// Serves one SCATTER frame: installs a partition table into the
/// shard's catalog (epoch bump invalidates the plan cache). Refused
/// with a retryable SHUTTING_DOWN while draining, so a coordinator
/// fails over to the partition's replica shard. Returns false when the
/// connection should close.
fn handle_scatter(stream: &mut TcpStream, shared: &Shared, frame: &Frame) -> bool {
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    if shared.refusing_queries() {
        return send_error(stream, shared, ErrorCode::ShuttingDown, "server draining");
    }
    let req = match codec::decode_scatter(&frame.payload) {
        Ok(r) => r,
        Err(e) => return send_error(stream, shared, ErrorCode::Malformed, &e.to_string()),
    };
    let bytes_stored: u64 = req.rows.iter().map(|t| t.wire_width() as u64).sum();
    let rows_stored = req.rows.len() as u64;
    let table = match fj_storage::Table::new(&req.table, (*req.schema).clone(), req.rows) {
        Ok(t) => t,
        Err(e) => {
            return send_error(
                stream,
                shared,
                ErrorCode::QueryFailed,
                &format!("scatter rejected: {e}"),
            )
        }
    };
    let mut catalog = (*shared.service.catalog()).clone();
    catalog.add_table(table.into_ref());
    if let Err(e) = shared.service.try_install_catalog(catalog) {
        return send_error(stream, shared, ErrorCode::Internal, &e.to_string());
    }
    shared
        .service
        .metrics_recorder()
        .record_bytes_scattered(frame.payload.len() as u64);
    let ack = codec::ScatterAck {
        rows_stored,
        bytes_stored,
    };
    match codec::encode_scatter_ack(&ack) {
        Ok(payload) => send_frame(stream, shared, FrameType::ScatterAck, &payload),
        Err(e) => send_error(stream, shared, ErrorCode::Internal, &e.to_string()),
    }
}

/// Serves one SEMIJOIN frame: filters a shard-resident table by the
/// shipped key / Bloom sets and returns surviving rows and/or distinct
/// keys. Stateless — the shard's stored partition is never mutated, so
/// a coordinator can replay any step against a replica after failover.
/// Returns false when the connection should close.
fn handle_semijoin(stream: &mut TcpStream, shared: &Shared, frame: &Frame) -> bool {
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    if shared.refusing_queries() {
        return send_error(stream, shared, ErrorCode::ShuttingDown, "server draining");
    }
    let req = match codec::decode_semijoin(&frame.payload) {
        Ok(r) => r,
        Err(e) => return send_error(stream, shared, ErrorCode::Malformed, &e.to_string()),
    };
    let catalog = shared.service.catalog();
    let table = match catalog.table(&req.table) {
        Ok(t) => t,
        Err(e) => return send_error(stream, shared, ErrorCode::QueryFailed, &e.to_string()),
    };
    let schema = table.schema();
    let mut filter_cols = Vec::with_capacity(req.filters.len());
    for (name, filter) in &req.filters {
        match schema.resolve(name) {
            Ok(i) => filter_cols.push((i, filter)),
            Err(e) => return send_error(stream, shared, ErrorCode::QueryFailed, &e.to_string()),
        }
    }
    let keys_col = match &req.keys_of {
        None => None,
        Some(name) => match schema.resolve(name) {
            Ok(i) => Some(i),
            Err(e) => return send_error(stream, shared, ErrorCode::QueryFailed, &e.to_string()),
        },
    };
    let rows_before = table.rows().len() as u64;
    let survivors: Vec<fj_storage::Tuple> = table
        .rows()
        .iter()
        .filter(|row| filter_cols.iter().all(|(i, f)| f.contains(row.value(*i))))
        .cloned()
        .collect();
    let rows_after = survivors.len() as u64;
    let keys = keys_col.map(|i| {
        let distinct: std::collections::BTreeSet<fj_storage::Value> =
            survivors.iter().map(|r| r.value(i).clone()).collect();
        distinct.into_iter().collect::<Vec<_>>()
    });
    let ack = codec::SemijoinAck {
        rows_before,
        rows_after,
        rows: req.want_rows.then(|| (schema.clone(), survivors)),
        keys,
    };
    let recorder = shared.service.metrics_recorder();
    recorder.record_semijoin_sets(req.filters.len() as u64);
    match codec::encode_semijoin_ack(&ack) {
        Ok(payload) => {
            recorder.record_bytes_gathered(payload.len() as u64);
            send_frame(stream, shared, FrameType::SemijoinAck, &payload)
        }
        Err(e) => send_error(stream, shared, ErrorCode::Internal, &e.to_string()),
    }
}

/// Serves one FRAGMENT frame: the fragment query runs through the
/// shard's query service — admission control, the governor, worker
/// panics, and mid-flight CANCEL behave exactly as for QUERY frames —
/// and the partial result returns as a GATHER frame. Returns false
/// when the connection should close.
fn handle_fragment(
    stream: &mut TcpStream,
    shared: &Shared,
    frame: &Frame,
    reader: &mut FrameReader,
) -> bool {
    let received = Instant::now();
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    if shared.refusing_queries() {
        return send_error(stream, shared, ErrorCode::ShuttingDown, "server draining");
    }
    let req = match codec::decode_fragment(&frame.payload) {
        Ok(r) => r,
        Err(e) => return send_error(stream, shared, ErrorCode::Malformed, &e.to_string()),
    };
    let deadline = match req.deadline_millis {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let ticket =
        match shared
            .service
            .try_submit_with_options(req.query, shared.default_config, false)
        {
            Ok(t) => t,
            Err(RuntimeError::QueueFull) => {
                return send_error(
                    stream,
                    shared,
                    ErrorCode::Shed,
                    "submission queue full; retry with backoff",
                );
            }
            Err(RuntimeError::ShuttingDown) => {
                return send_error(stream, shared, ErrorCode::ShuttingDown, "server draining");
            }
            Err(e) => {
                return send_error(stream, shared, ErrorCode::Internal, &e.to_string());
            }
        };

    let interrupt = ticket.interrupt_handle();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(2)));
    enum Waited {
        Reply(Box<Result<fj_core::QueryResult, RuntimeError>>),
        DeadlineExpired,
        ProtocolViolation,
        PeerGone,
    }
    let waited = loop {
        if shared.aborting.load(Ordering::SeqCst) {
            interrupt.trip(InterruptReason::Cancelled);
            return false;
        }
        if let Some(reply) = ticket.poll(Duration::from_millis(2)) {
            break Waited::Reply(Box::new(reply));
        }
        if let Some(d) = deadline {
            if received.elapsed() >= d {
                break Waited::DeadlineExpired;
            }
        }
        let mut passes = 0;
        match reader.read_frame(stream, |_| {
            passes += 1;
            passes > 1
        }) {
            Ok(Some(f)) if f.ty == FrameType::Cancel => {
                shared
                    .counters
                    .bytes_in
                    .fetch_add(f.wire_bytes as u64, Ordering::Relaxed);
                interrupt.trip(InterruptReason::Cancelled);
            }
            Ok(Some(_)) => break Waited::ProtocolViolation,
            Ok(None) => {}
            Err(_) => break Waited::PeerGone,
        }
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let outcome = match waited {
        Waited::Reply(reply) => *reply,
        Waited::DeadlineExpired => {
            interrupt.trip(InterruptReason::Deadline);
            return send_error(
                stream,
                shared,
                ErrorCode::DeadlineExceeded,
                "deadline expired; fragment cancelled",
            );
        }
        Waited::ProtocolViolation => {
            interrupt.trip(InterruptReason::Cancelled);
            send_error(
                stream,
                shared,
                ErrorCode::Malformed,
                "only CANCEL may be sent while a fragment is in flight",
            );
            return false;
        }
        Waited::PeerGone => {
            interrupt.trip(InterruptReason::Cancelled);
            return false;
        }
    };
    match outcome {
        Ok(result) => {
            let reply = codec::GatherReply {
                schema: result.schema,
                rows: result.rows,
                latency_micros: result.latency_micros,
            };
            match codec::encode_gather(&reply) {
                Ok(payload) => {
                    shared.counters.results.fetch_add(1, Ordering::Relaxed);
                    let recorder = shared.service.metrics_recorder();
                    recorder.record_fragment_served();
                    recorder.record_bytes_gathered(payload.len() as u64);
                    send_frame(stream, shared, FrameType::Gather, &payload)
                }
                Err(e) => send_error(stream, shared, ErrorCode::Internal, &e.to_string()),
            }
        }
        Err(RuntimeError::Interrupted(InterruptReason::Cancelled)) => {
            send_error(stream, shared, ErrorCode::Cancelled, "fragment cancelled")
        }
        Err(RuntimeError::Interrupted(InterruptReason::Deadline))
        | Err(RuntimeError::DeadlineExceeded) => send_error(
            stream,
            shared,
            ErrorCode::DeadlineExceeded,
            "deadline expired; fragment cancelled",
        ),
        Err(RuntimeError::Interrupted(reason)) => send_error(
            stream,
            shared,
            ErrorCode::QueryFailed,
            &format!("fragment interrupted: {reason}"),
        ),
        Err(RuntimeError::Query(e)) => {
            send_error(stream, shared, ErrorCode::QueryFailed, &e.to_string())
        }
        Err(RuntimeError::WorkerPanicked(msg)) => send_error(
            stream,
            shared,
            ErrorCode::Internal,
            &format!("worker panicked: {msg}"),
        ),
        Err(RuntimeError::ShuttingDown) => {
            send_error(stream, shared, ErrorCode::ShuttingDown, "server draining")
        }
        Err(e) => send_error(stream, shared, ErrorCode::Internal, &e.to_string()),
    }
}

/// Serves one MUTATE frame: the mutation runs through the service's
/// mutation path — admission control, the governor, and mid-flight
/// CANCEL behave exactly as for QUERY frames. A deadline expiry or
/// CANCEL that wins the race against the WAL commit aborts the
/// mutation with **no state change**; one that loses it gets the
/// committed result. Returns false when the connection should close.
fn handle_mutate(
    stream: &mut TcpStream,
    shared: &Shared,
    frame: &Frame,
    reader: &mut FrameReader,
) -> bool {
    let received = Instant::now();
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    if shared.refusing_queries() {
        return send_error(stream, shared, ErrorCode::ShuttingDown, "server draining");
    }
    let req = match codec::decode_mutation_request(&frame.payload) {
        Ok(r) => r,
        Err(e) => return send_error(stream, shared, ErrorCode::Malformed, &e.to_string()),
    };
    let deadline = match req.deadline_millis {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let ticket = match shared.service.try_submit_mutation(req.mutation) {
        Ok(t) => t,
        Err(RuntimeError::QueueFull) => {
            return send_error(
                stream,
                shared,
                ErrorCode::Shed,
                "submission queue full; retry with backoff",
            );
        }
        Err(RuntimeError::ShuttingDown) => {
            return send_error(stream, shared, ErrorCode::ShuttingDown, "server draining");
        }
        Err(e) => {
            return send_error(stream, shared, ErrorCode::Internal, &e.to_string());
        }
    };

    let interrupt = ticket.interrupt_handle();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(2)));
    enum Waited {
        Reply(Box<Result<fj_runtime::MutationStats, RuntimeError>>),
        DeadlineExpired,
        ProtocolViolation,
        PeerGone,
    }
    let waited = loop {
        if shared.aborting.load(Ordering::SeqCst) {
            // Hard kill mid-mutation: trip the interrupt and vanish.
            // Crash safety does the rest — either the commit fsync
            // already happened (the mutation survives restart) or it
            // did not (no trace of it survives).
            interrupt.trip(InterruptReason::Cancelled);
            return false;
        }
        if let Some(reply) = ticket.poll(Duration::from_millis(2)) {
            break Waited::Reply(Box::new(reply));
        }
        if let Some(d) = deadline {
            if received.elapsed() >= d {
                break Waited::DeadlineExpired;
            }
        }
        let mut passes = 0;
        match reader.read_frame(stream, |_| {
            passes += 1;
            passes > 1
        }) {
            Ok(Some(f)) if f.ty == FrameType::Cancel => {
                shared
                    .counters
                    .bytes_in
                    .fetch_add(f.wire_bytes as u64, Ordering::Relaxed);
                interrupt.trip(InterruptReason::Cancelled);
            }
            Ok(Some(_)) => break Waited::ProtocolViolation,
            Ok(None) => {}
            Err(_) => break Waited::PeerGone,
        }
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let outcome = match waited {
        Waited::Reply(reply) => *reply,
        Waited::DeadlineExpired => {
            interrupt.trip(InterruptReason::Deadline);
            return send_error(
                stream,
                shared,
                ErrorCode::DeadlineExceeded,
                "deadline expired; mutation aborted without state change",
            );
        }
        Waited::ProtocolViolation => {
            interrupt.trip(InterruptReason::Cancelled);
            send_error(
                stream,
                shared,
                ErrorCode::Malformed,
                "only CANCEL may be sent while a mutation is in flight",
            );
            return false;
        }
        Waited::PeerGone => {
            interrupt.trip(InterruptReason::Cancelled);
            return false;
        }
    };
    match outcome {
        Ok(stats) => {
            let reply = codec::MutationReply {
                rows_affected: stats.rows_affected,
                row_count: stats.row_count,
                version: stats.version,
            };
            match codec::encode_mutation_reply(&reply) {
                Ok(payload) => {
                    shared.counters.results.fetch_add(1, Ordering::Relaxed);
                    send_frame(stream, shared, FrameType::MutateReply, &payload)
                }
                Err(e) => send_error(stream, shared, ErrorCode::Internal, &e.to_string()),
            }
        }
        Err(RuntimeError::Interrupted(InterruptReason::Cancelled)) => send_error(
            stream,
            shared,
            ErrorCode::Cancelled,
            "mutation cancelled; no state change",
        ),
        Err(RuntimeError::Interrupted(InterruptReason::Deadline))
        | Err(RuntimeError::DeadlineExceeded) => send_error(
            stream,
            shared,
            ErrorCode::DeadlineExceeded,
            "deadline expired; mutation aborted without state change",
        ),
        Err(RuntimeError::Interrupted(reason)) => send_error(
            stream,
            shared,
            ErrorCode::QueryFailed,
            &format!("mutation interrupted: {reason}"),
        ),
        Err(RuntimeError::Query(e)) => {
            send_error(stream, shared, ErrorCode::QueryFailed, &e.to_string())
        }
        Err(RuntimeError::Storage(msg)) => send_error(
            stream,
            shared,
            ErrorCode::QueryFailed,
            &format!("mutation rejected: {msg}"),
        ),
        Err(RuntimeError::WorkerPanicked(msg)) => send_error(
            stream,
            shared,
            ErrorCode::Internal,
            &format!("worker panicked: {msg}"),
        ),
        Err(RuntimeError::ShuttingDown) => {
            send_error(stream, shared, ErrorCode::ShuttingDown, "server draining")
        }
        Err(e) => send_error(stream, shared, ErrorCode::Internal, &e.to_string()),
    }
}
