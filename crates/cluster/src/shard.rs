//! Shard-aware routing for partitioned distributed execution: which
//! servers hold which hash partitions, and in what order a coordinator
//! should try them.
//!
//! A [`ShardMap`] assigns each partition a *primary* server plus
//! `replication - 1` follower servers (round-robin over the server
//! list), so a coordinator can ride through one server draining
//! mid-query: every request that a draining primary refuses with the
//! retryable SHUTTING_DOWN code is replayed verbatim against the next
//! replica. Shards are stateless after scatter, which makes that replay
//! always safe — any replica of a partition holds identical rows
//! forever.

use std::net::SocketAddr;

/// Assignment of hash partitions to servers, with replication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// `assignments[p]` lists the servers holding partition `p`,
    /// primary first, in failover order.
    assignments: Vec<Vec<SocketAddr>>,
}

impl ShardMap {
    /// Builds a map of `shards` partitions over `servers`, each stored
    /// on `replication` distinct servers (clamped to the server count):
    /// partition `p` lands on `servers[p % n]`, `servers[(p + 1) % n]`,
    /// and so on.
    pub fn new(servers: &[SocketAddr], shards: u32, replication: usize) -> ShardMap {
        let n = servers.len().max(1);
        let replication = replication.clamp(1, servers.len().max(1));
        let assignments = (0..shards as usize)
            .map(|p| {
                (0..replication)
                    .filter_map(|r| servers.get((p + r) % n).copied())
                    .collect()
            })
            .collect();
        ShardMap { assignments }
    }

    /// Number of hash partitions.
    pub fn shards(&self) -> u32 {
        self.assignments.len() as u32
    }

    /// The servers holding partition `p`, primary first. Empty only
    /// when the map was built over an empty server list.
    pub fn replicas(&self, p: u32) -> &[SocketAddr] {
        self.assignments
            .get(p as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Every distinct server in the map, in first-appearance order.
    pub fn servers(&self) -> Vec<SocketAddr> {
        let mut out: Vec<SocketAddr> = Vec::new();
        for replicas in &self.assignments {
            for addr in replicas {
                if !out.contains(addr) {
                    out.push(*addr);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 9000 + i).parse().unwrap())
            .collect()
    }

    #[test]
    fn round_robin_with_replication() {
        let servers = addrs(3);
        let map = ShardMap::new(&servers, 4, 2);
        assert_eq!(map.shards(), 4);
        assert_eq!(map.replicas(0), &[servers[0], servers[1]]);
        assert_eq!(map.replicas(1), &[servers[1], servers[2]]);
        assert_eq!(map.replicas(2), &[servers[2], servers[0]]);
        assert_eq!(map.replicas(3), &[servers[0], servers[1]]);
    }

    #[test]
    fn replication_clamps_to_server_count() {
        let servers = addrs(2);
        let map = ShardMap::new(&servers, 2, 5);
        assert_eq!(map.replicas(0).len(), 2);
        // No server repeats within one partition's replica set.
        assert_ne!(map.replicas(0)[0], map.replicas(0)[1]);
    }

    #[test]
    fn servers_lists_each_once() {
        let servers = addrs(3);
        let map = ShardMap::new(&servers, 9, 2);
        assert_eq!(map.servers(), servers);
    }

    #[test]
    fn out_of_range_partition_is_empty() {
        let map = ShardMap::new(&addrs(2), 2, 1);
        assert!(map.replicas(7).is_empty());
    }
}
