//! # fj-cluster
//!
//! A replica-aware client for a fleet of `fj-net` query servers: the
//! layer that keeps queries succeeding while individual replicas fail,
//! drain, or slow down.
//!
//! * **Health probing** — a background prober polls every replica's
//!   HEALTH frame on a seeded-jitter schedule and classifies it ready /
//!   degraded / draining / dead. Draining replicas answer probes but
//!   refuse queries, so the router stops routing to them *before*
//!   refusals bounce; dead replicas do not answer at all.
//! * **Circuit breakers** — a per-replica three-state breaker
//!   ([`CircuitBreaker`]: closed → open → half-open) stops repeated
//!   attempts against a failing replica between probe rounds.
//! * **Failover with a shared [`RetryBudget`]** — replica-local
//!   failures (transport errors, SHED, SHUTTING_DOWN, INTERNAL) fail
//!   over to the next candidate; every hop withdraws from a shared
//!   token bucket, and a dry bucket surfaces as the typed
//!   [`ClusterError::RetryBudgetExhausted`] rather than a retry storm.
//! * **Hedged requests** — optionally re-issue a query that has not
//!   answered within the observed latency quantile against a second
//!   replica; first reply wins, the loser is cancelled via the CANCEL
//!   frame, or verified byte-identical with [`HedgeConfig::verify`].
//!
//! ```
//! use fj_algebra::fixtures::{paper_catalog, paper_query};
//! use fj_cluster::{ClusterClient, ClusterConfig};
//! use fj_net::{Server, ServerConfig};
//!
//! let servers: Vec<_> = (0..3)
//!     .map(|_| Server::bind("127.0.0.1:0", paper_catalog(), ServerConfig::default()).unwrap())
//!     .collect();
//! let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();
//! let cluster = ClusterClient::connect(&addrs, ClusterConfig::default()).unwrap();
//! let reply = cluster.query(&paper_query()).unwrap();
//! assert_eq!(reply.rows.len(), 2);
//! cluster.shutdown();
//! for s in servers {
//!     s.shutdown();
//! }
//! ```

pub mod breaker;
pub mod client;
pub mod config;
pub mod shard;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use client::{
    CancelToken, ClusterClient, ClusterError, ClusterStats, HedgeOutcome, ReplicaHealth,
    ReplicaStatus, TaggedTrace,
};
pub use config::{ClusterConfig, ClusterConfigError, HedgeConfig};
pub use fj_net::RetryBudget;
pub use shard::ShardMap;
