//! The replica-aware cluster client: routing, failover, and hedging.
//!
//! One [`ClusterClient`] fronts N `fj-net` servers serving the same
//! catalog. A background prober keeps a per-replica health view
//! (ready / degraded / draining / dead) fresh via the HEALTH frame;
//! queries are routed round-robin across the healthiest tier, skipping
//! draining and dead replicas and replicas whose [`CircuitBreaker`] is
//! open. A failed attempt fails over to the next candidate, but every
//! hop must withdraw a token from the shared [`RetryBudget`] — when the
//! budget runs dry the client gives up with the typed
//! [`ClusterError::RetryBudgetExhausted`] instead of amplifying an
//! outage into a retry storm.
//!
//! With [`HedgeConfig::enabled`], a query that has not answered within
//! the observed latency quantile is re-issued against a different
//! replica and the first reply wins; the loser is cancelled over its
//! own connection (via the CANCEL frame), or — with
//! [`HedgeConfig::verify`] — allowed to finish so the two replies can
//! be checked byte-identical modulo per-execution fields.
//!
//! [`HedgeConfig::enabled`]: crate::HedgeConfig
//! [`HedgeConfig::verify`]: crate::HedgeConfig

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::config::{ClusterConfig, ClusterConfigError};
use fj_algebra::JoinQuery;
use fj_net::client::{Canceller, Client, QueryOptions};
use fj_net::{ErrorCode, HealthStatus, NetError, QueryReply, RetryBudget};
use fj_runtime::MetricsRecorder;
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Cluster-level failures — everything a caller can see from
/// [`ClusterClient::query`] beyond a successful reply.
#[derive(Debug)]
pub enum ClusterError {
    /// The configuration was rejected (strict [`ClusterConfig::validate`]).
    Config(ClusterConfigError),
    /// The client was built with an empty replica list.
    NoReplicas,
    /// Every routable replica was tried (or none was routable) and the
    /// query still failed.
    NoHealthyReplica {
        /// Replicas actually attempted.
        attempted: usize,
        /// The error from the last attempt, when any attempt ran.
        last: Option<NetError>,
    },
    /// The shared retry budget ran dry mid-failover: the cluster chose
    /// to stop retrying rather than storm the surviving replicas.
    RetryBudgetExhausted {
        /// The failure that wanted another hop.
        last: NetError,
    },
    /// The caller's [`CancelToken`] fired.
    Cancelled,
    /// Hedge verification found two replicas returning different result
    /// bytes for the same query — a replica divergence, never expected.
    Mismatch {
        /// Replica that answered first.
        winner: SocketAddr,
        /// Replica whose reply disagreed.
        loser: SocketAddr,
    },
    /// A non-failover server error (bad request, query failed,
    /// deadline exceeded, …), passed through typed.
    Net(NetError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Config(e) => write!(f, "{e}"),
            ClusterError::NoReplicas => f.write_str("cluster client needs at least one replica"),
            ClusterError::NoHealthyReplica { attempted, last } => {
                write!(f, "no healthy replica ({attempted} attempted")?;
                match last {
                    Some(e) => write!(f, "; last error: {e})"),
                    None => f.write_str(")"),
                }
            }
            ClusterError::RetryBudgetExhausted { last } => {
                write!(f, "cluster retry budget exhausted; last error: {last}")
            }
            ClusterError::Cancelled => f.write_str("query cancelled"),
            ClusterError::Mismatch { winner, loser } => write!(
                f,
                "replica divergence: {winner} and {loser} returned different result bytes"
            ),
            ClusterError::Net(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ClusterConfigError> for ClusterError {
    fn from(e: ClusterConfigError) -> Self {
        ClusterError::Config(e)
    }
}

/// The prober's view of one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Not probed yet — routable (the first queries race the prober).
    Unknown,
    /// Probe succeeded, server reports ready.
    Ready,
    /// Probe succeeded, server reports degraded (replaced workers or a
    /// saturated queue) — routable, but after ready replicas.
    Degraded,
    /// Server reports draining: it answers probes but refuses queries.
    /// Not routable; distinct from dead so the router stops sending
    /// work *before* the drain refusals would bounce it.
    Draining,
    /// Probe failed (connect/timeout/protocol): presumed crashed.
    Dead,
}

impl ReplicaHealth {
    /// Lower-case name, for JSON/state dumps.
    pub fn as_str(&self) -> &'static str {
        match self {
            ReplicaHealth::Unknown => "unknown",
            ReplicaHealth::Ready => "ready",
            ReplicaHealth::Degraded => "degraded",
            ReplicaHealth::Draining => "draining",
            ReplicaHealth::Dead => "dead",
        }
    }

    /// Routing preference tier; lower routes first. `None` = skip.
    fn rank(self) -> Option<u8> {
        match self {
            ReplicaHealth::Ready => Some(0),
            ReplicaHealth::Unknown => Some(1),
            ReplicaHealth::Degraded => Some(2),
            ReplicaHealth::Draining | ReplicaHealth::Dead => None,
        }
    }
}

/// One replica's address, prober view, and breaker state — the
/// observable routing inputs, surfaced through [`ClusterStats`].
#[derive(Debug, Clone)]
pub struct ReplicaStatus {
    /// The replica's address.
    pub addr: SocketAddr,
    /// Latest probe result.
    pub health: ReplicaHealth,
    /// Circuit-breaker state.
    pub breaker: BreakerState,
}

struct Replica {
    addr: SocketAddr,
    breaker: CircuitBreaker,
    health: Mutex<ReplicaHealth>,
}

#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    failovers: AtomicU64,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
    hedge_mismatches: AtomicU64,
    probes: AtomicU64,
    probe_failures: AtomicU64,
}

/// Counter snapshot plus per-replica status, from
/// [`ClusterClient::stats`].
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Cluster-level queries issued.
    pub queries: u64,
    /// Failover hops (attempt N+1 on a different replica).
    pub failovers: u64,
    /// Hedge attempts launched.
    pub hedges_launched: u64,
    /// Hedge attempts that delivered the winning reply.
    pub hedges_won: u64,
    /// Hedge verifications that found divergent result bytes.
    pub hedge_mismatches: u64,
    /// Health probes sent.
    pub probes: u64,
    /// Health probes that failed (replica presumed dead).
    pub probe_failures: u64,
    /// Circuit-breaker trips, summed over replicas.
    pub breaker_opens: u64,
    /// Whole retry tokens currently available.
    pub budget_available: u64,
    /// Retry tokens withdrawn (retries + failover hops granted).
    pub budget_withdrawals: u64,
    /// Withdrawals refused because the budget was dry.
    pub budget_exhaustions: u64,
    /// Per-replica status, in construction order.
    pub replicas: Vec<ReplicaStatus>,
}

impl ClusterStats {
    /// One-line JSON with a stable key order, matching the style of
    /// `RuntimeMetrics::to_json` / the server STATS reply.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            concat!(
                "{{\"queries\":{},\"failovers\":{},\"hedges_launched\":{},",
                "\"hedges_won\":{},\"hedge_mismatches\":{},\"probes\":{},",
                "\"probe_failures\":{},\"breaker_opens\":{},",
                "\"budget_available\":{},\"budget_withdrawals\":{},",
                "\"budget_exhaustions\":{},\"replicas\":["
            ),
            self.queries,
            self.failovers,
            self.hedges_launched,
            self.hedges_won,
            self.hedge_mismatches,
            self.probes,
            self.probe_failures,
            self.breaker_opens,
            self.budget_available,
            self.budget_withdrawals,
            self.budget_exhaustions,
        );
        for (i, r) in self.replicas.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"addr\":\"{}\",\"health\":\"{}\",\"breaker\":\"{}\"}}",
                r.addr,
                r.health.as_str(),
                r.breaker.as_str()
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Cancels a cluster query from another thread: trips a flag the
/// routing loop polls between attempts, and sends CANCEL frames on
/// every connection the query currently has in flight.
///
/// One token is for one logical query; share it via [`Arc`].
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
    cancellers: Mutex<Vec<Canceller>>,
    children: Mutex<Vec<Arc<CancelToken>>>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Whether [`CancelToken::cancel`] has fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Cancels the query: every registered in-flight connection gets a
    /// CANCEL frame (best-effort — a dead connection is already
    /// cancelled), and hedge attempts sharing this token are cancelled
    /// too. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
        for mut canceller in self.cancellers.lock().unwrap().drain(..) {
            let _ = canceller.cancel();
        }
        for child in self.children.lock().unwrap().drain(..) {
            child.cancel();
        }
    }

    /// Registers an in-flight connection; cancels it on the spot when
    /// the token already fired (closing the register/cancel race).
    fn register(&self, mut canceller: Canceller) {
        if self.is_cancelled() {
            let _ = canceller.cancel();
            return;
        }
        self.cancellers.lock().unwrap().push(canceller);
        if self.is_cancelled() {
            // cancel() may have drained between the check and the push.
            for mut c in self.cancellers.lock().unwrap().drain(..) {
                let _ = c.cancel();
            }
        }
    }

    /// Links a child token (a hedge attempt) so cancelling the parent
    /// cancels it.
    fn adopt(&self, child: Arc<CancelToken>) {
        if self.is_cancelled() {
            child.cancel();
            return;
        }
        self.children.lock().unwrap().push(child);
    }
}

struct Shared {
    cfg: ClusterConfig,
    replicas: Vec<Replica>,
    budget: RetryBudget,
    rr: AtomicUsize,
    latency: MetricsRecorder,
    counters: Counters,
    stop: AtomicBool,
}

/// SplitMix64 finalizer — the same stream generator the fault plan and
/// retry jitter use; drives the probe-interval jitter.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One attempt's result: the reply, its raw payload bytes, and the
/// index of the replica that produced it.
type AttemptOutcome = Result<(QueryReply, Vec<u8>, usize), ClusterError>;

/// How a reply was obtained relative to hedging — part of the
/// provenance [`TaggedTrace`] records next to an operator trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HedgeOutcome {
    /// No hedge attempt was launched for this query.
    NotHedged,
    /// A hedge was launched but the primary attempt answered first.
    Primary,
    /// The hedge attempt answered first.
    Hedge,
}

impl HedgeOutcome {
    /// Lower-case name, for JSON/state dumps.
    pub fn as_str(&self) -> &'static str {
        match self {
            HedgeOutcome::NotHedged => "not_hedged",
            HedgeOutcome::Primary => "primary",
            HedgeOutcome::Hedge => "hedge",
        }
    }
}

/// An operator trace tagged with its cluster provenance: which replica
/// executed the query and how the reply won (hedged or not). This is
/// what distinguishes "this plan was slow" from "this replica was
/// slow" when reading traces fleet-wide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedTrace {
    /// The replica that executed the traced query.
    pub replica: SocketAddr,
    /// Whether the reply came from a hedge attempt.
    pub hedge: HedgeOutcome,
    /// The per-operator execution trace from that replica.
    pub trace: fj_net::QueryTrace,
}

impl TaggedTrace {
    /// One-line JSON: provenance keys first, then the trace under
    /// `trace` (the stable [`fj_net::QueryTrace::to_json`] encoding).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"replica\":\"{}\",\"hedge\":\"{}\",\"trace\":{}}}",
            self.replica,
            self.hedge.as_str(),
            self.trace.to_json()
        )
    }
}

/// A replica-aware client for a fleet of `fj-net` servers.
pub struct ClusterClient {
    shared: Arc<Shared>,
    prober: Mutex<Option<thread::JoinHandle<()>>>,
}

impl fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterClient")
            .field("replicas", &self.shared.replicas.len())
            .finish_non_exhaustive()
    }
}

impl ClusterClient {
    /// Builds a client over `addrs` (normalizing `config`) and starts
    /// the background health prober. No connection is made up front —
    /// replicas start `Unknown` and the first queries race the prober.
    pub fn connect(
        addrs: &[SocketAddr],
        config: ClusterConfig,
    ) -> Result<ClusterClient, ClusterError> {
        if addrs.is_empty() {
            return Err(ClusterError::NoReplicas);
        }
        let cfg = config.normalized();
        let replicas = addrs
            .iter()
            .map(|&addr| Replica {
                addr,
                breaker: CircuitBreaker::new(cfg.breaker.clone()),
                health: Mutex::new(ReplicaHealth::Unknown),
            })
            .collect();
        let budget = RetryBudget::new(cfg.retry_budget_capacity, cfg.retry_deposit_per_success);
        let shared = Arc::new(Shared {
            cfg,
            replicas,
            budget,
            rr: AtomicUsize::new(0),
            latency: MetricsRecorder::default(),
            counters: Counters::default(),
            stop: AtomicBool::new(false),
        });
        let prober = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("fj-cluster-prober".into())
                .spawn(move || prober_loop(&shared))
                .expect("spawn prober")
        };
        Ok(ClusterClient {
            shared,
            prober: Mutex::new(Some(prober)),
        })
    }

    /// Executes `query` with default options and no external
    /// cancellation.
    pub fn query(&self, query: &JoinQuery) -> Result<QueryReply, ClusterError> {
        self.query_with(query, &QueryOptions::default())
    }

    /// Executes `query` with per-request options.
    pub fn query_with(
        &self,
        query: &JoinQuery,
        opts: &QueryOptions,
    ) -> Result<QueryReply, ClusterError> {
        self.query_with_token(query, opts, &Arc::new(CancelToken::new()))
    }

    /// Executes `query`, cancellable from another thread via `token`.
    pub fn query_with_token(
        &self,
        query: &JoinQuery,
        opts: &QueryOptions,
        token: &Arc<CancelToken>,
    ) -> Result<QueryReply, ClusterError> {
        self.query_full(query, opts, token)
            .map(|(reply, _, _)| reply)
    }

    /// Executes `query` with tracing forced on and returns the reply
    /// plus its [`TaggedTrace`]: the operator trace from whichever
    /// replica served the query, tagged with that replica's address
    /// and the hedge outcome.
    pub fn query_traced(
        &self,
        query: &JoinQuery,
    ) -> Result<(QueryReply, TaggedTrace), ClusterError> {
        self.query_traced_with(query, &QueryOptions::default())
    }

    /// [`ClusterClient::query_traced`] with per-request options (the
    /// trace flag is forced on regardless of `opts.want_trace`).
    pub fn query_traced_with(
        &self,
        query: &JoinQuery,
        opts: &QueryOptions,
    ) -> Result<(QueryReply, TaggedTrace), ClusterError> {
        let mut opts = opts.clone();
        opts.want_trace = true;
        let (reply, idx, hedge) = self.query_full(query, &opts, &Arc::new(CancelToken::new()))?;
        let trace = match reply.trace.clone() {
            Some(t) => t,
            None => {
                return Err(ClusterError::Net(NetError::Protocol(
                    "traced reply carried no trace",
                )))
            }
        };
        let tagged = TaggedTrace {
            replica: self.shared.replicas[idx].addr,
            hedge,
            trace,
        };
        Ok((reply, tagged))
    }

    /// The shared query core: routes (hedged or not) and keeps the
    /// provenance — winning replica index and hedge outcome — that
    /// [`ClusterClient::query_traced`] needs and plain queries drop.
    fn query_full(
        &self,
        query: &JoinQuery,
        opts: &QueryOptions,
        token: &Arc<CancelToken>,
    ) -> Result<(QueryReply, usize, HedgeOutcome), ClusterError> {
        self.shared.counters.queries.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let result = match self.hedge_delay() {
            Some(delay) => self.hedged_query(query, opts, token, delay),
            None => failover_query(&self.shared, query, opts, token, None, None)
                .map(|(reply, _, idx)| (reply, idx, HedgeOutcome::NotHedged)),
        };
        if result.is_ok() {
            self.shared.latency.record(started.elapsed(), true);
        }
        result
    }

    /// The hedge trigger, when armed: the configured latency quantile
    /// of observed successes, floored at `min_delay`. `None` while
    /// hedging is disabled or the histogram is too cold.
    fn hedge_delay(&self) -> Option<Duration> {
        let hedge = &self.shared.cfg.hedge;
        if !hedge.enabled {
            return None;
        }
        let hist = self.shared.latency.histogram();
        if hist.count() < hedge.min_samples {
            return None;
        }
        let micros = hist.quantile_micros(hedge.quantile);
        Some(Duration::from_micros(micros).max(hedge.min_delay))
    }

    /// Primary attempt in a worker thread; if no reply lands within
    /// `delay`, a hedge attempt starts on a different replica and the
    /// first reply wins.
    fn hedged_query(
        &self,
        query: &JoinQuery,
        opts: &QueryOptions,
        token: &Arc<CancelToken>,
        delay: Duration,
    ) -> Result<(QueryReply, usize, HedgeOutcome), ClusterError> {
        let (tx, rx) = mpsc::channel();
        // Which replica the primary attempt is on (index + 1; 0 = not
        // yet chosen), so the hedge can avoid doubling onto it.
        let primary_on = Arc::new(AtomicUsize::new(0));
        let primary_token = Arc::new(CancelToken::new());
        token.adopt(Arc::clone(&primary_token));
        {
            let shared = Arc::clone(&self.shared);
            let query = query.clone();
            let opts = opts.clone();
            let token = Arc::clone(&primary_token);
            let primary_on = Arc::clone(&primary_on);
            let tx = tx.clone();
            thread::spawn(move || {
                let result =
                    failover_query(&shared, &query, &opts, &token, None, Some(&primary_on));
                let _ = tx.send((false, result));
            });
        }
        let first = match rx.recv_timeout(delay) {
            Ok(outcome) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Primary is slow: launch the hedge and take whichever
                // answers first.
                self.shared
                    .counters
                    .hedges_launched
                    .fetch_add(1, Ordering::Relaxed);
                let hedge_token = Arc::new(CancelToken::new());
                token.adopt(Arc::clone(&hedge_token));
                // Give the primary a beat to publish which replica it
                // landed on — hedging onto the same replica would race
                // it against itself and forfeit the latency win.
                let publish_wait = Instant::now();
                while primary_on.load(Ordering::Relaxed) == 0
                    && publish_wait.elapsed() < Duration::from_millis(2)
                {
                    thread::yield_now();
                }
                {
                    let shared = Arc::clone(&self.shared);
                    let query = query.clone();
                    let opts = opts.clone();
                    let htoken = Arc::clone(&hedge_token);
                    let exclude = primary_on.load(Ordering::Relaxed).checked_sub(1);
                    let tx = tx.clone();
                    thread::spawn(move || {
                        let result = failover_query(&shared, &query, &opts, &htoken, exclude, None);
                        let _ = tx.send((true, result));
                    });
                }
                drop(tx);
                let (winner_is_hedge, winner) = rx.recv().expect("both hedge attempts vanished");
                if winner_is_hedge {
                    self.shared
                        .counters
                        .hedges_won
                        .fetch_add(1, Ordering::Relaxed);
                }
                return self.settle_hedge(
                    winner_is_hedge,
                    winner,
                    rx,
                    &primary_token,
                    &hedge_token,
                );
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("primary attempt thread dropped its channel without sending")
            }
        };
        first
            .1
            .map(|(reply, _, idx)| (reply, idx, HedgeOutcome::NotHedged))
    }

    /// Resolves a hedge race: verify the loser against the winner
    /// (when configured and the winner succeeded), or cancel it.
    fn settle_hedge(
        &self,
        winner_is_hedge: bool,
        winner: AttemptOutcome,
        rx: mpsc::Receiver<(bool, AttemptOutcome)>,
        primary_token: &Arc<CancelToken>,
        hedge_token: &Arc<CancelToken>,
    ) -> Result<(QueryReply, usize, HedgeOutcome), ClusterError> {
        let loser_token = if winner_is_hedge {
            primary_token
        } else {
            hedge_token
        };
        let (reply, winner_raw, winner_idx) = match winner {
            Ok(parts) => parts,
            Err(e) => {
                // The first finisher failed; the race is now just the
                // other attempt. Wait it out.
                return match rx.recv() {
                    Ok((late_is_hedge, Ok((reply, _, idx)))) => {
                        let outcome = if late_is_hedge {
                            HedgeOutcome::Hedge
                        } else {
                            HedgeOutcome::Primary
                        };
                        Ok((reply, idx, outcome))
                    }
                    Ok((_, Err(other))) => Err(pick_hedge_error(e, other)),
                    Err(_) => Err(e),
                };
            }
        };
        if self.shared.cfg.hedge.verify {
            // Let the loser finish and compare result bytes. A losing
            // *error* is not a divergence (it may have been racing a
            // fault or a drain); only a successful disagreeing reply is.
            if let Ok((_, Ok((_, loser_raw, loser_idx)))) =
                rx.recv_timeout(Duration::from_secs(30)).map_err(|_| ())
            {
                if comparable_reply_bytes(&winner_raw) != comparable_reply_bytes(&loser_raw) {
                    self.shared
                        .counters
                        .hedge_mismatches
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(ClusterError::Mismatch {
                        winner: self.shared.replicas[winner_idx].addr,
                        loser: self.shared.replicas[loser_idx].addr,
                    });
                }
            }
        } else {
            loser_token.cancel();
        }
        let outcome = if winner_is_hedge {
            HedgeOutcome::Hedge
        } else {
            HedgeOutcome::Primary
        };
        Ok((reply, winner_idx, outcome))
    }

    /// Counter snapshot plus per-replica status.
    pub fn stats(&self) -> ClusterStats {
        let c = &self.shared.counters;
        ClusterStats {
            queries: c.queries.load(Ordering::Relaxed),
            failovers: c.failovers.load(Ordering::Relaxed),
            hedges_launched: c.hedges_launched.load(Ordering::Relaxed),
            hedges_won: c.hedges_won.load(Ordering::Relaxed),
            hedge_mismatches: c.hedge_mismatches.load(Ordering::Relaxed),
            probes: c.probes.load(Ordering::Relaxed),
            probe_failures: c.probe_failures.load(Ordering::Relaxed),
            breaker_opens: self.shared.replicas.iter().map(|r| r.breaker.opens()).sum(),
            budget_available: self.shared.budget.available(),
            budget_withdrawals: self.shared.budget.withdrawals(),
            budget_exhaustions: self.shared.budget.exhaustions(),
            replicas: self
                .shared
                .replicas
                .iter()
                .map(|r| ReplicaStatus {
                    addr: r.addr,
                    health: *r.health.lock().unwrap(),
                    breaker: r.breaker.state(),
                })
                .collect(),
        }
    }

    /// The shared retry budget (shared with any co-operating plain
    /// [`Client`] retry loops the caller runs next to the cluster).
    pub fn retry_budget(&self) -> &RetryBudget {
        &self.shared.budget
    }

    /// Runs one health-probe round right now, on the caller's thread —
    /// lets tests (and impatient routers) refresh the health view
    /// without waiting out the probe interval.
    pub fn probe_now(&self) {
        for idx in 0..self.shared.replicas.len() {
            probe_one(&self.shared, idx);
        }
    }

    /// Stops the prober and waits for it to exit.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.prober.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ClusterClient {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.prober.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

/// When both hedge attempts fail, prefer the more meaningful error:
/// anything over "cancelled" (the loser is usually cancelled by us).
fn pick_hedge_error(first: ClusterError, second: ClusterError) -> ClusterError {
    match (&first, &second) {
        (ClusterError::Cancelled, _) => second,
        _ => first,
    }
}

/// The RESULT-payload prefix that must be byte-identical across
/// replicas: everything except the trailing `cache_hit` (1 byte) and
/// `latency_micros` (8 bytes) fields, which legitimately differ per
/// execution. The codec encodes them last, so a 9-byte strip isolates
/// them exactly.
fn comparable_reply_bytes(raw: &[u8]) -> &[u8] {
    &raw[..raw.len().saturating_sub(9)]
}

/// Whether `e` is worth a hop to another replica: transport failures
/// (dead/partitioned replica), load shedding, drain refusals, and
/// internal server errors (a worker lost mid-query). Deterministic
/// rejections (malformed, query failed, deadline) are not — every
/// replica would answer the same.
fn should_failover(e: &NetError) -> bool {
    e.is_transport()
        || matches!(
            e.error_code(),
            Some(ErrorCode::Shed | ErrorCode::ShuttingDown | ErrorCode::Internal)
        )
}

/// One query attempt against replica `idx`, registering the connection
/// with the cancel token for the duration.
fn attempt_on(
    shared: &Shared,
    idx: usize,
    query: &JoinQuery,
    opts: &QueryOptions,
    token: &CancelToken,
) -> Result<(QueryReply, Vec<u8>), NetError> {
    let replica = &shared.replicas[idx];
    let mut client = Client::connect_timeout(&replica.addr, shared.cfg.connect_timeout)?;
    token.register(client.canceller()?);
    client.query_with_raw(query, opts)
}

/// The routing core: walk the candidate replicas (healthiest tier
/// first, round-robin within a tier), failing over on replica-local
/// errors, charging every hop after the first to the shared budget.
/// Returns the reply, its raw payload, and the winning replica index.
fn failover_query(
    shared: &Shared,
    query: &JoinQuery,
    opts: &QueryOptions,
    token: &CancelToken,
    exclude: Option<usize>,
    report_replica: Option<&AtomicUsize>,
) -> AttemptOutcome {
    // A hedge (exclude is set) is a side-car of a primary attempt that
    // already advanced the rotation: advancing again would lock the
    // round-robin parity and pin every primary onto the same replica.
    let order = candidate_order(shared, exclude.is_none());
    let mut last: Option<NetError> = None;
    let mut attempted = 0usize;
    for idx in order {
        if exclude == Some(idx) {
            continue;
        }
        if token.is_cancelled() {
            return Err(ClusterError::Cancelled);
        }
        let replica = &shared.replicas[idx];
        if !replica.breaker.try_acquire() {
            continue;
        }
        // Every hop past the first is a retry the cluster must afford.
        if attempted > 0 {
            if !shared.budget.try_withdraw() {
                return Err(ClusterError::RetryBudgetExhausted {
                    last: last.expect("a failover hop implies a prior error"),
                });
            }
            shared.counters.failovers.fetch_add(1, Ordering::Relaxed);
        }
        attempted += 1;
        if let Some(slot) = report_replica {
            slot.store(idx + 1, Ordering::Relaxed);
        }
        match attempt_on(shared, idx, query, opts, token) {
            Ok((reply, raw)) => {
                replica.breaker.record_success();
                shared.budget.record_success();
                return Ok((reply, raw, idx));
            }
            Err(e) => {
                if token.is_cancelled() || e.error_code() == Some(ErrorCode::Cancelled) {
                    return Err(ClusterError::Cancelled);
                }
                if should_failover(&e) {
                    replica.breaker.record_failure();
                    last = Some(e);
                    continue;
                }
                // The replica answered decisively (query failed,
                // deadline, malformed): its health is fine and no other
                // replica would answer differently.
                replica.breaker.record_success();
                return Err(ClusterError::Net(e));
            }
        }
    }
    Err(ClusterError::NoHealthyReplica { attempted, last })
}

/// Candidate replica indices: rotate round-robin, then stable-sort by
/// health tier (ready < unknown < degraded); draining and dead replicas
/// are dropped. The rotation survives the stable sort, so load spreads
/// within each tier. `advance` rotates the shared counter; peeking
/// callers (hedges) see the current rotation without consuming a turn.
fn candidate_order(shared: &Shared, advance: bool) -> Vec<usize> {
    let n = shared.replicas.len();
    let start = if advance {
        shared.rr.fetch_add(1, Ordering::Relaxed)
    } else {
        shared.rr.load(Ordering::Relaxed)
    } % n;
    let mut ranked: Vec<(u8, usize)> = (0..n)
        .filter_map(|offset| {
            let idx = (start + offset) % n;
            let health = *shared.replicas[idx].health.lock().unwrap();
            health.rank().map(|rank| (rank, idx))
        })
        .collect();
    ranked.sort_by_key(|&(rank, _)| rank);
    ranked.into_iter().map(|(_, idx)| idx).collect()
}

/// One health probe against replica `idx`, updating its health slot.
fn probe_one(shared: &Shared, idx: usize) {
    let replica = &shared.replicas[idx];
    shared.counters.probes.fetch_add(1, Ordering::Relaxed);
    let outcome = Client::connect_timeout(&replica.addr, shared.cfg.probe_timeout)
        .and_then(|mut client| client.health(shared.cfg.probe_timeout));
    let health = match outcome {
        Ok(snapshot) => match snapshot.status {
            HealthStatus::Ready => ReplicaHealth::Ready,
            HealthStatus::Degraded => ReplicaHealth::Degraded,
            HealthStatus::Draining => ReplicaHealth::Draining,
        },
        Err(_) => {
            shared
                .counters
                .probe_failures
                .fetch_add(1, Ordering::Relaxed);
            ReplicaHealth::Dead
        }
    };
    *replica.health.lock().unwrap() = health;
}

/// Prober thread: probe every replica, sleep a jittered interval,
/// repeat until shutdown. The jitter stream is seeded, so a given
/// config replays the same probe schedule.
fn prober_loop(shared: &Shared) {
    let mut jitter_state = splitmix64(shared.cfg.seed);
    while !shared.stop.load(Ordering::SeqCst) {
        for idx in 0..shared.replicas.len() {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            probe_one(shared, idx);
        }
        let base = shared.cfg.probe_interval.as_micros() as u64;
        jitter_state = splitmix64(jitter_state);
        // factor in [1-j, 1+j], from a uniform draw in [0, 2j).
        let spread = (2.0 * shared.cfg.probe_jitter * base as f64) as u64;
        let low = base - (shared.cfg.probe_jitter * base as f64) as u64;
        let sleep_micros = low + if spread > 0 { jitter_state % spread } else { 0 };
        let deadline = Instant::now() + Duration::from_micros(sleep_micros);
        // Sleep in slices so shutdown stays prompt.
        while Instant::now() < deadline {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(Duration::from_millis(2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparable_bytes_strip_only_the_volatile_tail() {
        let raw = vec![1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
        assert_eq!(comparable_reply_bytes(&raw), &raw[..3]);
        let short = vec![1u8, 2];
        assert_eq!(comparable_reply_bytes(&short), &[] as &[u8]);
    }

    #[test]
    fn failover_predicate_matches_replica_local_failures_only() {
        let shed = NetError::Remote {
            code: ErrorCode::Shed,
            message: String::new(),
        };
        let drain = NetError::Remote {
            code: ErrorCode::ShuttingDown,
            message: String::new(),
        };
        let internal = NetError::Remote {
            code: ErrorCode::Internal,
            message: String::new(),
        };
        let failed = NetError::Remote {
            code: ErrorCode::QueryFailed,
            message: String::new(),
        };
        let deadline = NetError::Remote {
            code: ErrorCode::DeadlineExceeded,
            message: String::new(),
        };
        assert!(should_failover(&shed));
        assert!(should_failover(&drain));
        assert!(should_failover(&internal));
        assert!(should_failover(&NetError::ConnectionClosed));
        assert!(!should_failover(&failed), "deterministic rejection");
        assert!(!should_failover(&deadline), "the deadline is global");
    }

    #[test]
    fn cancel_token_is_idempotent_and_sticky() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancelling_a_parent_cancels_adopted_children() {
        let parent = CancelToken::new();
        let child = Arc::new(CancelToken::new());
        parent.adopt(Arc::clone(&child));
        parent.cancel();
        assert!(child.is_cancelled());
        // Adopting into an already-cancelled parent fires immediately.
        let late = Arc::new(CancelToken::new());
        parent.adopt(Arc::clone(&late));
        assert!(late.is_cancelled());
    }
}
