//! Per-replica three-state circuit breaker.
//!
//! The breaker stops the cluster client from hammering a replica that
//! keeps failing: after `failure_threshold` consecutive failures it
//! **opens** and refuses traffic for `cooldown`; the first acquisition
//! after the cooldown moves it to **half-open**, where a bounded trickle
//! of probe requests decides its fate — `half_open_successes` wins in a
//! row close it again, any failure re-opens it for another cooldown.
//!
//! All transitions are driven by the caller's `try_acquire` /
//! `record_success` / `record_failure` calls; there is no internal
//! timer thread. The `*_at` variants take an explicit [`Instant`] so
//! tests can replay a transition schedule without sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Sizing knobs for one [`CircuitBreaker`].
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker refuses traffic before letting a
    /// half-open probe through.
    pub cooldown: Duration,
    /// Consecutive successes (while half-open) that close the breaker.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(250),
            half_open_successes: 2,
        }
    }
}

/// Observable breaker state (the internal state also carries counters
/// and the cooldown deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; consecutive failures are being counted.
    Closed,
    /// Traffic is refused until the cooldown elapses.
    Open,
    /// Probe traffic flows; the next success/failure decides.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case name, for JSON/state dumps.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen { successes: u32 },
}

/// A three-state circuit breaker (closed → open → half-open → closed).
/// Thread-safe; one instance guards one replica.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
    opens: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds (zeroes are clamped
    /// to 1 so the breaker can always make progress).
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        let cfg = BreakerConfig {
            failure_threshold: cfg.failure_threshold.max(1),
            half_open_successes: cfg.half_open_successes.max(1),
            ..cfg
        };
        CircuitBreaker {
            cfg,
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
            opens: AtomicU64::new(0),
        }
    }

    /// Whether a request may be sent through this breaker right now.
    /// An open breaker whose cooldown has elapsed transitions to
    /// half-open and admits the request as a probe.
    pub fn try_acquire(&self) -> bool {
        self.try_acquire_at(Instant::now())
    }

    /// [`CircuitBreaker::try_acquire`] with an explicit clock reading.
    pub fn try_acquire_at(&self, now: Instant) -> bool {
        let mut state = self.state.lock().unwrap();
        match *state {
            State::Closed { .. } | State::HalfOpen { .. } => true,
            State::Open { until } => {
                if now >= until {
                    *state = State::HalfOpen { successes: 0 };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful request. Closed: resets the failure run.
    /// Half-open: counts toward closing. Open: ignored (a late reply
    /// from before the trip).
    pub fn record_success(&self) {
        let mut state = self.state.lock().unwrap();
        match *state {
            State::Closed { .. } => {
                *state = State::Closed {
                    consecutive_failures: 0,
                }
            }
            State::HalfOpen { successes } => {
                if successes + 1 >= self.cfg.half_open_successes {
                    *state = State::Closed {
                        consecutive_failures: 0,
                    };
                } else {
                    *state = State::HalfOpen {
                        successes: successes + 1,
                    };
                }
            }
            State::Open { .. } => {}
        }
    }

    /// Reports a failed request. Closed: counts toward the threshold
    /// and opens on reaching it. Half-open: re-opens immediately.
    pub fn record_failure(&self) {
        self.record_failure_at(Instant::now());
    }

    /// [`CircuitBreaker::record_failure`] with an explicit clock
    /// reading (the cooldown deadline is `now + cooldown`).
    pub fn record_failure_at(&self, now: Instant) {
        let mut state = self.state.lock().unwrap();
        match *state {
            State::Closed {
                consecutive_failures,
            } => {
                if consecutive_failures + 1 >= self.cfg.failure_threshold {
                    *state = State::Open {
                        until: now + self.cfg.cooldown,
                    };
                    self.opens.fetch_add(1, Ordering::Relaxed);
                } else {
                    *state = State::Closed {
                        consecutive_failures: consecutive_failures + 1,
                    };
                }
            }
            State::HalfOpen { .. } => {
                *state = State::Open {
                    until: now + self.cfg.cooldown,
                };
                self.opens.fetch_add(1, Ordering::Relaxed);
            }
            State::Open { .. } => {}
        }
    }

    /// The observable state (open breakers stay "open" here until a
    /// `try_acquire` actually transitions them).
    pub fn state(&self) -> BreakerState {
        match *self.state.lock().unwrap() {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Times this breaker has tripped open (closed→open and
    /// half-open→open both count).
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(10),
            half_open_successes: 2,
        })
    }

    #[test]
    fn closed_until_threshold_consecutive_failures() {
        let b = breaker();
        let now = Instant::now();
        b.record_failure_at(now);
        b.record_failure_at(now);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_acquire_at(now));
        b.record_failure_at(now);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_acquire_at(now), "open breaker refuses traffic");
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_the_failure_run() {
        let b = breaker();
        let now = Instant::now();
        b.record_failure_at(now);
        b.record_failure_at(now);
        b.record_success();
        b.record_failure_at(now);
        b.record_failure_at(now);
        assert_eq!(b.state(), BreakerState::Closed, "run was reset");
    }

    #[test]
    fn cooldown_elapsing_admits_a_half_open_probe() {
        let b = breaker();
        let now = Instant::now();
        for _ in 0..3 {
            b.record_failure_at(now);
        }
        assert!(!b.try_acquire_at(now + Duration::from_secs(9)));
        assert!(b.try_acquire_at(now + Duration::from_secs(10)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_closes_after_enough_successes() {
        let b = breaker();
        let now = Instant::now();
        for _ in 0..3 {
            b.record_failure_at(now);
        }
        assert!(b.try_acquire_at(now + Duration::from_secs(10)));
        b.record_success();
        assert_eq!(
            b.state(),
            BreakerState::HalfOpen,
            "one success is not enough"
        );
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn half_open_failure_reopens_for_another_cooldown() {
        let b = breaker();
        let now = Instant::now();
        for _ in 0..3 {
            b.record_failure_at(now);
        }
        let probe_at = now + Duration::from_secs(10);
        assert!(b.try_acquire_at(probe_at));
        b.record_failure_at(probe_at);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        assert!(!b.try_acquire_at(probe_at + Duration::from_secs(9)));
        assert!(b.try_acquire_at(probe_at + Duration::from_secs(10)));
    }

    #[test]
    fn zero_thresholds_are_clamped() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 0,
            cooldown: Duration::from_secs(1),
            half_open_successes: 0,
        });
        let now = Instant::now();
        b.record_failure_at(now);
        assert_eq!(b.state(), BreakerState::Open, "threshold clamps to 1");
        assert!(b.try_acquire_at(now + Duration::from_secs(1)));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed, "successes clamp to 1");
    }
}
