//! Cluster-client configuration, with the same strict/lenient split the
//! runtime's `ServiceConfig` uses: [`ClusterConfig::validate`] rejects
//! nonsense knobs with a typed error (run it on operator-supplied
//! config), while [`ClusterConfig::normalized`] clamps them into range
//! — `ClusterClient::connect` applies the latter, so a sloppy config
//! still yields a working client rather than a wedged one.

use crate::breaker::BreakerConfig;
use fj_net::RetryPolicy;
use std::fmt;
use std::time::Duration;

/// Hedged-request knobs.
///
/// When enabled, a query that has not answered within the observed
/// latency quantile is re-issued against a second replica; the first
/// verified reply wins and the loser is cancelled (or, with
/// [`HedgeConfig::verify`], allowed to finish so the two replies can be
/// checked byte-identical).
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Master switch. Off by default: hedging doubles worst-case load.
    pub enabled: bool,
    /// Latency quantile of observed successes after which the hedge
    /// fires (e.g. `0.95` = hedge the slowest 5%). Must be in (0, 1].
    pub quantile: f64,
    /// Floor on the hedge delay, so a cold histogram (or a very fast
    /// workload) cannot hedge every single request.
    pub min_delay: Duration,
    /// Observed successes required before hedging arms — below this
    /// the quantile estimate is noise.
    pub min_samples: u64,
    /// Let the losing attempt finish and verify its reply is
    /// byte-identical to the winner's (modulo per-execution fields);
    /// a divergence is reported as `ClusterError::ReplicaMismatch`.
    /// When `false` the loser is cancelled the moment the winner lands.
    pub verify: bool,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: false,
            quantile: 0.95,
            min_delay: Duration::from_millis(1),
            min_samples: 32,
            verify: false,
        }
    }
}

/// Everything the replica-aware [`crate::ClusterClient`] needs to know.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Base interval between health-probe rounds.
    pub probe_interval: Duration,
    /// Jitter applied to each probe sleep as a fraction of the
    /// interval, in `[0, 1]` — probes are spread across
    /// `[interval·(1−jitter), interval·(1+jitter)]` by a seeded stream
    /// so replicas are never probed in lockstep.
    pub probe_jitter: f64,
    /// Per-probe I/O timeout (connect, handshake, and reply each).
    pub probe_timeout: Duration,
    /// TCP connect timeout for query connections.
    pub connect_timeout: Duration,
    /// Per-replica circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Backoff schedule for same-replica retries of retryable refusals.
    pub retry: RetryPolicy,
    /// Capacity of the shared retry budget (tokens). Retries and
    /// failovers both draw from it; successes deposit
    /// [`ClusterConfig::retry_deposit_per_success`] back.
    pub retry_budget_capacity: u32,
    /// Tokens deposited per successful query, in `[0, 1000]`.
    pub retry_deposit_per_success: f64,
    /// Hedged-request knobs.
    pub hedge: HedgeConfig,
    /// Seed for the probe-jitter stream.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            probe_interval: Duration::from_millis(50),
            probe_jitter: 0.2,
            probe_timeout: Duration::from_millis(250),
            connect_timeout: Duration::from_millis(500),
            breaker: BreakerConfig::default(),
            retry: RetryPolicy::default(),
            retry_budget_capacity: 32,
            retry_deposit_per_success: 0.1,
            hedge: HedgeConfig::default(),
            seed: 0xc1a5,
        }
    }
}

/// [`ClusterConfig::validate`] rejection: which knob, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfigError {
    /// The offending knob's name.
    pub knob: &'static str,
    /// What a valid value looks like.
    pub expected: &'static str,
}

impl fmt::Display for ClusterConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid cluster config: {} must be {}",
            self.knob, self.expected
        )
    }
}

impl std::error::Error for ClusterConfigError {}

fn reject(knob: &'static str, expected: &'static str) -> Result<(), ClusterConfigError> {
    Err(ClusterConfigError { knob, expected })
}

impl ClusterConfig {
    /// Strict validation — every knob must already be in range. This is
    /// the check to run on operator-supplied configuration; the
    /// constructor itself uses [`ClusterConfig::normalized`].
    pub fn validate(&self) -> Result<(), ClusterConfigError> {
        if self.probe_interval.is_zero() {
            return reject("probe_interval", "positive");
        }
        if !(0.0..=1.0).contains(&self.probe_jitter) {
            return reject("probe_jitter", "in [0, 1]");
        }
        if self.probe_timeout.is_zero() {
            return reject("probe_timeout", "positive");
        }
        if self.connect_timeout.is_zero() {
            return reject("connect_timeout", "positive");
        }
        if self.retry_budget_capacity == 0 {
            return reject("retry_budget_capacity", "≥ 1");
        }
        if !(0.0..=1000.0).contains(&self.retry_deposit_per_success) {
            return reject("retry_deposit_per_success", "in [0, 1000]");
        }
        if !(self.hedge.quantile > 0.0 && self.hedge.quantile <= 1.0) {
            return reject("hedge.quantile", "in (0, 1]");
        }
        if self.hedge.min_samples == 0 {
            return reject("hedge.min_samples", "≥ 1");
        }
        Ok(())
    }

    /// The lenient counterpart of [`ClusterConfig::validate`]: clamps
    /// every out-of-range knob into range instead of failing.
    /// `ClusterClient::connect` applies this, the one place where
    /// clamping happens.
    pub fn normalized(mut self) -> ClusterConfig {
        if self.probe_interval.is_zero() {
            self.probe_interval = Duration::from_millis(1);
        }
        self.probe_jitter = if self.probe_jitter.is_finite() {
            self.probe_jitter.clamp(0.0, 1.0)
        } else {
            0.0
        };
        if self.probe_timeout.is_zero() {
            self.probe_timeout = Duration::from_millis(1);
        }
        if self.connect_timeout.is_zero() {
            self.connect_timeout = Duration::from_millis(1);
        }
        self.retry_budget_capacity = self.retry_budget_capacity.max(1);
        self.retry_deposit_per_success = if self.retry_deposit_per_success.is_finite() {
            self.retry_deposit_per_success.clamp(0.0, 1000.0)
        } else {
            0.0
        };
        self.hedge.quantile = if self.hedge.quantile.is_finite() && self.hedge.quantile > 0.0 {
            self.hedge.quantile.min(1.0)
        } else {
            0.95
        };
        self.hedge.min_samples = self.hedge.min_samples.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        ClusterConfig::default().validate().unwrap();
    }

    #[test]
    fn each_bad_knob_is_rejected_by_name() {
        let cases: Vec<(ClusterConfig, &str)> = vec![
            (
                ClusterConfig {
                    probe_interval: Duration::ZERO,
                    ..ClusterConfig::default()
                },
                "probe_interval",
            ),
            (
                ClusterConfig {
                    probe_jitter: 1.5,
                    ..ClusterConfig::default()
                },
                "probe_jitter",
            ),
            (
                ClusterConfig {
                    probe_timeout: Duration::ZERO,
                    ..ClusterConfig::default()
                },
                "probe_timeout",
            ),
            (
                ClusterConfig {
                    connect_timeout: Duration::ZERO,
                    ..ClusterConfig::default()
                },
                "connect_timeout",
            ),
            (
                ClusterConfig {
                    retry_budget_capacity: 0,
                    ..ClusterConfig::default()
                },
                "retry_budget_capacity",
            ),
            (
                ClusterConfig {
                    retry_deposit_per_success: -0.5,
                    ..ClusterConfig::default()
                },
                "retry_deposit_per_success",
            ),
            (
                ClusterConfig {
                    hedge: HedgeConfig {
                        quantile: 0.0,
                        ..HedgeConfig::default()
                    },
                    ..ClusterConfig::default()
                },
                "hedge.quantile",
            ),
            (
                ClusterConfig {
                    hedge: HedgeConfig {
                        min_samples: 0,
                        ..HedgeConfig::default()
                    },
                    ..ClusterConfig::default()
                },
                "hedge.min_samples",
            ),
        ];
        for (cfg, knob) in cases {
            let err = cfg.validate().expect_err(knob);
            assert_eq!(err.knob, knob);
        }
    }

    #[test]
    fn normalized_fixes_every_rejected_knob() {
        let cfg = ClusterConfig {
            probe_interval: Duration::ZERO,
            probe_jitter: f64::NAN,
            probe_timeout: Duration::ZERO,
            connect_timeout: Duration::ZERO,
            retry_budget_capacity: 0,
            retry_deposit_per_success: f64::INFINITY,
            hedge: HedgeConfig {
                quantile: -1.0,
                min_samples: 0,
                ..HedgeConfig::default()
            },
            ..ClusterConfig::default()
        }
        .normalized();
        cfg.validate().expect("normalized config must validate");
    }

    #[test]
    fn normalized_preserves_in_range_knobs() {
        let cfg = ClusterConfig {
            probe_interval: Duration::from_millis(77),
            probe_jitter: 0.33,
            retry_budget_capacity: 9,
            ..ClusterConfig::default()
        }
        .normalized();
        assert_eq!(cfg.probe_interval, Duration::from_millis(77));
        assert_eq!(cfg.probe_jitter, 0.33);
        assert_eq!(cfg.retry_budget_capacity, 9);
    }
}
