//! Cluster integration tests: real `fj-net` servers on ephemeral
//! ports, a real [`ClusterClient`], and the behaviours the subsystem
//! promises — routing around drained and dead replicas, failover under
//! a shared retry budget, typed budget exhaustion, circuit breaking,
//! hedging against a stalled replica, and cross-replica cancellation.

use fj_algebra::fixtures::{paper_catalog, paper_query};
use fj_algebra::{Catalog, FromItem, JoinQuery};
use fj_cluster::{
    BreakerConfig, CancelToken, ClusterClient, ClusterConfig, ClusterError, HedgeConfig,
    ReplicaHealth,
};
use fj_core::Database;
use fj_expr::col;
use fj_net::{QueryOptions, Server, ServerConfig};
use fj_runtime::{FaultPlan, ServiceConfig};
use fj_storage::{DataType, TableBuilder, Tuple};
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// A fleet of `n` identical replicas over the paper catalog.
fn fleet(n: usize, config: ServerConfig) -> (Vec<Server>, Vec<SocketAddr>) {
    let servers: Vec<Server> = (0..n)
        .map(|_| Server::bind("127.0.0.1:0", paper_catalog(), config.clone()).unwrap())
        .collect();
    let addrs = servers.iter().map(|s| s.local_addr()).collect();
    (servers, addrs)
}

/// A medium two-table join: slow enough (in debug builds) to cancel or
/// stall mid-flight, fast enough to keep tests snappy.
fn big_catalog_and_query(rows: i64) -> (Catalog, JoinQuery) {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("L")
            .column("k", DataType::Int)
            .column("v", DataType::Int)
            .rows((0..rows).map(|i| vec![(i % 97).into(), i.into()]))
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("R")
            .column("k", DataType::Int)
            .column("w", DataType::Int)
            .rows((0..rows).map(|i| vec![(i % 89).into(), (-i).into()]))
            .build()
            .unwrap()
            .into_ref(),
    );
    let q = JoinQuery::new(vec![FromItem::new("L", "A"), FromItem::new("R", "B")])
        .with_predicate(col("A.k").eq(col("B.k")));
    (cat, q)
}

/// Quick config: fast probes, small backoff, no hedging.
fn quick_config() -> ClusterConfig {
    ClusterConfig {
        probe_interval: Duration::from_millis(10),
        probe_timeout: Duration::from_millis(500),
        connect_timeout: Duration::from_millis(500),
        ..ClusterConfig::default()
    }
}

#[test]
fn queries_spread_across_replicas_and_match_serial() {
    let (servers, addrs) = fleet(3, ServerConfig::default());
    let expected = sorted(
        Database::with_catalog(paper_catalog())
            .execute(&paper_query())
            .unwrap()
            .rows,
    );
    let cluster = ClusterClient::connect(&addrs, quick_config()).unwrap();
    for _ in 0..9 {
        let reply = cluster.query(&paper_query()).unwrap();
        assert_eq!(sorted(reply.rows), expected);
    }
    let stats = cluster.stats();
    assert_eq!(stats.queries, 9);
    assert_eq!(stats.failovers, 0, "healthy fleet needs no failover");
    assert_eq!(stats.hedge_mismatches, 0);
    // Round-robin across 3 replicas: every server saw work.
    for server in &servers {
        assert!(
            server.stats().requests >= 1,
            "round-robin skipped a replica"
        );
    }
    cluster.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn prober_classifies_ready_draining_and_dead() {
    let (mut servers, addrs) = fleet(3, ServerConfig::default());
    let cluster = ClusterClient::connect(&addrs, quick_config()).unwrap();
    servers[1].begin_drain();
    let killed = servers.remove(2);
    killed.abort();

    cluster.probe_now();
    let stats = cluster.stats();
    assert_eq!(stats.replicas[0].health, ReplicaHealth::Ready);
    assert_eq!(stats.replicas[1].health, ReplicaHealth::Draining);
    assert_eq!(stats.replicas[2].health, ReplicaHealth::Dead);
    assert!(stats.probes >= 3);
    assert!(stats.probe_failures >= 1);

    // The JSON snapshot carries the same picture, stable-keyed.
    let json = stats.to_json();
    for key in [
        "\"queries\":",
        "\"failovers\":",
        "\"hedges_launched\":",
        "\"budget_available\":",
        "\"replicas\":[",
        "\"health\":\"draining\"",
        "\"health\":\"dead\"",
    ] {
        assert!(
            json.contains(key),
            "cluster stats JSON missing {key}: {json}"
        );
    }
    let (a, b) = (
        json.find("\"queries\":").unwrap(),
        json.find("\"failovers\":").unwrap(),
    );
    assert!(a < b, "stable key order");

    cluster.shutdown();
    for s in servers {
        s.shutdown();
    }
}

/// Blocks until the background prober has completed at least one full
/// round (so every replica reports Ready, not Unknown).
fn wait_first_probe_round(cluster: &ClusterClient, replicas: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = cluster.stats();
        if stats.probes >= replicas
            && stats
                .replicas
                .iter()
                .all(|r| r.health == ReplicaHealth::Ready)
        {
            return;
        }
        assert!(Instant::now() < deadline, "prober never ran");
        thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn failover_rides_out_a_hard_killed_replica() {
    let (mut servers, addrs) = fleet(3, ServerConfig::default());
    let expected = sorted(
        Database::with_catalog(paper_catalog())
            .execute(&paper_query())
            .unwrap()
            .rows,
    );
    // One probe round while everything is alive, then effectively no
    // probing: the kill below stays invisible to the health view.
    let cluster = ClusterClient::connect(
        &addrs,
        ClusterConfig {
            probe_interval: Duration::from_secs(600),
            ..quick_config()
        },
    )
    .unwrap();
    wait_first_probe_round(&cluster, 3);

    // Kill a replica *without* telling the prober: the next queries
    // that pick it must fail over transparently.
    let killed = servers.remove(1);
    killed.abort();
    for _ in 0..9 {
        let reply = cluster.query(&paper_query()).unwrap();
        assert_eq!(sorted(reply.rows), expected);
    }
    let stats = cluster.stats();
    assert!(
        stats.failovers >= 1,
        "round-robin must have hit the dead replica and hopped"
    );

    // Once the prober sees the death, routing skips the replica and
    // failovers stop accruing.
    cluster.probe_now();
    assert_eq!(cluster.stats().replicas[1].health, ReplicaHealth::Dead);
    let failovers_before = cluster.stats().failovers;
    for _ in 0..6 {
        cluster.query(&paper_query()).unwrap();
    }
    assert_eq!(
        cluster.stats().failovers,
        failovers_before,
        "probed-dead replicas must not be attempted at all"
    );
    cluster.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn drained_replica_is_routed_around_without_client_visible_failures() {
    let (servers, addrs) = fleet(3, ServerConfig::default());
    let cluster = ClusterClient::connect(&addrs, quick_config()).unwrap();
    servers[0].begin_drain();
    // No probe yet: the first query may hit the draining replica, get
    // the typed SHUTTING_DOWN refusal, and must fail over silently.
    for _ in 0..9 {
        assert_eq!(cluster.query(&paper_query()).unwrap().rows.len(), 2);
    }
    cluster.probe_now();
    assert_eq!(cluster.stats().replicas[0].health, ReplicaHealth::Draining);
    let failovers_before = cluster.stats().failovers;
    for _ in 0..6 {
        cluster.query(&paper_query()).unwrap();
    }
    assert_eq!(cluster.stats().failovers, failovers_before);
    cluster.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn budget_exhaustion_is_the_typed_give_up_outcome() {
    // Three dead replicas, a one-token budget, nothing deposited back:
    // attempt 1 is free, hop 2 spends the token, hop 3 finds the bucket
    // dry — the typed "we stopped on purpose" error, not a timeout.
    let (servers, addrs) = fleet(3, ServerConfig::default());
    for s in servers {
        s.abort();
    }
    let cluster = ClusterClient::connect(
        &addrs,
        ClusterConfig {
            retry_budget_capacity: 1,
            retry_deposit_per_success: 0.0,
            breaker: BreakerConfig {
                failure_threshold: 100,
                ..BreakerConfig::default()
            },
            ..quick_config()
        },
    )
    .unwrap();
    match cluster.query(&paper_query()) {
        Err(ClusterError::RetryBudgetExhausted { last }) => {
            assert!(last.is_transport(), "the last error was a dead socket");
        }
        other => panic!("expected RetryBudgetExhausted, got {other:?}"),
    }
    let stats = cluster.stats();
    assert_eq!(stats.budget_available, 0);
    assert_eq!(stats.budget_withdrawals, 1);
    assert!(stats.budget_exhaustions >= 1);
    cluster.shutdown();
}

#[test]
fn breakers_open_on_a_dead_replica_and_stop_the_hammering() {
    let (mut servers, addrs) = fleet(2, ServerConfig::default());
    let cluster = ClusterClient::connect(
        &addrs,
        ClusterConfig {
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(600),
                half_open_successes: 1,
            },
            // Keep the prober effectively out of the picture so this
            // test exercises the breaker, not the health view.
            probe_interval: Duration::from_secs(600),
            ..quick_config()
        },
    )
    .unwrap();
    wait_first_probe_round(&cluster, 2);
    let killed = servers.remove(1);
    killed.abort();

    for _ in 0..10 {
        cluster.query(&paper_query()).unwrap();
    }
    let stats = cluster.stats();
    assert!(
        stats.breaker_opens >= 1,
        "two failures must trip the breaker"
    );
    assert!(
        stats.failovers <= 3,
        "after the breaker opens the dead replica is not attempted; \
         got {} failovers",
        stats.failovers
    );
    cluster.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn hedging_beats_a_stalled_replica_and_verifies_replies() {
    // Replica 0 stalls on every page read; replica 1 is healthy. With
    // verification on, every hedge race also checks the two replies
    // byte-identical.
    let slow = Server::bind(
        "127.0.0.1:0",
        paper_catalog(),
        ServerConfig {
            service: ServiceConfig {
                fault_plan: Some(Arc::new(
                    FaultPlan::new(11).with_stalls(1, Duration::from_millis(30)),
                )),
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let fast = Server::bind("127.0.0.1:0", paper_catalog(), ServerConfig::default()).unwrap();
    let addrs = vec![slow.local_addr(), fast.local_addr()];
    let cluster = ClusterClient::connect(
        &addrs,
        ClusterConfig {
            hedge: HedgeConfig {
                enabled: true,
                quantile: 0.5,
                min_delay: Duration::from_millis(5),
                min_samples: 1,
                verify: true,
            },
            ..quick_config()
        },
    )
    .unwrap();

    let expected = sorted(
        Database::with_catalog(paper_catalog())
            .execute(&paper_query())
            .unwrap()
            .rows,
    );
    for _ in 0..12 {
        let reply = cluster.query(&paper_query()).unwrap();
        assert_eq!(sorted(reply.rows), expected);
    }
    let stats = cluster.stats();
    assert!(
        stats.hedges_launched >= 1,
        "queries landing on the stalled replica must have hedged"
    );
    assert!(
        stats.hedges_won >= 1,
        "the fast replica must have won at least one race"
    );
    assert_eq!(
        stats.hedge_mismatches, 0,
        "identical replicas must never diverge"
    );
    cluster.shutdown();
    slow.shutdown();
    fast.shutdown();
}

#[test]
fn cancel_token_tears_down_a_cluster_query() {
    let (cat, query) = big_catalog_and_query(3000);
    let server = Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            service: ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addrs = vec![server.local_addr()];
    let cluster = Arc::new(ClusterClient::connect(&addrs, quick_config()).unwrap());

    // The query may win the race on a fast run; retry until one
    // cancellation lands.
    let mut cancelled = false;
    for _ in 0..32 {
        let token = Arc::new(CancelToken::new());
        let killer = {
            let token = Arc::clone(&token);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(5));
                token.cancel();
            })
        };
        let outcome = cluster.query_with_token(&query, &QueryOptions::default(), &token);
        killer.join().unwrap();
        match outcome {
            Err(ClusterError::Cancelled) => {
                cancelled = true;
                break;
            }
            Ok(reply) => assert!(!reply.rows.is_empty(), "a racing winner returns full rows"),
            Err(other) => panic!("expected Cancelled or a result, got {other:?}"),
        }
    }
    assert!(cancelled, "32 attempts should land one mid-query cancel");
    // The replica survives: the next query succeeds.
    assert!(!cluster.query(&query).unwrap().rows.is_empty());
    Arc::try_unwrap(cluster)
        .expect("no other cluster handles remain")
        .shutdown();
    server.shutdown();
}

#[test]
fn empty_replica_list_is_rejected() {
    match ClusterClient::connect(&[], ClusterConfig::default()) {
        Err(ClusterError::NoReplicas) => {}
        other => panic!("expected NoReplicas, got {other:?}"),
    }
}

#[test]
fn deterministic_rejections_do_not_burn_the_budget() {
    // A query that fails on *every* replica identically (unknown
    // relation) must come back typed after one attempt — no failover,
    // no budget spend.
    let (servers, addrs) = fleet(3, ServerConfig::default());
    let cluster = ClusterClient::connect(&addrs, quick_config()).unwrap();
    let bogus = JoinQuery::new(vec![FromItem::new("NoSuchRel", "X")]);
    match cluster.query(&bogus) {
        Err(ClusterError::Net(e)) => {
            assert_eq!(e.error_code(), Some(fj_net::ErrorCode::QueryFailed));
        }
        other => panic!("expected a typed QueryFailed, got {other:?}"),
    }
    let stats = cluster.stats();
    assert_eq!(stats.failovers, 0, "deterministic failures must not hop");
    assert_eq!(stats.budget_withdrawals, 0);
    cluster.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn wait_for_timeout_bounded_probe_convergence() {
    // The background prober (not probe_now) converges on a drain within
    // a few intervals.
    let (servers, addrs) = fleet(2, ServerConfig::default());
    let cluster = ClusterClient::connect(&addrs, quick_config()).unwrap();
    servers[1].begin_drain();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if cluster.stats().replicas[1].health == ReplicaHealth::Draining {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "background prober never noticed the drain"
        );
        thread::sleep(Duration::from_millis(5));
    }
    cluster.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn traced_cluster_query_tags_replica_and_hedge_outcome() {
    let (servers, addrs) = fleet(3, ServerConfig::default());
    let cluster = ClusterClient::connect(&addrs, quick_config()).unwrap();

    let (reply, tagged) = cluster.query_traced(&paper_query()).unwrap();
    assert_eq!(tagged.trace.rows_out() as usize, reply.rows.len());
    assert!(
        addrs.contains(&tagged.replica),
        "trace tagged with an unknown replica: {}",
        tagged.replica
    );
    assert_eq!(tagged.hedge, fj_cluster::HedgeOutcome::NotHedged);
    let json = tagged.to_json();
    assert!(json.starts_with("{\"replica\":\""));
    assert!(json.contains("\"hedge\":\"not_hedged\""));
    assert!(json.contains("\"trace\":{\"total_wall_micros\":"));

    // Plain queries on the same cluster stay trace-free.
    let plain = cluster.query(&paper_query()).unwrap();
    assert!(plain.trace.is_none());
    assert_eq!(sorted(plain.rows), sorted(reply.rows));

    cluster.shutdown();
    for s in servers {
        s.shutdown();
    }
}
