//! Criterion bench for U1 (§5.2): UDF join strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::repro::udf;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("udf_invocation");
    group.sample_size(10);
    group.bench_function("three_strategies_2000x50", |b| {
        b.iter(|| udf::strategies(2000, 50).len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
