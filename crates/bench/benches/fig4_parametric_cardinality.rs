//! Criterion bench for Figure 4: fitting the parametric cardinality
//! line and probing it, versus executing the restricted view.

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::workloads::{emp_dept, EmpDeptConfig};
use fj_core::optimizer::parametric::ParametricFit;
use fj_core::CostParams;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let catalog = Arc::new(emp_dept(EmpDeptConfig {
        n_emps: 5000,
        n_depts: 500,
        ..Default::default()
    }));
    let mut group = c.benchmark_group("fig4_parametric_cardinality");
    group.sample_size(10);
    group.bench_function("fit_4_classes", |b| {
        b.iter(|| {
            let mut n = 0;
            ParametricFit::fit(
                &catalog,
                CostParams::default(),
                "DepAvgSal",
                &["did".to_string()],
                4,
                &mut n,
            )
            .unwrap()
            .card_slope
        })
    });
    let mut n = 0;
    let fit = ParametricFit::fit(
        &catalog,
        CostParams::default(),
        "DepAvgSal",
        &["did".to_string()],
        4,
        &mut n,
    )
    .unwrap();
    group.bench_function("probe_fitted_line", |b| {
        b.iter(|| {
            (0..100)
                .map(|i| fit.cardinality(i as f64 / 100.0))
                .sum::<f64>()
        })
    });
    group.bench_function("execute_restricted_view_s0_5", |b| {
        b.iter(|| fj_bench::repro::fig4_cardinality::actual_cardinality(&catalog, 500, 0.5))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
