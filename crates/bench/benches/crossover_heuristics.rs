//! Criterion bench for the C2 crossover experiment (one selective and
//! one unselective point of the policy sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::repro::fig1_magic;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossover_heuristics");
    group.sample_size(10);
    group.bench_function("sweep_two_points_3000x300", |b| {
        b.iter(|| fig1_magic::sweep(3000, 300, &[0.05, 1.0]).len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
