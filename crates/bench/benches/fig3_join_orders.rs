//! Criterion bench for Figure 3: pricing all six join orders of the
//! motivating query (optimize + execute each).

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::repro::fig3_orders;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_join_orders");
    group.sample_size(10);
    group.bench_function("all_six_orders_2000x200", |b| {
        b.iter(|| fig3_orders::all_orders(2000, 200, 0.1).len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
