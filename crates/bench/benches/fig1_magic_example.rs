//! Criterion bench for the Figures 1–2 experiment: executes the
//! motivating query under the three policies at a selective and an
//! unselective instance.

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::workloads::{emp_dept, paper_query, EmpDeptConfig};
use fj_core::{Database, Sips};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_magic_example");
    group.sample_size(10);
    for frac in [0.02, 1.0] {
        let cat = emp_dept(EmpDeptConfig {
            n_emps: 4000,
            n_depts: 400,
            frac_big: frac,
            ..Default::default()
        });
        let db = Database::with_catalog(cat);
        let q = paper_query();
        let sips =
            Sips::derive(db.catalog(), &q, &["E".to_string(), "D".to_string()], "V").unwrap();
        group.bench_function(format!("naive_frac{frac}"), |b| {
            b.iter(|| db.run_logical(&q.to_plan()).unwrap().rows.len())
        });
        group.bench_function(format!("always_magic_frac{frac}"), |b| {
            b.iter(|| db.run_magic(&q, &sips).unwrap().rows.len())
        });
        group.bench_function(format!("cost_based_frac{frac}"), |b| {
            b.iter(|| db.execute(&q).unwrap().rows.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
