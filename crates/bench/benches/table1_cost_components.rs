//! Criterion bench for Table 1: the staged Filter Join (all seven
//! phases, predicted + measured).

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::repro::table1_components;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_cost_components");
    group.sample_size(10);
    group.bench_function("staged_filter_join_4000x400", |b| {
        b.iter(|| table1_components::staged(4000, 400, 0.1).len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
