//! Criterion bench for Figure 6: the full technique × relation-kind
//! matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::repro::fig6_taxonomy;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_taxonomy");
    group.sample_size(10);
    group.bench_function("full_matrix", |b| {
        b.iter(|| fig6_taxonomy::matrix().2.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
