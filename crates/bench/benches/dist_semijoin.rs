//! Criterion bench for D1 (§5.1): the four distributed strategies on a
//! LAN-weighted two-site join.

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::workloads::orders_customers;
use fj_core::distsim::{run_strategy, DistStrategy, TwoSiteScenario};
use fj_core::NetworkModel;

fn bench(c: &mut Criterion) {
    let (orders, mut customers) = orders_customers(500, 5000, 25, 23);
    customers.create_hash_index(0).unwrap();
    let scenario = TwoSiteScenario::new(
        orders.into_ref(),
        customers.into_ref(),
        "cust",
        "cust",
        NetworkModel::lan(),
    );
    let mut group = c.benchmark_group("dist_semijoin");
    group.sample_size(10);
    for s in DistStrategy::ALL {
        group.bench_function(s.name().replace(' ', "_"), |b| {
            b.iter(|| run_strategy(&scenario, s).unwrap().rows.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
