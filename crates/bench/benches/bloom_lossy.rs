//! Criterion bench for B1: exact vs Bloom filter sets on a WAN.

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::repro::bloom;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom_lossy");
    group.sample_size(10);
    group.bench_function("exact_plus_two_blooms_500x5000", |b| {
        b.iter(|| bloom::sweep(500, 5000, 20, &[256, 4096]).len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
