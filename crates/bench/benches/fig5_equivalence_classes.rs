//! Criterion bench for Figure 5: the equivalence-class knob (fit effort
//! at 2 vs 16 classes).

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::workloads::{emp_dept, EmpDeptConfig};
use fj_core::optimizer::parametric::ParametricFit;
use fj_core::CostParams;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let catalog = Arc::new(emp_dept(EmpDeptConfig {
        n_emps: 4000,
        n_depts: 400,
        ..Default::default()
    }));
    let mut group = c.benchmark_group("fig5_equivalence_classes");
    group.sample_size(10);
    for classes in [2usize, 4, 16] {
        group.bench_function(format!("fit_{classes}_classes"), |b| {
            b.iter(|| {
                let mut n = 0;
                ParametricFit::fit(
                    &catalog,
                    CostParams::default(),
                    "DepAvgSal",
                    &["did".to_string()],
                    classes,
                    &mut n,
                )
                .unwrap()
                .points
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
