//! Criterion bench for query-service throughput: a batch of Figure-1
//! queries pushed through the `fj-runtime` worker pool at 1, 2, and 4
//! workers. Each iteration submits the whole batch and waits for every
//! ticket, so the measured time is batch wall-clock (lower = higher
//! queries/sec). Speedup across worker counts is bounded by the
//! machine's physical cores.

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::workloads::{emp_dept, paper_query, EmpDeptConfig};
use fj_runtime::{QueryService, ServiceConfig};

const BATCH: usize = 32;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let cat = emp_dept(EmpDeptConfig {
            n_emps: 4000,
            n_depts: 400,
            frac_big: 0.1,
            ..Default::default()
        });
        let service = QueryService::start(
            cat,
            ServiceConfig {
                workers,
                queue_capacity: BATCH,
                ..ServiceConfig::default()
            },
        );
        let q = paper_query();
        service.execute(q.clone()).expect("warm-up query runs");
        group.bench_function(format!("batch{BATCH}_workers{workers}"), |b| {
            b.iter(|| {
                let tickets: Vec<_> = (0..BATCH)
                    .map(|_| service.submit(q.clone()).expect("service accepts"))
                    .collect();
                tickets
                    .into_iter()
                    .map(|t| t.wait().expect("query completes").rows.len())
                    .sum::<usize>()
            })
        });
        service.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
