//! Criterion bench for the §3.3 complexity claim: optimization time
//! with and without the Filter Join as N grows.

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::workloads::chain;
use fj_core::{Optimizer, OptimizerConfig};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_complexity");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let (cat, q) = chain(n, 100, 5);
        let cat = Arc::new(cat);
        let off = Optimizer::new(Arc::clone(&cat), OptimizerConfig::without_filter_join());
        let on = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default());
        group.bench_function(format!("n{n}_fj_off"), |b| {
            b.iter(|| off.optimize(&q).unwrap().plans_considered)
        });
        group.bench_function(format!("n{n}_fj_on"), |b| {
            b.iter(|| on.optimize(&q).unwrap().plans_considered)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
