//! Criterion bench for L1 (§5.3): the local semi-join against the
//! classic join methods under memory pressure.

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::repro::local_semijoin;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_semijoin");
    group.sample_size(10);
    group.bench_function("four_methods_2000x10000", |b| {
        b.iter(|| local_semijoin::methods(2000, 10_000, 20, 8).0.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
