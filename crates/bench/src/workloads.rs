//! Deterministic workload generators for the reproduction experiments.

use fj_core::{col, fixtures, lit, Catalog, DataType, FromItem, JoinQuery, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the scaled Emp/Dept instance behind the motivating
/// query (Figures 1–2).
#[derive(Debug, Clone, Copy)]
pub struct EmpDeptConfig {
    /// Employees.
    pub n_emps: usize,
    /// Departments.
    pub n_depts: usize,
    /// Fraction of departments that are "big" (budget > 100 000).
    pub frac_big: f64,
    /// Fraction of employees that are "young" (age < 30).
    pub frac_young: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmpDeptConfig {
    fn default() -> Self {
        EmpDeptConfig {
            n_emps: 20_000,
            n_depts: 1_000,
            frac_big: 0.1,
            frac_young: 0.3,
            seed: 42,
        }
    }
}

/// Builds the scaled paper schema: `Emp(eid, did, sal, age)`,
/// `Dept(did, budget)`, and the `DepAvgSal` view. The fraction of
/// departments that can contribute to the filter set is
/// `frac_big` (budget) ∩ departments with young employees —
/// sweeping `frac_big` sweeps the filter-set selectivity.
pub fn emp_dept(cfg: EmpDeptConfig) -> Catalog {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cat = Catalog::new();

    let n_big = ((cfg.n_depts as f64) * cfg.frac_big).round() as usize;
    let dept_rows = (0..cfg.n_depts).map(|d| {
        let budget = if d < n_big {
            150_000.0 + rng.gen_range(0.0..100_000.0)
        } else {
            20_000.0 + rng.gen_range(0.0..60_000.0)
        };
        vec![Value::Int(d as i64), Value::Double(budget)]
    });
    cat.add_table(
        TableBuilder::new("Dept")
            .column("did", DataType::Int)
            .column("budget", DataType::Double)
            .rows(dept_rows)
            .build()
            .expect("generated Dept conforms")
            .into_ref(),
    );

    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let emp_rows = (0..cfg.n_emps).map(|e| {
        let did = rng.gen_range(0..cfg.n_depts) as i64;
        let age = if rng.gen_bool(cfg.frac_young) {
            rng.gen_range(21..30)
        } else {
            rng.gen_range(30..65)
        };
        let sal = 1_000.0 + rng.gen_range(0.0..9_000.0);
        vec![
            Value::Int(e as i64),
            Value::Int(did),
            Value::Double(sal),
            Value::Int(age),
        ]
    });
    cat.add_table(
        TableBuilder::new("Emp")
            .column("eid", DataType::Int)
            .column("did", DataType::Int)
            .column("sal", DataType::Double)
            .column("age", DataType::Int)
            .rows(emp_rows)
            .build()
            .expect("generated Emp conforms")
            .into_ref(),
    );

    fixtures::add_dep_avg_sal_view(&mut cat);
    cat
}

/// The Figure 1 query (identical text at every scale).
pub fn paper_query() -> JoinQuery {
    fixtures::paper_query()
}

/// A chain query over `n` relations `T0 ⋈ T1 ⋈ ... ⋈ T(n−1)` on
/// `Ti.next = T(i+1).id`, each with `rows` rows — the C1 complexity
/// workload.
pub fn chain(n: usize, rows: usize, seed: u64) -> (Catalog, JoinQuery) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    for t in 0..n {
        let table_rows = (0..rows).map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..rows) as i64),
                Value::Int(rng.gen_range(0..100)),
            ]
        });
        cat.add_table(
            TableBuilder::new(format!("T{t}"))
                .column("id", DataType::Int)
                .column("next", DataType::Int)
                .column("payload", DataType::Int)
                .rows(table_rows)
                .build()
                .expect("generated chain table conforms")
                .into_ref(),
        );
    }
    let from: Vec<FromItem> = (0..n)
        .map(|t| FromItem::new(format!("T{t}"), format!("t{t}")))
        .collect();
    let pred = (0..n - 1)
        .map(|t| col(format!("t{t}.next")).eq(col(format!("t{}.id", t + 1))))
        .reduce(|a, b| a.and(b));
    let mut q = JoinQuery::new(from);
    if let Some(p) = pred {
        q = q.with_predicate(p);
    }
    (cat, q)
}

/// A star query: one fact table joined to `n − 1` dimension tables.
pub fn star(n: usize, fact_rows: usize, dim_rows: usize, seed: u64) -> (Catalog, JoinQuery) {
    assert!(n >= 2, "a star needs a fact and at least one dimension");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    let dims = n - 1;
    let fact = (0..fact_rows).map(|i| {
        let mut row = vec![Value::Int(i as i64)];
        for _ in 0..dims {
            row.push(Value::Int(rng.gen_range(0..dim_rows) as i64));
        }
        row
    });
    let mut fb = TableBuilder::new("Fact").column("fid", DataType::Int);
    for d in 0..dims {
        fb = fb.column(format!("d{d}"), DataType::Int);
    }
    cat.add_table(
        fb.rows(fact)
            .build()
            .expect("generated fact conforms")
            .into_ref(),
    );
    for d in 0..dims {
        let rows =
            (0..dim_rows).map(|i| vec![Value::Int(i as i64), Value::Int(rng.gen_range(0..50))]);
        cat.add_table(
            TableBuilder::new(format!("Dim{d}"))
                .column("id", DataType::Int)
                .column("attr", DataType::Int)
                .rows(rows)
                .build()
                .expect("generated dim conforms")
                .into_ref(),
        );
    }
    let mut from = vec![FromItem::new("Fact", "f")];
    from.extend((0..dims).map(|d| FromItem::new(format!("Dim{d}"), format!("d{d}"))));
    let pred = (0..dims)
        .map(|d| col(format!("f.d{d}")).eq(col(format!("d{d}.id"))))
        .reduce(|a, b| a.and(b))
        .expect("dims >= 1");
    (cat, JoinQuery::new(from).with_predicate(pred))
}

/// The [`star`] workload with a selective local predicate
/// `dK.attr < attr_lt` on every dimension (`attr` is uniform over
/// `0..50`, so `attr_lt = 15` keeps ~30% of each dimension). Selective
/// dimensions are what make join-tree *shape* matter: pre-joining the
/// filtered dimensions into one small build side lets a bushy plan
/// probe the fact exactly once, where a left-deep chain either probes
/// it once per dimension or Grace-partitions a fact-sized build.
pub fn star_selective(
    n: usize,
    fact_rows: usize,
    dim_rows: usize,
    attr_lt: i64,
    seed: u64,
) -> (Catalog, JoinQuery) {
    let (cat, mut q) = star(n, fact_rows, dim_rows, seed);
    let extra = (0..n - 1)
        .map(|d| col(format!("d{d}.attr")).lt(lit(attr_lt)))
        .reduce(|a, b| a.and(b))
        .expect("dims >= 1");
    let pred = match q.predicate.take() {
        Some(p) => p.and(extra),
        None => extra,
    };
    (cat, q.with_predicate(pred))
}

/// A snowflake query: one fact table joined to `dims` dimensions, each
/// of which is joined onward to its own sub-dimension carrying a
/// selective predicate `sK.attr < attr_lt` (`attr` uniform over
/// `0..50`). The `DimK ⋈ σ(SubK)` arms are connected subgraphs that do
/// not contain the fact — the canonical shape where only a bushy
/// enumerator can reduce each dimension before it ever touches the
/// fact table.
pub fn snowflake(
    dims: usize,
    fact_rows: usize,
    dim_rows: usize,
    sub_rows: usize,
    attr_lt: i64,
    seed: u64,
) -> (Catalog, JoinQuery) {
    assert!(dims >= 1, "a snowflake needs at least one dimension arm");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    let fact = (0..fact_rows).map(|i| {
        let mut row = vec![Value::Int(i as i64)];
        for _ in 0..dims {
            row.push(Value::Int(rng.gen_range(0..dim_rows) as i64));
        }
        row
    });
    let mut fb = TableBuilder::new("Fact").column("fid", DataType::Int);
    for d in 0..dims {
        fb = fb.column(format!("d{d}"), DataType::Int);
    }
    cat.add_table(
        fb.rows(fact)
            .build()
            .expect("generated fact conforms")
            .into_ref(),
    );
    for d in 0..dims {
        let dim_table = (0..dim_rows).map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..sub_rows) as i64),
            ]
        });
        cat.add_table(
            TableBuilder::new(format!("Dim{d}"))
                .column("id", DataType::Int)
                .column("sub", DataType::Int)
                .rows(dim_table)
                .build()
                .expect("generated dim conforms")
                .into_ref(),
        );
        let sub_table =
            (0..sub_rows).map(|i| vec![Value::Int(i as i64), Value::Int(rng.gen_range(0..50))]);
        cat.add_table(
            TableBuilder::new(format!("Sub{d}"))
                .column("id", DataType::Int)
                .column("attr", DataType::Int)
                .rows(sub_table)
                .build()
                .expect("generated sub-dim conforms")
                .into_ref(),
        );
    }
    let mut from = vec![FromItem::new("Fact", "f")];
    for d in 0..dims {
        from.push(FromItem::new(format!("Dim{d}"), format!("d{d}")));
        from.push(FromItem::new(format!("Sub{d}"), format!("s{d}")));
    }
    let pred = (0..dims)
        .flat_map(|d| {
            [
                col(format!("f.d{d}")).eq(col(format!("d{d}.id"))),
                col(format!("d{d}.sub")).eq(col(format!("s{d}.id"))),
                col(format!("s{d}.attr")).lt(lit(attr_lt)),
            ]
        })
        .reduce(|a, b| a.and(b))
        .expect("dims >= 1");
    (cat, JoinQuery::new(from).with_predicate(pred))
}

/// A two-table orders/customers instance where only `referenced`
/// customers appear in orders — the filter-set-selectivity workload for
/// the distributed and local semi-join experiments.
pub fn orders_customers(
    n_orders: usize,
    n_customers: usize,
    referenced: usize,
    seed: u64,
) -> (fj_core::storage::Table, fj_core::storage::Table) {
    let mut rng = StdRng::seed_from_u64(seed);
    let referenced = referenced.clamp(1, n_customers);
    let orders = TableBuilder::new("Orders")
        .column("cust", DataType::Int)
        .column("amount", DataType::Double)
        .rows((0..n_orders).map(|_| {
            vec![
                Value::Int(rng.gen_range(0..referenced) as i64),
                Value::Double(rng.gen_range(1.0..1000.0)),
            ]
        }))
        .build()
        .expect("generated Orders conforms");
    let customers = TableBuilder::new("Customers")
        .column("cust", DataType::Int)
        .column("region", DataType::Int)
        .column("score", DataType::Double)
        .rows((0..n_customers).map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..10)),
                Value::Double(rng.gen_range(0.0..1.0)),
            ]
        }))
        .build()
        .expect("generated Customers conforms");
    (orders, customers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_core::Database;

    #[test]
    fn emp_dept_is_deterministic_and_valid() {
        let cfg = EmpDeptConfig {
            n_emps: 500,
            n_depts: 50,
            ..Default::default()
        };
        let a = emp_dept(cfg);
        let b = emp_dept(cfg);
        assert_eq!(
            a.table("Emp").unwrap().rows(),
            b.table("Emp").unwrap().rows()
        );
        paper_query().validate(&a).unwrap();
        let big = a
            .table("Dept")
            .unwrap()
            .rows()
            .iter()
            .filter(|t| t.value(1).as_double().unwrap() > 100_000.0)
            .count();
        assert_eq!(big, 5, "frac_big respected");
    }

    #[test]
    fn emp_dept_query_runs() {
        let cat = emp_dept(EmpDeptConfig {
            n_emps: 300,
            n_depts: 30,
            ..Default::default()
        });
        let db = Database::with_catalog(cat);
        let r = db.execute(&paper_query()).unwrap();
        // Some young above-average employees in big departments exist.
        assert!(!r.rows.is_empty());
    }

    #[test]
    fn chain_query_valid_and_joins() {
        let (cat, q) = chain(4, 50, 7);
        q.validate(&cat).unwrap();
        let db = Database::with_catalog(cat);
        assert!(db.execute(&q).is_ok());
    }

    #[test]
    fn star_query_valid() {
        let (cat, q) = star(4, 200, 20, 7);
        q.validate(&cat).unwrap();
        let db = Database::with_catalog(cat);
        let r = db.execute(&q).unwrap();
        assert_eq!(r.rows.len(), 200, "every fact row matches its dims");
    }

    #[test]
    fn orders_customers_reference_subset() {
        let (orders, customers) = orders_customers(100, 1000, 10, 3);
        assert_eq!(orders.row_count(), 100);
        assert_eq!(customers.row_count(), 1000);
        let max_cust = orders
            .rows()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .max()
            .unwrap();
        assert!(max_cust < 10);
    }
}
