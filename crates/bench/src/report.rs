//! Minimal fixed-width table rendering for experiment reports.

use std::fmt;

/// A printable experiment report: a title, column headers, and rows of
/// stringified cells.
#[derive(Debug, Clone)]
pub struct Report {
    /// Report title (e.g. `"Figure 4: restricted-view cardinality"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row must match `headers.len()`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Report {
    /// Starts a report.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Report {
        Report {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (panics on arity mismatch — reports are
    /// programmer-constructed).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "report row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// A cell from anything displayable.
    pub fn cell(v: impl fmt::Display) -> String {
        v.to_string()
    }

    /// A numeric cell with fixed precision.
    pub fn num(v: f64) -> String {
        if v.abs() >= 1000.0 {
            format!("{v:.0}")
        } else {
            format!("{v:.2}")
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("T", &["a", "bbbb"]);
        r.row(vec!["1".into(), "2".into()]);
        r.row(vec!["100".into(), "2000000".into()]);
        r.note("shape holds");
        let s = r.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("note: shape holds"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len(), "aligned columns");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = Report::new("T", &["a"]);
        r.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn num_formatting() {
        assert_eq!(Report::num(4.51159), "4.51");
        assert_eq!(Report::num(123456.7), "123457");
    }
}
