//! Prints every reproduced figure/table as a paper-style text table.
//!
//! ```text
//! reproduce [all|fig1|fig3|table1|fig4|fig5|fig6|complexity|crossover|dist|udf|local|bloom]
//!           [--small]
//! ```
//!
//! `--small` runs reduced instance sizes (used in CI); the default
//! sizes match `EXPERIMENTS.md`.

use fj_bench::repro;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let which = if which.is_empty() || which.contains(&"all") {
        vec![
            "fig1", "fig3", "table1", "fig4", "fig5", "fig6", "complexity", "crossover",
            "dist", "udf", "local", "bloom",
        ]
    } else {
        which
    };

    // (emps, depts) for the Emp/Dept experiments.
    let (e, d) = if small { (3_000, 300) } else { (20_000, 1_000) };

    for w in which {
        let report = match w {
            "fig1" => repro::fig1_magic::run(e, d),
            "fig3" => repro::fig3_orders::run(e, d),
            "table1" => repro::table1_components::run(e, d),
            "fig4" => repro::fig4_cardinality::run(e, d),
            "fig5" => repro::fig5_classes::run(e, d),
            "fig6" => repro::fig6_taxonomy::run(),
            "complexity" => repro::complexity::run(if small { 7 } else { 10 }),
            "crossover" => repro::crossover::run(e, d),
            "dist" => {
                if small {
                    repro::dist::run(500, 5_000, 25)
                } else {
                    repro::dist::run(2_000, 50_000, 100)
                }
            }
            "udf" => {
                if small {
                    repro::udf::run(2_000, 50)
                } else {
                    repro::udf::run(20_000, 200)
                }
            }
            "local" => {
                if small {
                    repro::local_semijoin::run(2_000, 10_000, 20)
                } else {
                    repro::local_semijoin::run(10_000, 100_000, 50)
                }
            }
            "bloom" => {
                if small {
                    repro::bloom::run(500, 5_000, 20)
                } else {
                    repro::bloom::run(5_000, 50_000, 100)
                }
            }
            other => {
                eprintln!("unknown experiment '{other}'");
                std::process::exit(2);
            }
        };
        println!("{report}");
    }
}
