//! Prints every reproduced figure/table as a paper-style text table.
//!
//! ```text
//! reproduce [all|fig1|fig3|table1|fig4|fig5|fig6|complexity|crossover|bushy|dist|dist-wire|udf|local|bloom|throughput|trace-overhead|soak|chaos|cluster-chaos|recovery-chaos|mutation-chaos|memory-chaos]
//!           [--small] [--threads N]
//! ```
//!
//! `--small` runs reduced instance sizes (used in CI); the default
//! sizes match `EXPERIMENTS.md`. `--threads N` sets the worker-pool
//! size the `throughput` experiment compares against a single thread
//! (default 4); the experiment prints 1-thread vs N-thread queries/sec
//! and the speedup.

use fj_bench::repro;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--threads expects a positive integer, got '{v}'");
                std::process::exit(2);
            })
        })
        .unwrap_or(4)
        .max(1);
    let mut skip_next = false;
    let which: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--threads" {
                skip_next = true; // also drop its value
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    let which = if which.is_empty() || which.contains(&"all") {
        vec![
            "fig1",
            "fig3",
            "table1",
            "fig4",
            "fig5",
            "fig6",
            "complexity",
            "crossover",
            "bushy",
            "dist",
            "dist-wire",
            "udf",
            "local",
            "bloom",
            "throughput",
            "trace-overhead",
            "soak",
            "chaos",
            "cluster-chaos",
            "recovery-chaos",
            "mutation-chaos",
            "memory-chaos",
        ]
    } else {
        which
    };

    // (emps, depts) for the Emp/Dept experiments.
    let (e, d) = if small { (3_000, 300) } else { (20_000, 1_000) };

    for w in which {
        let report = match w {
            "fig1" => repro::fig1_magic::run(e, d),
            "fig3" => repro::fig3_orders::run(e, d),
            "table1" => repro::table1_components::run(e, d),
            "fig4" => repro::fig4_cardinality::run(e, d),
            "fig5" => repro::fig5_classes::run(e, d),
            "fig6" => repro::fig6_taxonomy::run(),
            "complexity" => repro::complexity::run(if small { 7 } else { 10 }),
            "crossover" => repro::crossover::run(e, d),
            "bushy" => {
                if small {
                    repro::bushy::run(20_000, 400, 60)
                } else {
                    repro::bushy::run(120_000, 1_000, 150)
                }
            }
            "dist" => {
                if small {
                    repro::dist::run(500, 5_000, 25)
                } else {
                    repro::dist::run(2_000, 50_000, 100)
                }
            }
            "dist-wire" => {
                if small {
                    repro::dist::run_wire(500, 5_000, 25, 3)
                } else {
                    repro::dist::run_wire(2_000, 20_000, 100, 3)
                }
            }
            "udf" => {
                if small {
                    repro::udf::run(2_000, 50)
                } else {
                    repro::udf::run(20_000, 200)
                }
            }
            "local" => {
                if small {
                    repro::local_semijoin::run(2_000, 10_000, 20)
                } else {
                    repro::local_semijoin::run(10_000, 100_000, 50)
                }
            }
            "bloom" => {
                if small {
                    repro::bloom::run(500, 5_000, 20)
                } else {
                    repro::bloom::run(5_000, 50_000, 100)
                }
            }
            "throughput" => {
                if small {
                    repro::throughput::run(1_000, 100, threads, 64)
                } else {
                    repro::throughput::run(5_000, 500, threads, 256)
                }
            }
            "trace-overhead" => {
                if small {
                    repro::trace_overhead::run(1_000, 100, 10)
                } else {
                    repro::trace_overhead::run(5_000, 500, 25)
                }
            }
            "soak" => {
                if small {
                    repro::soak::run(1_000, 100, 8, 25)
                } else {
                    repro::soak::run(5_000, 500, 16, 50)
                }
            }
            "chaos" => {
                if small {
                    repro::chaos::run(1_000, 100, 8, 12)
                } else {
                    repro::chaos::run(5_000, 500, 32, 25)
                }
            }
            "cluster-chaos" => {
                if small {
                    repro::cluster_chaos::run(1_000, 100, 6, 12)
                } else {
                    repro::cluster_chaos::run(5_000, 500, 16, 25)
                }
            }
            "recovery-chaos" => {
                if small {
                    repro::recovery_chaos::run(1_000, 100, 4, 12)
                } else {
                    repro::recovery_chaos::run(5_000, 500, 12, 25)
                }
            }
            "mutation-chaos" => {
                if small {
                    repro::mutation_chaos::run(1_000, 100, 4, 12)
                } else {
                    repro::mutation_chaos::run(5_000, 500, 12, 25)
                }
            }
            "memory-chaos" => {
                if small {
                    repro::memory_chaos::run(2_000, 4, 12)
                } else {
                    repro::memory_chaos::run(8_000, 8, 25)
                }
            }
            other => {
                eprintln!("unknown experiment '{other}'");
                std::process::exit(2);
            }
        };
        println!("{report}");
    }
}
