//! # fj-bench
//!
//! The reproduction harness: for **every figure and table** of the
//! paper (and its two analytic claims), a module that regenerates the
//! artifact as a measured experiment. See `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured notes.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`repro::fig1_magic`] | Figures 1–2: the motivating query, naive vs magic vs cost-based |
//! | [`repro::fig3_orders`] | Figure 3: the six join orders and the SIPS each induces |
//! | [`repro::table1_components`] | Table 1: predicted vs measured cost components |
//! | [`repro::fig4_cardinality`] | Figure 4: straight-line fit of restricted-view cardinality |
//! | [`repro::fig5_classes`] | Figure 5: equivalence-class count knob (accuracy vs effort) |
//! | [`repro::fig6_taxonomy`] | Figure 6: join-technique × relation-kind cost matrix |
//! | [`repro::complexity`] | §3.3 claim: optimizer complexity unchanged by the Filter Join |
//! | [`repro::crossover`] | §2.1 claim: cost-based beats always/never-magic heuristics |
//! | [`repro::dist`] | §5.1: SDD-1 semi-join vs System R* fetch strategies |
//! | [`repro::udf`] | §5.2: UDF invocation strategies, no duplicate invocations |
//! | [`repro::local_semijoin`] | §5.3: the local semi-join's two-scans-plus-one claim |
//! | [`repro::bloom`] | §3.2/App. A: lossy (Bloom) filter sets |
//! | [`repro::throughput`] | runtime: worker-pool queries/sec, 1 vs N threads |
//! | [`repro::soak`] | fj-net: TCP loopback soak with shedding and verified row-sets |
//! | [`repro::chaos`] | governor: the soak under seeded faults, cancellations, and one induced worker panic |
//!
//! The `reproduce` binary prints each experiment as a paper-style
//! table; the Criterion benches in `benches/` time the same code at
//! reduced sizes.

pub mod report;
pub mod repro;
pub mod workloads;
