//! D1 — §5.1: semi-join vs fetch strategies in a distributed DBMS, as
//! the communication/local cost ratio sweeps.
//!
//! SDD-1's assumption (communication dominates) makes the semi-join the
//! only method; System R*'s critique (local processing matters) made it
//! drop semi-joins entirely. The paper's position is that a cost model
//! should arbitrate. This experiment reproduces both regimes and shows
//! the cost-based optimizer switching strategies at the right network
//! weight.

use crate::report::Report;
use crate::workloads::orders_customers;
use fj_core::distsim::{run_strategy, DistStrategy, TwoSiteScenario};
use fj_core::{col, Database, FromItem, JoinQuery, NetworkModel};

/// One network-weight point: strategy costs plus the optimizer's pick.
#[derive(Debug, Clone)]
pub struct DistPoint {
    /// Multiplier over the LAN per-byte cost.
    pub net_scale: f64,
    /// Measured cost per strategy, in [`DistStrategy::ALL`] order.
    pub costs: [f64; 4],
    /// What the cost-based optimizer chose ("filter join" or
    /// "fetch inner").
    pub optimizer_choice: &'static str,
}

/// Sweeps the network weight.
pub fn sweep(n_orders: usize, n_customers: usize, referenced: usize) -> Vec<DistPoint> {
    [0.0, 0.1, 1.0, 10.0, 100.0]
        .iter()
        .map(|&net_scale| {
            let (orders, mut customers) = orders_customers(n_orders, n_customers, referenced, 23);
            customers.create_hash_index(0).expect("index on cust");
            let network = NetworkModel {
                per_message: 1.0 * net_scale,
                per_byte: (2.0 / 4096.0) * net_scale,
            };
            let scenario = TwoSiteScenario::new(
                orders.into_ref(),
                customers.into_ref(),
                "cust",
                "cust",
                network,
            );
            let mut costs = [0.0; 4];
            for (i, s) in DistStrategy::ALL.iter().enumerate() {
                costs[i] = run_strategy(&scenario, *s).expect("strategy runs").cost;
            }

            // The optimizer's verdict on the same join.
            let mut db = Database::with_catalog((*scenario.catalog).clone());
            db.set_network(network);
            let q = JoinQuery::new(vec![
                FromItem::new("Orders", "O"),
                FromItem::new("Customers", "C"),
            ])
            .with_predicate(col("O.cust").eq(col("C.cust")));
            let plan = db.optimize(&q).expect("optimizes");
            let optimizer_choice = if plan.sips.is_empty() {
                "fetch inner"
            } else {
                "filter join"
            };
            DistPoint {
                net_scale,
                costs,
                optimizer_choice,
            }
        })
        .collect()
}

/// The printable report.
pub fn run(n_orders: usize, n_customers: usize, referenced: usize) -> Report {
    let pts = sweep(n_orders, n_customers, referenced);
    let mut r = Report::new(
        format!(
            "D1 (§5.1): distributed strategies vs network weight ({n_orders} orders, {n_customers} customers, {referenced} referenced)"
        ),
        &[
            "net scale",
            "fetch-inner",
            "fetch-matches",
            "semi-join",
            "bloom semi-join",
            "optimizer picks",
        ],
    );
    for p in &pts {
        r.row(vec![
            format!("{}", p.net_scale),
            Report::num(p.costs[0]),
            Report::num(p.costs[1]),
            Report::num(p.costs[2]),
            Report::num(p.costs[3]),
            p.optimizer_choice.into(),
        ]);
    }
    r.note("cheap network: fetch-inner competitive (R* regime); expensive network: semi-join wins (SDD-1 regime)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_reproduce() {
        let pts = sweep(500, 5000, 25);
        let free = &pts[0];
        let wan = pts.last().unwrap();
        // Free network: fetch-inner is at least as cheap as semi-join.
        assert!(
            free.costs[0] <= free.costs[2] * 1.05,
            "free network: fetch {} vs semi {}",
            free.costs[0],
            free.costs[2]
        );
        // Expensive network: semi-join decisively cheaper.
        assert!(
            wan.costs[2] < wan.costs[0] * 0.5,
            "wan: semi {} vs fetch {}",
            wan.costs[2],
            wan.costs[0]
        );
    }

    #[test]
    fn optimizer_switches_with_network() {
        let pts = sweep(500, 5000, 25);
        assert_eq!(
            pts.last().unwrap().optimizer_choice,
            "filter join",
            "expensive network should push the optimizer to the semi-join"
        );
    }
}

// ------------------- D1b: predicted vs measured wire ----------------

use fj_cluster::ShardMap;
use fj_core::Catalog;
use fj_dist::{DistConfig, DistCoordinator, ShipStrategy};
use fj_net::{Server, ServerConfig};
use std::time::Instant;

/// One shipping strategy run against real shard servers: what the
/// distsim-style cost model predicted, and what the wire measured.
#[derive(Debug, Clone)]
pub struct WirePoint {
    /// The strategy measured.
    pub strategy: ShipStrategy,
    /// Messages the cost model predicted.
    pub predicted_messages: f64,
    /// Payload bytes the cost model predicted.
    pub predicted_bytes: f64,
    /// Request frames actually sent.
    pub actual_messages: u64,
    /// Bytes actually on the wire, both directions, headers included.
    pub actual_bytes: u64,
    /// Result rows (identical across strategies by construction).
    pub rows: usize,
    /// Wall-clock for the distributed run.
    pub micros: u128,
}

/// Runs every shipping strategy over a real `shards`-server fleet on
/// loopback and pairs the distsim-style prediction with measured wire
/// traffic.
pub fn measure_wire(
    n_orders: usize,
    n_customers: usize,
    referenced: usize,
    shards: u32,
) -> Vec<WirePoint> {
    let (orders, mut customers) = orders_customers(n_orders, n_customers, referenced, 23);
    customers.create_hash_index(0).expect("index on cust");
    let mut cat = Catalog::new();
    cat.add_table(orders.into_ref());
    cat.add_table(customers.into_ref());
    let q = JoinQuery::new(vec![
        FromItem::new("Orders", "O"),
        FromItem::new("Customers", "C"),
    ])
    .with_predicate(col("O.cust").eq(col("C.cust")));

    let servers: Vec<Server> = (0..shards)
        .map(|_| Server::bind("127.0.0.1:0", Catalog::new(), ServerConfig::default()).unwrap())
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();
    let coord =
        DistCoordinator::deploy(cat, ShardMap::new(&addrs, shards, 1), DistConfig::default())
            .expect("deploy");

    ShipStrategy::ALL
        .into_iter()
        .map(|strategy| {
            let started = Instant::now();
            let out = coord
                .execute_with_config(&q, Default::default(), strategy)
                .expect("distributed run");
            let micros = started.elapsed().as_micros();
            let (pm, pb) = out
                .predicted
                .map(|p| (p.messages, p.bytes))
                .unwrap_or((f64::NAN, f64::NAN));
            WirePoint {
                strategy,
                predicted_messages: pm,
                predicted_bytes: pb,
                actual_messages: out.stats.messages,
                actual_bytes: out.stats.total_bytes(),
                rows: out.result.rows.len(),
                micros,
            }
        })
        .collect()
}

/// The printable D1b report: reconciliation of predicted message/byte
/// costs against bytes measured on a real 3-shard wire.
pub fn run_wire(n_orders: usize, n_customers: usize, referenced: usize, shards: u32) -> Report {
    let pts = measure_wire(n_orders, n_customers, referenced, shards);
    let mut r = Report::new(
        format!(
            "D1b (§5.1 on the wire): predicted vs measured shipping over {shards} shards ({n_orders} orders, {n_customers} customers, {referenced} referenced)"
        ),
        &[
            "strategy",
            "pred msgs",
            "actual msgs",
            "pred KB",
            "actual KB",
            "vs ship-whole",
            "ms",
        ],
    );
    let whole_bytes = pts
        .iter()
        .find(|p| p.strategy == ShipStrategy::ShipWhole)
        .map(|p| p.actual_bytes as f64)
        .unwrap_or(f64::NAN);
    for p in &pts {
        r.row(vec![
            p.strategy.name().into(),
            Report::num(p.predicted_messages),
            format!("{}", p.actual_messages),
            Report::num(p.predicted_bytes / 1024.0),
            Report::num(p.actual_bytes as f64 / 1024.0),
            format!("{:.2}x", p.actual_bytes as f64 / whole_bytes),
            format!("{:.1}", p.micros as f64 / 1000.0),
        ]);
    }
    r.note("predictions use the optimizer's containment assumption and count payload only; the wire adds 5-byte frame headers, partition-table names, schemas and the hidden ordinal column, so actuals run a small constant factor higher");
    r.note("fetch-matches trades messages for bytes (one keyed fragment per distinct driver key); the semijoin program ships each key set once per shard; the full reducer pays two key sweeps to gather only contributing rows");
    r
}

#[cfg(test)]
mod wire_tests {
    use super::*;

    #[test]
    fn semijoin_ships_fewer_bytes_than_ship_whole_on_the_wire() {
        let pts = measure_wire(300, 3_000, 20, 3);
        let by = |s: ShipStrategy| pts.iter().find(|p| p.strategy == s).unwrap().actual_bytes;
        let whole = by(ShipStrategy::ShipWhole);
        assert!(
            by(ShipStrategy::Semijoin) < whole,
            "semijoin {} vs ship-whole {}",
            by(ShipStrategy::Semijoin),
            whole
        );
        assert!(
            by(ShipStrategy::BloomSemijoin) < whole,
            "bloom {} vs ship-whole {}",
            by(ShipStrategy::BloomSemijoin),
            whole
        );
        assert!(
            by(ShipStrategy::FullReducer) < whole,
            "full-reducer {} vs ship-whole {}",
            by(ShipStrategy::FullReducer),
            whole
        );
        // Every strategy returned the same answer.
        let rows: Vec<usize> = pts.iter().map(|p| p.rows).collect();
        assert!(
            rows.windows(2).all(|w| w[0] == w[1]),
            "rows diverged: {rows:?}"
        );
    }

    #[test]
    fn predictions_track_measured_magnitudes() {
        let pts = measure_wire(300, 3_000, 20, 3);
        for p in &pts {
            // The model is deliberately coarse; hold it to the right
            // order of magnitude, not the right constant.
            let ratio = p.actual_bytes as f64 / p.predicted_bytes;
            assert!(
                (0.1..10.0).contains(&ratio),
                "{}: predicted {} bytes, measured {} (ratio {ratio:.2})",
                p.strategy.name(),
                p.predicted_bytes,
                p.actual_bytes
            );
        }
    }
}
