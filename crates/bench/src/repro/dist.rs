//! D1 — §5.1: semi-join vs fetch strategies in a distributed DBMS, as
//! the communication/local cost ratio sweeps.
//!
//! SDD-1's assumption (communication dominates) makes the semi-join the
//! only method; System R*'s critique (local processing matters) made it
//! drop semi-joins entirely. The paper's position is that a cost model
//! should arbitrate. This experiment reproduces both regimes and shows
//! the cost-based optimizer switching strategies at the right network
//! weight.

use crate::report::Report;
use crate::workloads::orders_customers;
use fj_core::distsim::{run_strategy, DistStrategy, TwoSiteScenario};
use fj_core::{col, Database, FromItem, JoinQuery, NetworkModel};

/// One network-weight point: strategy costs plus the optimizer's pick.
#[derive(Debug, Clone)]
pub struct DistPoint {
    /// Multiplier over the LAN per-byte cost.
    pub net_scale: f64,
    /// Measured cost per strategy, in [`DistStrategy::ALL`] order.
    pub costs: [f64; 4],
    /// What the cost-based optimizer chose ("filter join" or
    /// "fetch inner").
    pub optimizer_choice: &'static str,
}

/// Sweeps the network weight.
pub fn sweep(n_orders: usize, n_customers: usize, referenced: usize) -> Vec<DistPoint> {
    [0.0, 0.1, 1.0, 10.0, 100.0]
        .iter()
        .map(|&net_scale| {
            let (orders, mut customers) = orders_customers(n_orders, n_customers, referenced, 23);
            customers.create_hash_index(0).expect("index on cust");
            let network = NetworkModel {
                per_message: 1.0 * net_scale,
                per_byte: (2.0 / 4096.0) * net_scale,
            };
            let scenario = TwoSiteScenario::new(
                orders.into_ref(),
                customers.into_ref(),
                "cust",
                "cust",
                network,
            );
            let mut costs = [0.0; 4];
            for (i, s) in DistStrategy::ALL.iter().enumerate() {
                costs[i] = run_strategy(&scenario, *s).expect("strategy runs").cost;
            }

            // The optimizer's verdict on the same join.
            let mut db = Database::with_catalog((*scenario.catalog).clone());
            db.set_network(network);
            let q = JoinQuery::new(vec![
                FromItem::new("Orders", "O"),
                FromItem::new("Customers", "C"),
            ])
            .with_predicate(col("O.cust").eq(col("C.cust")));
            let plan = db.optimize(&q).expect("optimizes");
            let optimizer_choice = if plan.sips.is_empty() {
                "fetch inner"
            } else {
                "filter join"
            };
            DistPoint {
                net_scale,
                costs,
                optimizer_choice,
            }
        })
        .collect()
}

/// The printable report.
pub fn run(n_orders: usize, n_customers: usize, referenced: usize) -> Report {
    let pts = sweep(n_orders, n_customers, referenced);
    let mut r = Report::new(
        format!(
            "D1 (§5.1): distributed strategies vs network weight ({n_orders} orders, {n_customers} customers, {referenced} referenced)"
        ),
        &[
            "net scale",
            "fetch-inner",
            "fetch-matches",
            "semi-join",
            "bloom semi-join",
            "optimizer picks",
        ],
    );
    for p in &pts {
        r.row(vec![
            format!("{}", p.net_scale),
            Report::num(p.costs[0]),
            Report::num(p.costs[1]),
            Report::num(p.costs[2]),
            Report::num(p.costs[3]),
            p.optimizer_choice.into(),
        ]);
    }
    r.note("cheap network: fetch-inner competitive (R* regime); expensive network: semi-join wins (SDD-1 regime)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_reproduce() {
        let pts = sweep(500, 5000, 25);
        let free = &pts[0];
        let wan = pts.last().unwrap();
        // Free network: fetch-inner is at least as cheap as semi-join.
        assert!(
            free.costs[0] <= free.costs[2] * 1.05,
            "free network: fetch {} vs semi {}",
            free.costs[0],
            free.costs[2]
        );
        // Expensive network: semi-join decisively cheaper.
        assert!(
            wan.costs[2] < wan.costs[0] * 0.5,
            "wan: semi {} vs fetch {}",
            wan.costs[2],
            wan.costs[0]
        );
    }

    #[test]
    fn optimizer_switches_with_network() {
        let pts = sweep(500, 5000, 25);
        assert_eq!(
            pts.last().unwrap().optimizer_choice,
            "filter join",
            "expensive network should push the optimizer to the semi-join"
        );
    }
}
