//! U1 — §5.2: joining a user-defined relation.
//!
//! An expensive function joined to a skewed outer (many duplicate
//! argument values). Strategies:
//!
//! * **repeated probe** — invoke once per outer tuple;
//! * **memoized probe** — function caching \[HS93\];
//! * **filter join** — "consecutive procedure calls": invoke once per
//!   *distinct* argument ("there will be no duplicate function
//!   invocations, because of the elimination of duplicates in the
//!   filter set").

use crate::report::Report;
use fj_core::storage::CPU_WEIGHT_DEFAULT;
use fj_core::{
    col, Catalog, CountingUdf, DataType, ExecCtx, MemoUdf, PhysPlan, Schema, TableBuilder,
    TableFunction, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One strategy's measurements.
#[derive(Debug, Clone)]
pub struct UdfOutcome {
    /// Strategy name.
    pub strategy: &'static str,
    /// Actual function invocations performed.
    pub invocations: u64,
    /// Measured weighted cost.
    pub cost: f64,
    /// Join output rows.
    pub rows: usize,
}

fn credit_fn() -> TableFunction {
    let schema =
        Schema::from_pairs(&[("cust", DataType::Int), ("credit", DataType::Int)]).into_ref();
    // 3 page-units per call: an expensive lookup.
    TableFunction::new("credit", schema, 1, 3.0, |args| {
        let c = args[0].as_int().unwrap_or(0);
        vec![vec![Value::Int((c * 7919) % 850)]]
    })
}

fn outer_catalog(n_outer: usize, distinct_args: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("Txn")
            .column("cust", DataType::Int)
            .column("amount", DataType::Double)
            .rows((0..n_outer).map(|_| {
                vec![
                    Value::Int(rng.gen_range(0..distinct_args) as i64),
                    Value::Double(rng.gen_range(1.0..500.0)),
                ]
            }))
            .build()
            .expect("generated Txn conforms")
            .into_ref(),
    );
    cat
}

/// Runs the three strategies.
pub fn strategies(n_outer: usize, distinct_args: usize) -> Vec<UdfOutcome> {
    let mut out = Vec::new();
    for strategy in ["repeated probe", "memoized probe", "filter join"] {
        let mut cat = outer_catalog(n_outer, distinct_args, 77);
        let counter = Arc::new(CountingUdf::new(credit_fn()));
        match strategy {
            "memoized probe" => {
                // Count *underlying* invocations beneath the memo.
                let memo = MemoUdf::new(CountingUdfShared(Arc::clone(&counter)));
                cat.add_udf("credit", Arc::new(memo));
            }
            _ => {
                cat.add_udf("credit", Arc::new(CountingUdfShared(Arc::clone(&counter))));
            }
        }

        let outer = PhysPlan::SeqScan {
            table: "Txn".into(),
            alias: "T".into(),
        };
        let plan = match strategy {
            "filter join" => PhysPlan::WithTemp {
                steps: vec![fj_core::exec::TempStep::Materialize {
                    name: "__f".into(),
                    plan: PhysPlan::Distinct {
                        input: PhysPlan::Project {
                            input: outer.clone().boxed(),
                            exprs: vec![(col("T.cust"), "k0".into())],
                        }
                        .boxed(),
                    },
                }],
                body: PhysPlan::HashJoin {
                    outer: outer.boxed(),
                    inner: PhysPlan::UdfProbe {
                        outer: PhysPlan::TempScan {
                            name: "__f".into(),
                            alias: "F".into(),
                        }
                        .boxed(),
                        udf: "credit".into(),
                        alias: "C".into(),
                        arg_cols: vec!["F.k0".into()],
                    }
                    .boxed(),
                    keys: vec![("T.cust".into(), "C.cust".into())],
                    residual: None,
                    kind: fj_core::algebra::JoinKind::Inner,
                }
                .boxed(),
            },
            _ => PhysPlan::UdfProbe {
                outer: outer.boxed(),
                udf: "credit".into(),
                alias: "C".into(),
                arg_cols: vec!["T.cust".into()],
            },
        };
        let ctx = ExecCtx::new(Arc::new(cat));
        let before = ctx.ledger.snapshot();
        let rel = plan.execute(&ctx).expect("udf strategy runs");
        let cost = ctx
            .ledger
            .snapshot()
            .delta(&before)
            .weighted(CPU_WEIGHT_DEFAULT, 0.0, 0.0);
        out.push(UdfOutcome {
            strategy,
            invocations: counter.calls(),
            cost,
            rows: rel.rows.len(),
        });
    }
    out
}

/// Shares a [`CountingUdf`] behind an `Arc` so the experiment can read
/// the counter after the catalog takes ownership.
#[derive(Debug)]
struct CountingUdfShared(Arc<CountingUdf<TableFunction>>);

impl fj_core::UdfRelation for CountingUdfShared {
    fn schema(&self) -> fj_core::storage::SchemaRef {
        self.0.schema()
    }
    fn arg_count(&self) -> usize {
        self.0.arg_count()
    }
    fn invoke(&self, args: &[Value], ledger: &fj_core::CostLedger) -> Vec<fj_core::Tuple> {
        self.0.invoke(args, ledger)
    }
    fn invocation_cost(&self) -> f64 {
        self.0.invocation_cost()
    }
    fn rows_per_call(&self) -> f64 {
        self.0.rows_per_call()
    }
    fn domain(&self) -> Option<Vec<Vec<Value>>> {
        self.0.domain()
    }
}

/// The printable report.
pub fn run(n_outer: usize, distinct_args: usize) -> Report {
    let outcomes = strategies(n_outer, distinct_args);
    let mut r = Report::new(
        format!("U1 (§5.2): UDF join strategies ({n_outer} outer tuples, {distinct_args} distinct args)"),
        &["strategy", "invocations", "cost", "rows"],
    );
    for o in &outcomes {
        r.row(vec![
            o.strategy.into(),
            o.invocations.to_string(),
            Report::num(o.cost),
            o.rows.to_string(),
        ]);
    }
    r.note("filter join and memoized probe both invoke once per distinct argument");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_counts_match_the_paper_claims() {
        let out = strategies(2000, 50);
        let probe = &out[0];
        let memo = &out[1];
        let fj = &out[2];
        assert_eq!(probe.invocations, 2000, "one call per outer tuple");
        assert_eq!(memo.invocations, 50, "one real call per distinct arg");
        assert_eq!(fj.invocations, 50, "no duplicate invocations (§5.2)");
        // All strategies produce the identical join.
        assert_eq!(probe.rows, 2000);
        assert_eq!(memo.rows, 2000);
        assert_eq!(fj.rows, 2000);
    }

    #[test]
    fn filter_join_much_cheaper_than_raw_probe() {
        let out = strategies(2000, 50);
        assert!(
            out[2].cost < out[0].cost / 5.0,
            "filter join {} vs probe {}",
            out[2].cost,
            out[0].cost
        );
    }
}
