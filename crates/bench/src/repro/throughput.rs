//! Query-service throughput: the Figure-1 workload driven through the
//! `fj-runtime` worker pool at 1 versus N threads.
//!
//! This is the experiment behind the runtime's existence: the paper's
//! optimize-and-execute pipeline is embarrassingly parallel across
//! *queries* (each runs against an immutable catalog snapshot with its
//! own ledger), so a pool of N workers should answer close to N× the
//! queries per second — with the plan cache keeping repeated
//! optimization off the hot path.

use crate::report::Report;
use crate::workloads::{emp_dept, paper_query, EmpDeptConfig};
use fj_runtime::{QueryService, ServiceConfig};
use std::time::Instant;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Queries answered.
    pub queries: usize,
    /// Wall-clock seconds for the batch.
    pub secs: f64,
    /// Queries per second.
    pub qps: f64,
    /// Plan-cache hit rate over the batch.
    pub cache_hit_rate: f64,
    /// Median per-query latency (µs, factor-of-two bucket bound).
    pub p50_micros: u64,
    /// The full end-of-batch [`fj_runtime::RuntimeMetrics`] snapshot
    /// as a stable-key JSON line (machine-readable companion to the
    /// table).
    pub metrics_json: String,
}

/// Runs `queries` Figure-1 queries through a `threads`-worker service
/// over a fresh `n_emps`/`n_depts` instance and measures the batch.
pub fn run_at(threads: usize, n_emps: usize, n_depts: usize, queries: usize) -> ThroughputPoint {
    let cat = emp_dept(EmpDeptConfig {
        n_emps,
        n_depts,
        frac_big: 0.1,
        ..Default::default()
    });
    let service = QueryService::start(
        cat,
        ServiceConfig {
            workers: threads,
            queue_capacity: 64,
            ..ServiceConfig::default()
        },
    );
    let q = paper_query();
    // Warm-up: populates the plan cache and faults in the tables, so
    // the timed batch measures steady-state execution throughput.
    service.execute(q.clone()).expect("warm-up query runs");

    let t0 = Instant::now();
    let tickets: Vec<_> = (0..queries)
        .map(|_| service.submit(q.clone()).expect("service accepts"))
        .collect();
    for t in tickets {
        t.wait().expect("query completes");
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let m = service.metrics();
    let point = ThroughputPoint {
        threads,
        queries,
        secs,
        qps: queries as f64 / secs,
        cache_hit_rate: m.cache_hit_rate,
        p50_micros: m.latency.quantile_micros(0.5),
        metrics_json: m.to_json(),
    };
    service.shutdown();
    point
}

/// The reproduce-binary experiment: 1 thread vs `threads`, with the
/// speedup called out.
pub fn run(n_emps: usize, n_depts: usize, threads: usize, queries: usize) -> Report {
    let mut report = Report::new(
        format!(
            "Query-service throughput — Figure-1 workload, {queries} queries \
             ({n_emps} emps / {n_depts} depts)"
        ),
        &[
            "threads",
            "queries/s",
            "batch s",
            "p50 latency µs",
            "cache hit rate",
        ],
    );
    let baseline = run_at(1, n_emps, n_depts, queries);
    let scaled = run_at(threads.max(1), n_emps, n_depts, queries);
    for p in [&baseline, &scaled] {
        report.row(vec![
            Report::cell(p.threads),
            Report::num(p.qps),
            Report::num(p.secs),
            Report::cell(p.p50_micros),
            Report::num(p.cache_hit_rate),
        ]);
    }
    let speedup = scaled.qps / baseline.qps.max(1e-9);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    report.note(format!(
        "speedup at {} threads: {:.2}x on {} available core(s) (plan \
         cache warm; per-query ledger charges identical across thread \
         counts; speedup is bounded by physical cores)",
        scaled.threads, speedup, cores
    ));
    report.note(format!(
        "runtime metrics at {} threads: {}",
        scaled.threads, scaled.metrics_json
    ));
    report
}
