//! C1 — §3.3's central claim: adding the Filter Join to the System-R
//! enumerator does not change the asymptotic complexity of
//! optimization.
//!
//! We optimize chain queries of N = 2..max relations with the Filter
//! Join disabled and enabled, recording the number of join alternatives
//! costed and the wall time. The claim holds if the ratio between the
//! two stays bounded by a constant as N grows (each join considers a
//! constant number of extra methods; parametric fits are memoized).
//!
//! The Limitation-2 ablation column re-enables prefix production sets.
//! Its blow-up depends on how many prefixes can reach the inner: on
//! chains only the adjacent relation links (mild growth), on *star*
//! queries every prefix containing the fact links — there the measured
//! ratio grows with N, the O(N) factor §3.3 warns about (see
//! [`star_prefix_sweep`]).

use crate::report::Report;
use crate::workloads::{chain, star};
use fj_core::{Optimizer, OptimizerConfig};
use std::sync::Arc;
use std::time::Instant;

/// One N's measurements.
#[derive(Debug, Clone, Copy)]
pub struct ComplexityPoint {
    /// Relations in the chain.
    pub n: usize,
    /// Join alternatives costed, Filter Join off.
    pub plans_off: u64,
    /// Join alternatives costed, Filter Join on.
    pub plans_on: u64,
    /// Join alternatives costed with the Limitation-2 ablation (prefix
    /// production sets).
    pub plans_prefix: u64,
    /// Optimization wall time (µs), off.
    pub micros_off: u128,
    /// Optimization wall time (µs), on.
    pub micros_on: u128,
}

/// Optimizes chains of 2..=`max_n` relations both ways.
pub fn sweep(max_n: usize, rows: usize) -> Vec<ComplexityPoint> {
    (2..=max_n)
        .map(|n| {
            let (cat, q) = chain(n, rows, 5);
            let cat = Arc::new(cat);

            let off = Optimizer::new(Arc::clone(&cat), OptimizerConfig::without_filter_join());
            let t0 = Instant::now();
            let p_off = off.optimize(&q).expect("chain optimizes (FJ off)");
            let micros_off = t0.elapsed().as_micros();

            let on = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default());
            let t1 = Instant::now();
            let p_on = on.optimize(&q).expect("chain optimizes (FJ on)");
            let micros_on = t1.elapsed().as_micros();

            let cfg = OptimizerConfig {
                allow_prefix_production: true,
                ..OptimizerConfig::default()
            };
            let prefix = Optimizer::new(Arc::clone(&cat), cfg);
            let p_prefix = prefix
                .optimize(&q)
                .expect("chain optimizes (prefix ablation)");

            ComplexityPoint {
                n,
                plans_off: p_off.plans_considered,
                plans_on: p_on.plans_considered,
                plans_prefix: p_prefix.plans_considered,
                micros_off,
                micros_on,
            }
        })
        .collect()
}

/// Prefix-ablation ratios on star queries of 3..=`max_n` relations,
/// where every outer prefix containing the fact can filter the next
/// dimension: `(n, plans_limited, plans_prefix)`.
pub fn star_prefix_sweep(max_n: usize, fact_rows: usize) -> Vec<(usize, u64, u64)> {
    (3..=max_n)
        .map(|n| {
            let (cat, q) = star(n, fact_rows, 50, 5);
            let cat = Arc::new(cat);
            let limited = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default())
                .optimize(&q)
                .expect("star optimizes");
            let cfg = OptimizerConfig {
                allow_prefix_production: true,
                ..OptimizerConfig::default()
            };
            let prefix = Optimizer::new(Arc::clone(&cat), cfg)
                .optimize(&q)
                .expect("star optimizes (prefix)");
            (n, limited.plans_considered, prefix.plans_considered)
        })
        .collect()
}

/// The printable report.
pub fn run(max_n: usize) -> Report {
    let pts = sweep(max_n, 200);
    let mut r = Report::new(
        "C1 (§3.3): optimizer complexity with/without the Filter Join (chain queries)",
        &[
            "N",
            "plans (FJ off)",
            "plans (FJ on)",
            "ratio",
            "plans (prefix abl.)",
            "prefix ratio",
            "time off (us)",
            "time on (us)",
        ],
    );
    for p in &pts {
        r.row(vec![
            p.n.to_string(),
            p.plans_off.to_string(),
            p.plans_on.to_string(),
            format!("{:.2}", p.plans_on as f64 / p.plans_off as f64),
            p.plans_prefix.to_string(),
            format!("{:.2}", p.plans_prefix as f64 / p.plans_off as f64),
            p.micros_off.to_string(),
            p.micros_on.to_string(),
        ]);
    }
    r.note("bounded FJ-on ratio = same asymptotic complexity (the paper's claim)");
    for (n, limited, prefix) in star_prefix_sweep(max_n.min(8), 200) {
        r.note(format!(
            "star N={n}: prefix ablation costs {prefix} vs {limited} candidates (x{:.2}) — the O(N) growth Limitation 2 prevents",
            prefix as f64 / limited as f64
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_stays_bounded() {
        let pts = sweep(7, 100);
        for p in &pts {
            let ratio = p.plans_on as f64 / p.plans_off as f64;
            assert!(
                ratio <= 4.0,
                "N={}: ratio {ratio} exceeds the constant bound",
                p.n
            );
        }
        // And the ratio does not grow with N (compare first vs last).
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        let r0 = first.plans_on as f64 / first.plans_off as f64;
        let r1 = last.plans_on as f64 / last.plans_off as f64;
        assert!(
            r1 <= r0 * 1.5 + 0.5,
            "ratio grew from {r0} (N={}) to {r1} (N={})",
            first.n,
            last.n
        );
    }

    #[test]
    fn prefix_ablation_ratio_grows_with_n_on_stars() {
        let pts = star_prefix_sweep(7, 60);
        let (n0, l0, p0) = pts[0];
        let (n1, l1, p1) = *pts.last().unwrap();
        let r0 = p0 as f64 / l0 as f64;
        let r1 = p1 as f64 / l1 as f64;
        assert!(
            r1 > r0 * 1.25,
            "prefix ratio should grow with N on stars: {r0:.2} (N={n0}) -> {r1:.2} (N={n1})"
        );
    }

    #[test]
    fn prefix_ablation_mild_on_chains() {
        // On chains only adjacent relations link, so Limitation 1 alone
        // already keeps the blow-up small — the worst case needs stars.
        let pts = sweep(6, 50);
        for p in &pts {
            assert!(p.plans_prefix >= p.plans_on);
        }
    }

    #[test]
    fn plan_counts_grow_exponentially_in_n() {
        let pts = sweep(6, 50);
        // The System-R DP costs more alternatives each step.
        for w in pts.windows(2) {
            assert!(w[1].plans_off > w[0].plans_off);
        }
    }
}
