//! L1 — §5.3: the Filter Join on plain stored relations.
//!
//! "Assume that the filter set is small enough to fit in memory. It can
//! be created in a single scan of the outer relation. ... So in certain
//! situations, the join can be performed with two scans of the outer
//! and one scan of the inner, which may be much cheaper than any of the
//! other join methods."
//!
//! We run the four join methods with a tiny buffer pool (so full
//! computation spills) and verify both the ranking and the exact page
//! pattern of the local semi-join.

use crate::report::Report;
use crate::workloads::orders_customers;
use fj_core::storage::CPU_WEIGHT_DEFAULT;
use fj_core::{col, Catalog, ExecCtx, LedgerSnapshot, PhysPlan};
use std::sync::Arc;

/// One method's measurements.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Method name.
    pub method: &'static str,
    /// Page reads.
    pub reads: u64,
    /// Page writes.
    pub writes: u64,
    /// Weighted cost.
    pub cost: f64,
}

fn catalog(n_orders: usize, n_customers: usize, referenced: usize) -> (Catalog, u64, u64) {
    let (orders, customers) = orders_customers(n_orders, n_customers, referenced, 31);
    let op = orders.page_count();
    let ip = customers.page_count();
    let mut cat = Catalog::new();
    cat.add_table(orders.into_ref());
    cat.add_table(customers.into_ref());
    (cat, op, ip)
}

fn plans() -> Vec<(&'static str, PhysPlan)> {
    let outer = PhysPlan::SeqScan {
        table: "Orders".into(),
        alias: "O".into(),
    };
    let inner = PhysPlan::SeqScan {
        table: "Customers".into(),
        alias: "C".into(),
    };
    let keys = vec![("O.cust".to_string(), "C.cust".to_string())];
    let semi = PhysPlan::WithTemp {
        steps: vec![fj_core::exec::TempStep::Materialize {
            name: "__f".into(),
            plan: PhysPlan::Distinct {
                input: PhysPlan::Project {
                    input: outer.clone().boxed(),
                    exprs: vec![(col("O.cust"), "k0".into())],
                }
                .boxed(),
            },
        }],
        body: PhysPlan::HashJoin {
            outer: outer.clone().boxed(),
            inner: PhysPlan::HashJoin {
                outer: inner.clone().boxed(),
                inner: PhysPlan::TempScan {
                    name: "__f".into(),
                    alias: "F".into(),
                }
                .boxed(),
                keys: vec![("C.cust".into(), "F.k0".into())],
                residual: None,
                kind: fj_core::algebra::JoinKind::Semi,
            }
            .boxed(),
            keys: keys.clone(),
            residual: None,
            kind: fj_core::algebra::JoinKind::Inner,
        }
        .boxed(),
    };
    vec![
        (
            "block nested loops",
            PhysPlan::NestedLoops {
                outer: outer.clone().boxed(),
                inner: inner.clone().boxed(),
                predicate: Some(col("O.cust").eq(col("C.cust"))),
                kind: fj_core::algebra::JoinKind::Inner,
            },
        ),
        (
            "hash join",
            PhysPlan::HashJoin {
                outer: outer.clone().boxed(),
                inner: inner.clone().boxed(),
                keys: keys.clone(),
                residual: None,
                kind: fj_core::algebra::JoinKind::Inner,
            },
        ),
        (
            "sort-merge join",
            PhysPlan::MergeJoin {
                outer: outer.boxed(),
                inner: inner.boxed(),
                keys,
                residual: None,
            },
        ),
        ("local semi-join (filter join)", semi),
    ]
}

/// Runs all methods under a `memory_pages`-page buffer pool.
pub fn methods(
    n_orders: usize,
    n_customers: usize,
    referenced: usize,
    memory_pages: u64,
) -> (Vec<MethodOutcome>, u64, u64) {
    let (cat, op, ip) = catalog(n_orders, n_customers, referenced);
    let cat = Arc::new(cat);
    let mut out = Vec::new();
    let mut expected_rows: Option<usize> = None;
    for (name, plan) in plans() {
        let ctx = ExecCtx::new(Arc::clone(&cat)).with_memory_pages(memory_pages);
        let before = ctx.ledger.snapshot();
        let rel = plan.execute(&ctx).expect("join method runs");
        match expected_rows {
            None => expected_rows = Some(rel.rows.len()),
            Some(n) => assert_eq!(n, rel.rows.len(), "{name} changed the answer"),
        }
        let d: LedgerSnapshot = ctx.ledger.snapshot().delta(&before);
        out.push(MethodOutcome {
            method: name,
            reads: d.page_reads,
            writes: d.page_writes,
            cost: d.weighted(CPU_WEIGHT_DEFAULT, 0.0, 0.0),
        });
    }
    (out, op, ip)
}

/// The printable report.
pub fn run(n_orders: usize, n_customers: usize, referenced: usize) -> Report {
    let mem = 8;
    let (out, op, ip) = methods(n_orders, n_customers, referenced, mem);
    let mut r = Report::new(
        format!(
            "L1 (§5.3): local semi-join vs classic methods ({n_orders} orders [{op} pages], {n_customers} customers [{ip} pages], {referenced} referenced keys, M={mem})"
        ),
        &["method", "page reads", "page writes", "cost"],
    );
    for o in &out {
        r.row(vec![
            o.method.into(),
            o.reads.to_string(),
            o.writes.to_string(),
            Report::num(o.cost),
        ]);
    }
    r.note(format!(
        "semi-join page pattern: two scans of the outer ({op}+{op}) + one of the inner ({ip}) + small filter temp"
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_scans_of_outer_one_of_inner() {
        let (out, op, ip) = methods(4000, 20000, 20, 8);
        let semi = out.last().unwrap();
        // Reads: outer scan (filter build) + outer scan (final join) +
        // inner scan + filter temp read; the filter set is tiny (1 page).
        let expected = 2 * op + ip;
        assert!(
            semi.reads >= expected && semi.reads <= expected + 4,
            "semi-join reads {} vs expected ~{expected}",
            semi.reads
        );
        assert!(semi.writes <= 2, "filter temp is small");
    }

    #[test]
    fn semi_join_beats_spilling_methods_with_tiny_memory() {
        let (out, _, _) = methods(4000, 20000, 20, 4);
        let hash = out.iter().find(|o| o.method == "hash join").unwrap();
        let semi = out.last().unwrap();
        assert!(
            semi.cost < hash.cost,
            "semi {} should beat spilling hash {}",
            semi.cost,
            hash.cost
        );
    }
}
