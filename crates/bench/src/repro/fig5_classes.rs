//! Figure 5: equivalence classes as the accuracy/effort knob.
//!
//! "The greater the number of equivalence classes, the more the
//! complexity involved, but of course, the greater the accuracy of the
//! cost estimates. This provides a performance 'knob'."
//!
//! We sweep the class count and report: nested estimator invocations
//! (the optimization-time effort), fit wall time, and the cost-estimate
//! error of the fitted step function against the *measured* cost of the
//! restricted view at out-of-sample selectivities.

use crate::report::Report;
use crate::repro::fig4_cardinality::actual_cost;
use crate::workloads::{emp_dept, EmpDeptConfig};
use fj_core::optimizer::parametric::ParametricFit;
use fj_core::CostParams;
use std::sync::Arc;
use std::time::Instant;

/// One class-count outcome.
#[derive(Debug, Clone, Copy)]
pub struct KnobPoint {
    /// Equivalence classes probed.
    pub classes: usize,
    /// Nested estimator invocations (= classes).
    pub invocations: u64,
    /// Wall time to fit, microseconds.
    pub fit_micros: u128,
    /// Mean relative error of the cost step function at out-of-sample
    /// selectivities.
    pub mean_cost_error: f64,
}

/// Sweeps the knob.
pub fn sweep(n_emps: usize, n_depts: usize, class_counts: &[usize]) -> Vec<KnobPoint> {
    let catalog = Arc::new(emp_dept(EmpDeptConfig {
        n_emps,
        n_depts,
        ..Default::default()
    }));
    // Out-of-sample probe selectivities (never exactly on class centers
    // for small class counts).
    let probes = [0.13, 0.37, 0.61, 0.88];
    let measured: Vec<f64> = probes
        .iter()
        .map(|&s| actual_cost(&catalog, n_depts, s))
        .collect();

    class_counts
        .iter()
        .map(|&classes| {
            let mut invocations = 0;
            let t0 = Instant::now();
            let fit = ParametricFit::fit(
                &catalog,
                CostParams::default(),
                "DepAvgSal",
                &["did".to_string()],
                classes,
                &mut invocations,
            )
            .expect("fit succeeds");
            let fit_micros = t0.elapsed().as_micros();
            let mean_cost_error = probes
                .iter()
                .zip(&measured)
                .map(|(&s, &m)| {
                    let est = fit.cost(s);
                    if m > 0.0 {
                        (est - m).abs() / m
                    } else {
                        0.0
                    }
                })
                .sum::<f64>()
                / probes.len() as f64;
            KnobPoint {
                classes,
                invocations,
                fit_micros,
                mean_cost_error,
            }
        })
        .collect()
}

/// The printable report.
pub fn run(n_emps: usize, n_depts: usize) -> Report {
    let pts = sweep(n_emps, n_depts, &[2, 3, 4, 8, 16]);
    let mut r = Report::new(
        format!("Figure 5: equivalence-class knob ({n_emps} emps / {n_depts} depts)"),
        &[
            "classes",
            "nested invocations",
            "fit time (us)",
            "mean cost error",
        ],
    );
    for p in &pts {
        r.row(vec![
            p.classes.to_string(),
            p.invocations.to_string(),
            p.fit_micros.to_string(),
            format!("{:.1}%", p.mean_cost_error * 100.0),
        ]);
    }
    r.note("more classes -> more nested optimizer invocations, lower estimation error");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocations_equal_classes() {
        for p in sweep(2000, 200, &[2, 4, 8]) {
            assert_eq!(p.invocations as usize, p.classes);
        }
    }

    #[test]
    fn more_classes_do_not_hurt_accuracy_much() {
        let pts = sweep(4000, 400, &[2, 16]);
        // The 16-class fit should be at least as good (allow slack for
        // step-function placement luck).
        assert!(
            pts[1].mean_cost_error <= pts[0].mean_cost_error + 0.10,
            "2-class err {:.3} vs 16-class err {:.3}",
            pts[0].mean_cost_error,
            pts[1].mean_cost_error
        );
    }
}
