//! Figure 3: the six left-deep join orders of the motivating query,
//! and the SIPS (filter set) each order induces.
//!
//! Orders 1/2 pass `{E ⋈ D}` sideways into the view, orders 3/4 pass a
//! single relation, and orders 5/6 (view outermost) admit no filter
//! join — the original query. The optimizer prices each order with its
//! best join methods; the globally chosen plan must match the cheapest
//! row.

use crate::report::Report;
use crate::workloads::{emp_dept, paper_query, EmpDeptConfig};
use fj_core::{Database, Optimizer, OptimizerConfig};
use std::sync::Arc;

/// One join order's outcome.
#[derive(Debug, Clone)]
pub struct OrderOutcome {
    /// The order, outermost first.
    pub order: Vec<String>,
    /// Optimizer's estimated cost for the best plan under this order.
    pub estimated: f64,
    /// Measured cost of executing that plan.
    pub measured: f64,
    /// Description of the induced filter set (production → inner), or
    /// "none".
    pub filter_set: String,
}

/// Prices and executes all six orders.
pub fn all_orders(n_emps: usize, n_depts: usize, frac_big: f64) -> Vec<OrderOutcome> {
    let cat = Arc::new(emp_dept(EmpDeptConfig {
        n_emps,
        n_depts,
        frac_big,
        ..Default::default()
    }));
    let db = Database::with_catalog((*cat).clone());
    let opt = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default());
    let q = paper_query();
    let orders: [[&str; 3]; 6] = [
        ["E", "D", "V"],
        ["D", "E", "V"],
        ["D", "V", "E"],
        ["E", "V", "D"],
        ["V", "E", "D"],
        ["V", "D", "E"],
    ];
    orders
        .iter()
        .map(|o| {
            let order: Vec<String> = o.iter().map(|s| s.to_string()).collect();
            let plan = opt
                .optimize_with_order(&q, &order)
                .expect("every order is plannable");
            let ctx = fj_core::ExecCtx::new(Arc::clone(&cat));
            let rel = plan.phys.execute(&ctx).expect("plan runs");
            assert_eq!(rel.schema.arity(), 3);
            let net = db.catalog().network();
            let measured = ctx.ledger.snapshot().weighted(
                fj_core::storage::CPU_WEIGHT_DEFAULT,
                net.per_byte,
                net.per_message,
            );
            let filter_set = plan
                .sips
                .iter()
                .map(|s| format!("{{{}}} -> {}", s.production.join(","), s.inner))
                .collect::<Vec<_>>()
                .join("; ");
            OrderOutcome {
                order,
                estimated: plan.cost,
                measured,
                filter_set: if filter_set.is_empty() {
                    "none".into()
                } else {
                    filter_set
                },
            }
        })
        .collect()
}

/// The printable report.
pub fn run(n_emps: usize, n_depts: usize) -> Report {
    let outcomes = all_orders(n_emps, n_depts, 0.1);
    let cat = emp_dept(EmpDeptConfig {
        n_emps,
        n_depts,
        frac_big: 0.1,
        ..Default::default()
    });
    let db = Database::with_catalog(cat);
    let global = db.optimize(&paper_query()).expect("optimizes");

    let mut r = Report::new(
        format!("Figure 3: the six join orders ({n_emps} emps / {n_depts} depts, frac_big=0.1)"),
        &[
            "#",
            "join order",
            "filter set (SIPS)",
            "est. cost",
            "measured",
        ],
    );
    for (i, o) in outcomes.iter().enumerate() {
        r.row(vec![
            format!("{}", i + 1),
            o.order.join(" -> "),
            o.filter_set.clone(),
            Report::num(o.estimated),
            Report::num(o.measured),
        ]);
    }
    r.note(format!(
        "globally chosen order: {} (est. {:.1})",
        global.order.join(" -> "),
        global.cost
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_orders_with_expected_sips_shapes() {
        let out = all_orders(2000, 200, 0.1);
        assert_eq!(out.len(), 6);
        // Orders starting with E or D and ending with V induce a filter
        // set into V.
        assert!(out[0].filter_set.contains("-> V"), "{:?}", out[0]);
        assert!(out[1].filter_set.contains("-> V"), "{:?}", out[1]);
        // Orders with V outermost cannot filter V.
        assert!(!out[4].filter_set.contains("-> V"));
        assert!(!out[5].filter_set.contains("-> V"));
    }

    #[test]
    fn global_plan_at_least_as_cheap_as_every_forced_order() {
        let cat = emp_dept(EmpDeptConfig {
            n_emps: 2000,
            n_depts: 200,
            frac_big: 0.1,
            ..Default::default()
        });
        let db = Database::with_catalog(cat);
        let global = db.optimize(&paper_query()).unwrap();
        for o in all_orders(2000, 200, 0.1) {
            assert!(
                global.cost <= o.estimated + 1e-6,
                "global {} vs forced {:?} {}",
                global.cost,
                o.order,
                o.estimated
            );
        }
    }
}
