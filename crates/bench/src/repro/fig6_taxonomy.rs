//! Figure 6: the cross-applicability matrix of join techniques —
//! measured.
//!
//! Rows are the paper's strategy families (repeated probe, repeated
//! probe with caching, full computation, filter join, lossy filter);
//! columns are the relation kinds (stored relation in a centralized
//! DBMS, remote relation in a distributed DBMS, view/table expression,
//! user-defined relation). Each applicable cell runs the technique on a
//! common-shape workload (outer of `N_OUTER` tuples referencing a small
//! key subset) and reports the measured weighted cost. Cells the paper
//! leaves empty — or that decorrelating engines like ours never execute
//! (correlated view iteration) — print `—`.

use crate::report::Report;
use crate::workloads::orders_customers;
use fj_core::distsim::{run_strategy, DistStrategy, TwoSiteScenario};
use fj_core::storage::CPU_WEIGHT_DEFAULT;
use fj_core::{
    col, AggCall, AggFunc, Catalog, DataType, ExecCtx, LedgerSnapshot, LogicalPlan, NetworkModel,
    PhysPlan, Schema, TableFunction, Value,
};
use std::sync::Arc;

const N_OUTER: usize = 2_000;
const N_INNER: usize = 10_000;
const REFERENCED: usize = 50;

fn weighted(d: &LedgerSnapshot, net: NetworkModel) -> f64 {
    d.weighted(CPU_WEIGHT_DEFAULT, net.per_byte, net.per_message)
}

/// Row labels, column labels, and the `grid[strategy][kind]` costs.
pub type TaxonomyMatrix = (Vec<&'static str>, Vec<&'static str>, Vec<Vec<Option<f64>>>);

/// The measured matrix: `grid[strategy][kind]`, `None` = not
/// applicable.
pub fn matrix() -> TaxonomyMatrix {
    let strategies = vec![
        "repeated probe",
        "  w/ caching",
        "full computation",
        "filter join",
        "lossy filter",
    ];
    let kinds = vec!["stored", "remote", "view", "udf"];
    let grid = vec![
        vec![
            Some(stored(Technique::Probe)),
            Some(remote(DistStrategy::FetchMatches)),
            None, // correlated view iteration: decorrelated away here
            Some(udf(Technique::Probe)),
        ],
        vec![
            None, // caching adds nothing to an index probe
            None,
            None,
            Some(udf(Technique::ProbeCached)),
        ],
        vec![
            Some(stored(Technique::Full)),
            Some(remote(DistStrategy::FetchInner)),
            Some(view(Technique::Full)),
            Some(udf(Technique::Full)),
        ],
        vec![
            Some(stored(Technique::FilterJoin)),
            Some(remote(DistStrategy::SemiJoin)),
            Some(view(Technique::FilterJoin)),
            Some(udf(Technique::FilterJoin)),
        ],
        vec![
            Some(stored(Technique::Lossy)),
            Some(remote(DistStrategy::BloomSemiJoin)),
            None, // lossy filters cannot pass through an aggregate view
            None, // a Bloom filter cannot drive UDF invocation
        ],
    ];
    (strategies, kinds, grid)
}

#[derive(Clone, Copy)]
enum Technique {
    Probe,
    ProbeCached,
    Full,
    FilterJoin,
    Lossy,
}

fn outer_scan() -> PhysPlan {
    PhysPlan::SeqScan {
        table: "Orders".into(),
        alias: "O".into(),
    }
}

fn measure(catalog: Catalog, plan: &PhysPlan, memory_pages: u64) -> f64 {
    let net = catalog.network();
    let ctx = ExecCtx::new(Arc::new(catalog)).with_memory_pages(memory_pages);
    let before = ctx.ledger.snapshot();
    let rel = plan.execute(&ctx).expect("taxonomy cell runs");
    assert!(!rel.rows.is_empty(), "taxonomy cell produced no rows");
    weighted(&ctx.ledger.snapshot().delta(&before), net)
}

/// Column 1: a stored relation in a centralized DBMS.
fn stored(t: Technique) -> f64 {
    let (orders, mut customers) = orders_customers(N_OUTER, N_INNER, REFERENCED, 11);
    customers.create_hash_index(0).expect("index on cust");
    let mut cat = Catalog::new();
    cat.add_table(orders.into_ref());
    cat.add_table(customers.into_ref());

    let plan = match t {
        Technique::Probe => PhysPlan::IndexNestedLoops {
            outer: outer_scan().boxed(),
            table: "Customers".into(),
            alias: "C".into(),
            outer_key: "O.cust".into(),
            inner_col: "cust".into(),
            residual: None,
        },
        Technique::Full => PhysPlan::HashJoin {
            outer: outer_scan().boxed(),
            inner: PhysPlan::SeqScan {
                table: "Customers".into(),
                alias: "C".into(),
            }
            .boxed(),
            keys: vec![("O.cust".into(), "C.cust".into())],
            residual: None,
            kind: fj_core::algebra::JoinKind::Inner,
        },
        Technique::FilterJoin => local_filter_join(false),
        Technique::Lossy => local_filter_join(true),
        Technique::ProbeCached => unreachable!("not applicable"),
    };
    // §5.3's setting: a buffer pool small enough that full-computation
    // methods spill, while the filter set stays memory-resident.
    measure(cat, &plan, 8)
}

/// The local semi-join / Bloom plans of §5.3.
fn local_filter_join(lossy: bool) -> PhysPlan {
    let filter_proj = PhysPlan::Project {
        input: outer_scan().boxed(),
        exprs: vec![(col("O.cust"), "k0".into())],
    };
    let step = if lossy {
        fj_core::exec::TempStep::BuildBloom {
            name: "__f".into(),
            plan: filter_proj,
            key_cols: vec!["k0".into()],
            bits: 4096,
            hashes: 4,
            ship: None,
        }
    } else {
        fj_core::exec::TempStep::Materialize {
            name: "__f".into(),
            plan: PhysPlan::Distinct {
                input: filter_proj.boxed(),
            },
        }
    };
    let restricted = if lossy {
        PhysPlan::BloomProbe {
            input: PhysPlan::SeqScan {
                table: "Customers".into(),
                alias: "C".into(),
            }
            .boxed(),
            bloom: "__f".into(),
            key_cols: vec!["C.cust".into()],
        }
    } else {
        PhysPlan::HashJoin {
            outer: PhysPlan::SeqScan {
                table: "Customers".into(),
                alias: "C".into(),
            }
            .boxed(),
            inner: PhysPlan::TempScan {
                name: "__f".into(),
                alias: "F".into(),
            }
            .boxed(),
            keys: vec![("C.cust".into(), "F.k0".into())],
            residual: None,
            kind: fj_core::algebra::JoinKind::Semi,
        }
    };
    PhysPlan::WithTemp {
        steps: vec![step],
        body: PhysPlan::HashJoin {
            outer: outer_scan().boxed(),
            inner: restricted.boxed(),
            keys: vec![("O.cust".into(), "C.cust".into())],
            residual: None,
            kind: fj_core::algebra::JoinKind::Inner,
        }
        .boxed(),
    }
}

/// Column 2: a remote relation in a distributed DBMS.
fn remote(strategy: DistStrategy) -> f64 {
    let (orders, mut customers) = orders_customers(N_OUTER, N_INNER, REFERENCED, 11);
    customers.create_hash_index(0).expect("index on cust");
    let scenario = TwoSiteScenario::new(
        orders.into_ref(),
        customers.into_ref(),
        "cust",
        "cust",
        NetworkModel::lan(),
    );
    run_strategy(&scenario, strategy)
        .expect("distributed strategy runs")
        .cost
}

/// Column 3: a view (aggregate over the inner).
fn view(t: Technique) -> f64 {
    let (orders, customers) = orders_customers(N_OUTER, N_INNER, REFERENCED, 11);
    let mut cat = Catalog::new();
    cat.add_table(orders.into_ref());
    cat.add_table(customers.into_ref());
    // CustScore: per-customer average score.
    let plan = LogicalPlan::scan("Customers", "C")
        .aggregate(
            vec!["C.cust".into()],
            vec![AggCall::new(AggFunc::Avg, "C.score", "avgscore")],
        )
        .project(vec![
            (col("C.cust"), "cust".into()),
            (col("avgscore"), "avgscore".into()),
        ]);
    let schema = Schema::from_pairs(&[("cust", DataType::Int), ("avgscore", DataType::Double)]);
    cat.add_view(fj_core::ViewDef {
        name: "CustScore".into(),
        plan: plan.into_ref(),
        schema: schema.into_ref(),
    });

    let phys = match t {
        Technique::Full => {
            let view_scan = fj_core::exec::lower::lower(&LogicalPlan::scan("CustScore", "V"), &cat)
                .expect("view lowers");
            PhysPlan::HashJoin {
                outer: outer_scan().boxed(),
                inner: view_scan.boxed(),
                keys: vec![("O.cust".into(), "V.cust".into())],
                residual: None,
                kind: fj_core::algebra::JoinKind::Inner,
            }
        }
        Technique::FilterJoin => {
            let filter_schema = Schema::from_pairs(&[("k0", DataType::Int)]).into_ref();
            let restricted = fj_core::algebra::magic::restricted_inner(
                &cat,
                "CustScore",
                &["cust".to_string()],
                "__f",
                &filter_schema,
            )
            .expect("restriction builds");
            let restricted_phys = PhysPlan::Project {
                input: fj_core::exec::lower::lower(&restricted, &cat)
                    .expect("lowers")
                    .boxed(),
                exprs: vec![
                    (col("cust"), "V.cust".into()),
                    (col("avgscore"), "V.avgscore".into()),
                ],
            };
            PhysPlan::WithTemp {
                steps: vec![fj_core::exec::TempStep::Materialize {
                    name: "__f".into(),
                    plan: PhysPlan::Distinct {
                        input: PhysPlan::Project {
                            input: outer_scan().boxed(),
                            exprs: vec![(col("O.cust"), "k0".into())],
                        }
                        .boxed(),
                    },
                }],
                body: PhysPlan::HashJoin {
                    outer: outer_scan().boxed(),
                    inner: restricted_phys.boxed(),
                    keys: vec![("O.cust".into(), "V.cust".into())],
                    residual: None,
                    kind: fj_core::algebra::JoinKind::Inner,
                }
                .boxed(),
            }
        }
        _ => unreachable!("not applicable"),
    };
    measure(cat, &phys, 128)
}

/// Column 4: a user-defined relation (score lookup as a function).
fn udf(t: Technique) -> f64 {
    let (orders, _) = orders_customers(N_OUTER, N_INNER, REFERENCED, 11);
    let mut cat = Catalog::new();
    cat.add_table(orders.into_ref());
    let schema =
        Schema::from_pairs(&[("cust", DataType::Int), ("rating", DataType::Int)]).into_ref();
    let domain: Vec<Vec<Value>> = (0..N_INNER as i64).map(|i| vec![Value::Int(i)]).collect();
    let base = TableFunction::new("rating", schema, 1, 0.5, |args| {
        let c = args[0].as_int().unwrap_or(0);
        vec![vec![Value::Int(c % 5)]]
    })
    .with_domain(domain);

    let plan = match t {
        Technique::Probe => {
            cat.add_udf("rating", Arc::new(base));
            PhysPlan::UdfProbe {
                outer: outer_scan().boxed(),
                udf: "rating".into(),
                alias: "R".into(),
                arg_cols: vec!["O.cust".into()],
            }
        }
        Technique::ProbeCached => {
            cat.add_udf("rating", Arc::new(fj_core::MemoUdf::new(base)));
            PhysPlan::UdfProbe {
                outer: outer_scan().boxed(),
                udf: "rating".into(),
                alias: "R".into(),
                arg_cols: vec!["O.cust".into()],
            }
        }
        Technique::Full => {
            cat.add_udf("rating", Arc::new(base));
            PhysPlan::HashJoin {
                outer: outer_scan().boxed(),
                inner: PhysPlan::UdfFullScan {
                    udf: "rating".into(),
                    alias: "R".into(),
                }
                .boxed(),
                keys: vec![("O.cust".into(), "R.cust".into())],
                residual: None,
                kind: fj_core::algebra::JoinKind::Inner,
            }
        }
        Technique::FilterJoin => {
            cat.add_udf("rating", Arc::new(base));
            // Consecutive invocation over the distinct filter set.
            PhysPlan::WithTemp {
                steps: vec![fj_core::exec::TempStep::Materialize {
                    name: "__f".into(),
                    plan: PhysPlan::Distinct {
                        input: PhysPlan::Project {
                            input: outer_scan().boxed(),
                            exprs: vec![(col("O.cust"), "k0".into())],
                        }
                        .boxed(),
                    },
                }],
                body: PhysPlan::HashJoin {
                    outer: outer_scan().boxed(),
                    inner: PhysPlan::UdfProbe {
                        outer: PhysPlan::TempScan {
                            name: "__f".into(),
                            alias: "F".into(),
                        }
                        .boxed(),
                        udf: "rating".into(),
                        alias: "R".into(),
                        arg_cols: vec!["F.k0".into()],
                    }
                    .boxed(),
                    keys: vec![("O.cust".into(), "R.cust".into())],
                    residual: None,
                    kind: fj_core::algebra::JoinKind::Inner,
                }
                .boxed(),
            }
        }
        Technique::Lossy => unreachable!("not applicable"),
    };
    measure(cat, &plan, 128)
}

/// The printable report.
pub fn run() -> Report {
    let (strategies, kinds, grid) = matrix();
    let mut headers = vec!["strategy"];
    headers.extend(kinds.iter().copied());
    let mut r = Report::new(
        format!(
            "Figure 6: join-technique matrix (measured cost, page units; outer {N_OUTER}, inner {N_INNER}, {REFERENCED} referenced keys)"
        ),
        &headers,
    );
    for (s, row) in strategies.iter().zip(&grid) {
        let mut cells = vec![s.to_string()];
        cells.extend(row.iter().map(|c| match c {
            Some(v) => Report::num(*v),
            None => "—".to_string(),
        }));
        r.row(cells);
    }
    r.note("— = not applicable (see module docs); filter join should win every column at this selectivity");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_join_wins_every_applicable_column() {
        let (_, _, grid) = matrix();
        let full = &grid[2];
        let fj = &grid[3];
        for (kind, (full_c, fj_c)) in full.iter().zip(fj).enumerate() {
            if let (Some(f), Some(j)) = (full_c, fj_c) {
                assert!(
                    j < f,
                    "filter join {j} should beat full computation {f} in column {kind}"
                );
            }
        }
    }

    #[test]
    fn caching_beats_raw_probe_for_udfs() {
        let raw = udf(Technique::Probe);
        let cached = udf(Technique::ProbeCached);
        assert!(
            cached < raw,
            "cached probe {cached} should beat raw probe {raw}"
        );
    }
}
