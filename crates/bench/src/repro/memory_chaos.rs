//! Memory chaos: graceful degradation under memory pressure.
//!
//! The spilling contract under fire. A control run first proves the
//! pressure is real: with the service's seed configuration (tight
//! executor memory + a materialization budget, spilling off) the
//! workload join dies with [`InterruptReason::MemoryBudget`]. Then the
//! storm: the *same* tight configuration with spilling on serves
//! concurrent clients whose joins all overflow executor memory, while
//! the memory broker's soft watermark is set low enough that grants
//! contend across workers, torn-temp-write and slow-temp-fsync faults
//! are armed on every spill file, and a quarter of the queries are
//! cancelled mid-spill.
//!
//! Contract: **zero client-visible failures** — every non-cancelled
//! query returns rows byte-identical to an in-memory oracle (torn temp
//! frames are verified and rewritten, never surfaced), cancellations
//! are typed [`InterruptReason::Cancelled`] replies, every spill temp
//! file is deleted by the time its query resolves (the RAII guard,
//! proven by an empty spill directory after the cancel storm), all
//! broker grants are released, and the pool ends at full strength.

use crate::report::Report;
use fj_core::{col, Catalog, DataType, Database, FromItem, JoinQuery, TableBuilder, Tuple, Value};
use fj_runtime::{FaultPlan, InterruptReason, QueryService, RuntimeError, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// Two tables big enough that either side of the join overflows a
/// 4-page executor: the storm's whole workload is spill-or-die.
fn pressure_catalog(n_rows: usize) -> Catalog {
    let table = |name: &str| {
        TableBuilder::new(name)
            .column("id", DataType::Int)
            .column("pad", DataType::Str)
            .rows((0..n_rows).map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Str(format!("{name}-payload-{i}")),
                ]
            }))
            .build()
            .unwrap()
            .into_ref()
    };
    let mut cat = Catalog::new();
    cat.add_table(table("Fact"));
    cat.add_table(table("Dim"));
    cat
}

fn pressure_join() -> JoinQuery {
    JoinQuery::new(vec![FromItem::new("Fact", "f"), FromItem::new("Dim", "d")])
        .with_predicate(col("f.id").eq(col("d.id")))
}

/// Per-run tallies accumulated across client threads.
#[derive(Debug, Default)]
struct Tally {
    ok: AtomicU64,
    cancelled: AtomicU64,
}

/// Drives `clients` concurrent threads, each issuing
/// `queries_per_client` over-budget joins against one governed
/// spilling service. Panics (failing the reproduction) on any
/// client-visible failure, any diverging row set, any leaked temp
/// file, or a degraded pool.
pub fn run(n_rows: usize, clients: usize, queries_per_client: usize) -> Report {
    let cat = pressure_catalog(n_rows);
    let expected = Arc::new(sorted(
        Database::with_catalog(cat.clone())
            .execute(&pressure_join())
            .expect("serial in-memory oracle")
            .rows,
    ));
    let tight = ServiceConfig {
        workers: 4,
        memory_pages: 4,
        memory_budget_pages: Some(6),
        ..ServiceConfig::default()
    };

    // Control: at the seed configuration the governor kills the join —
    // the pressure the storm survives is real, not incidental.
    let control = QueryService::start(cat.clone(), tight.clone());
    let err = control.execute(pressure_join()).expect_err("control join");
    assert!(
        matches!(
            err,
            RuntimeError::Interrupted(InterruptReason::MemoryBudget)
        ),
        "control must die on MemoryBudget, got: {err}"
    );
    control.shutdown();

    // The storm service: same tight memory and budget, spilling on,
    // broker watermark low enough that concurrent grants contend, and
    // seeded temp-file faults armed.
    let faults = Arc::new(
        FaultPlan::new(0x3E3_0C4A)
            .with_torn_temp_writes(16)
            .with_slow_temp_fsync(32, Duration::from_micros(100)),
    );
    let service = Arc::new(QueryService::start(
        cat,
        ServiceConfig {
            spill_soft_watermark_pages: Some(8),
            fault_plan: Some(Arc::clone(&faults)),
            ..tight
        },
    ));

    let tally = Arc::new(Tally::default());
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let service = Arc::clone(&service);
            let expected = Arc::clone(&expected);
            let tally = Arc::clone(&tally);
            thread::spawn(move || {
                for i in 0..queries_per_client {
                    let ticket = service.submit(pressure_join()).expect("submit");
                    // A quarter of the queries are cancelled from a
                    // second thread while they are (most likely) midway
                    // through partitioning to temp files.
                    let killer = (i % 4 == 3).then(|| {
                        let interrupt = ticket.interrupt_handle();
                        thread::spawn(move || {
                            thread::sleep(Duration::from_micros(300));
                            interrupt.trip(InterruptReason::Cancelled);
                        })
                    });
                    let outcome = ticket.wait();
                    if let Some(k) = killer {
                        k.join().expect("canceller thread");
                    }
                    match outcome {
                        Ok(reply) => {
                            assert_eq!(
                                sorted(reply.rows),
                                *expected,
                                "client {c} query {i}: spilled rows diverged from the oracle"
                            );
                            tally.ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(RuntimeError::Interrupted(InterruptReason::Cancelled)) => {
                            assert!(
                                i % 4 == 3,
                                "client {c} query {i}: cancelled without a canceller"
                            );
                            tally.cancelled.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => {
                            panic!("client {c} query {i}: client-visible failure: {other}")
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("memory-chaos client thread");
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);

    let ok = tally.ok.load(Ordering::Relaxed);
    let cancelled = tally.cancelled.load(Ordering::Relaxed);
    let total = (clients * queries_per_client) as u64;
    assert_eq!(
        ok + cancelled,
        total,
        "every query must resolve to verified rows or a typed cancellation"
    );
    assert!(ok > 0, "some queries must survive the cancel storm");

    // The storm actually exercised what it claims: spills happened,
    // temp faults fired, and the broker arbitrated.
    let metrics = service.metrics();
    assert!(metrics.spills > 0, "the workload must spill");
    assert!(metrics.spill_partitions > 0);
    assert!(metrics.spill_bytes_written > 0);
    assert!(metrics.spill_bytes_read > 0);
    assert!(metrics.peak_temp_bytes > 0);
    assert_eq!(metrics.workers_replaced, 0, "no worker may die spilling");
    assert!(
        faults.temp_write_events() + faults.temp_fsync_events() > 0,
        "temp faults must have fired"
    );
    let temp = service.spill_stats();
    let broker = service.memory_broker().expect("spilling is on");
    assert!(
        broker.grants() + broker.denials() > 0,
        "the broker must have arbitrated reservations"
    );
    assert_eq!(broker.in_use_pages(), 0, "every grant released");

    // The RAII guarantee, after a storm that cancelled queries
    // mid-spill: no temp file outlives its query.
    assert_eq!(
        temp.files_created, temp.files_deleted,
        "every spill file created was deleted"
    );
    assert!(temp.files_created > 0);
    assert_eq!(
        service
            .spill_temp_store()
            .expect("spilling is on")
            .live_files_on_disk()
            .expect("spill dir readable"),
        0,
        "spill directory must be empty after the cancel storm"
    );

    // Calm closing batch: the pool is at strength and still correct.
    for i in 0..4 {
        let reply = service
            .execute(pressure_join())
            .unwrap_or_else(|e| panic!("closing query {i}: {e}"));
        assert_eq!(
            sorted(reply.rows),
            *expected,
            "closing query {i} diverged after the storm"
        );
    }
    let metrics_json = service.metrics().to_json();

    let mut report = Report::new(
        format!(
            "memory chaos — {clients} clients × {queries_per_client} over-budget joins \
             ({n_rows} rows/side, 4-page executor, torn/slow temp faults, 1-in-4 cancelled)"
        ),
        &[
            "clients",
            "queries ok",
            "cancelled",
            "spills",
            "partitions",
            "temp KiB written",
            "torn rewrites",
            "broker grants",
            "broker denials",
            "queries/s",
        ],
    );
    report.row(vec![
        Report::cell(clients),
        Report::cell(ok),
        Report::cell(cancelled),
        Report::cell(metrics.spills),
        Report::cell(metrics.spill_partitions),
        Report::cell(temp.bytes_written / 1024),
        Report::cell(temp.torn_rewrites),
        Report::cell(broker.grants()),
        Report::cell(broker.denials()),
        Report::num(ok as f64 / secs),
    ]);
    report.note(
        "control run died on MemoryBudget at the same memory configuration with spilling off; \
         every surviving reply verified byte-identical to the in-memory oracle, every \
         cancellation typed, zero temp files leaked, all broker grants released, pool at \
         full strength",
    );
    report.note(format!("fault-plan events fired: {}", faults.events()));
    report.note(format!("service metrics: {metrics_json}"));
    report
}
