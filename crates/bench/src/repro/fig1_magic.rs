//! Figures 1–2: the motivating query, three ways.
//!
//! The paper's premise: magic rewriting helps when few departments are
//! big-with-young-employees and hurts when all are. We sweep the
//! fraction of big departments and execute the Figure 1 query under
//! three policies:
//!
//! * **naive** — the original query (join orders 5/6 of Figure 3): the
//!   view is computed in full;
//! * **always-magic** — the Figure 2 rewriting applied unconditionally
//!   (production set `{E, D}`, the heuristic a rewrite engine uses);
//! * **cost-based** — this paper: the optimizer decides per instance.
//!
//! Expected shape: naive is flat (the view always costs the same);
//! always-magic grows with the filter fraction and eventually exceeds
//! naive; cost-based tracks the minimum of the two.

use crate::report::Report;
use crate::workloads::{emp_dept, paper_query, EmpDeptConfig};
use fj_core::{Database, Sips};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Fraction of big departments.
    pub frac_big: f64,
    /// Measured cost of the naive plan.
    pub naive: f64,
    /// Measured cost of the always-magic plan.
    pub magic: f64,
    /// Measured cost of the cost-based plan.
    pub cost_based: f64,
    /// Did the optimizer choose a Filter Join?
    pub chose_magic: bool,
}

/// Runs the sweep at the given scale.
pub fn sweep(n_emps: usize, n_depts: usize, fracs: &[f64]) -> Vec<Point> {
    fracs
        .iter()
        .map(|&frac_big| {
            let cat = emp_dept(EmpDeptConfig {
                n_emps,
                n_depts,
                frac_big,
                ..Default::default()
            });
            let db = Database::with_catalog(cat);
            let q = paper_query();

            let naive = db.run_logical(&q.to_plan()).expect("naive plan runs");
            let sips = Sips::derive(db.catalog(), &q, &["E".to_string(), "D".to_string()], "V")
                .expect("the did key exists");
            let magic = db.run_magic(&q, &sips).expect("magic plan runs");
            let cost_based = db.execute(&q).expect("optimized plan runs");

            assert_eq!(
                sorted(naive.rows.clone()),
                sorted(magic.rows.clone()),
                "magic must preserve the answer"
            );
            assert_eq!(
                sorted(naive.rows.clone()),
                sorted(cost_based.rows.clone()),
                "optimizer must preserve the answer"
            );

            Point {
                frac_big,
                naive: naive.measured_cost,
                magic: magic.measured_cost,
                cost_based: cost_based.measured_cost,
                chose_magic: !cost_based.sips.is_empty(),
            }
        })
        .collect()
}

fn sorted(mut rows: Vec<fj_core::Tuple>) -> Vec<fj_core::Tuple> {
    rows.sort();
    rows
}

/// The printable report.
pub fn run(n_emps: usize, n_depts: usize) -> Report {
    let fracs = [0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0];
    let points = sweep(n_emps, n_depts, &fracs);
    let mut r = Report::new(
        format!("Figures 1-2: motivating query, {n_emps} emps / {n_depts} depts (measured cost, page units)"),
        &["frac_big", "naive", "always-magic", "cost-based", "optimizer chose"],
    );
    for p in &points {
        r.row(vec![
            format!("{:.2}", p.frac_big),
            Report::num(p.naive),
            Report::num(p.magic),
            Report::num(p.cost_based),
            if p.chose_magic {
                "filter join"
            } else {
                "no magic"
            }
            .into(),
        ]);
    }
    let wins = points.iter().filter(|p| p.magic < p.naive).count();
    r.note(format!(
        "magic wins at {wins}/{} sweep points; cost-based should track min(naive, magic)",
        points.len()
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_wins_when_selective_loses_when_not() {
        let pts = sweep(4000, 400, &[0.02, 1.0]);
        assert!(
            pts[0].magic < pts[0].naive,
            "selective: magic {} < naive {}",
            pts[0].magic,
            pts[0].naive
        );
        assert!(
            pts[1].magic > pts[1].naive * 0.9,
            "unselective: magic {} should not beat naive {} meaningfully",
            pts[1].magic,
            pts[1].naive
        );
    }

    #[test]
    fn cost_based_tracks_the_winner() {
        for p in sweep(3000, 300, &[0.02, 1.0]) {
            let best = p.naive.min(p.magic);
            assert!(
                p.cost_based <= best * 1.5 + 50.0,
                "cost-based {} strays too far above best {best} at frac {}",
                p.cost_based,
                p.frac_big
            );
        }
    }
}
