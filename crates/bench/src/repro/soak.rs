//! Network loopback soak: the Figure-1 workload driven through a real
//! `fj-net` TCP server by concurrent clients, with row-sets verified
//! against the serial `Database` facade on every reply.
//!
//! The point is operational, not analytical: under a deliberately tiny
//! submission queue the burst *must* shed (typed, retryable SHED
//! replies — never a hang), shed clients back off and retry to
//! completion, and every row that does come back over the wire is
//! byte-identical to serial execution.

use crate::report::Report;
use crate::workloads::{emp_dept, paper_query, EmpDeptConfig};
use fj_core::{Database, Tuple};
use fj_net::{Client, NetError, QueryOptions, Server, ServerConfig};
use fj_runtime::ServiceConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// Per-soak tallies accumulated across client threads.
#[derive(Debug, Default)]
struct Tally {
    ok: AtomicU64,
    shed_retries: AtomicU64,
    deadline_hits: AtomicU64,
}

/// Runs `clients` concurrent TCP clients, each issuing
/// `queries_per_client` Figure-1 queries against a server whose
/// submission queue is kept small enough to shed under the burst.
/// Panics (failing the reproduction) if any reply's row-set diverges
/// from serial execution or a client exhausts its retry budget.
pub fn run(n_emps: usize, n_depts: usize, clients: usize, queries_per_client: usize) -> Report {
    let cat = emp_dept(EmpDeptConfig {
        n_emps,
        n_depts,
        frac_big: 0.1,
        ..Default::default()
    });
    let expected = Arc::new(sorted(
        Database::with_catalog(cat.clone())
            .execute(&paper_query())
            .expect("serial reference execution")
            .rows,
    ));

    let server = Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            max_connections: clients.max(1) * 2,
            service: ServiceConfig {
                workers: 4,
                // Small on purpose: the burst must overrun it so the
                // shed/retry path is exercised on every soak run.
                queue_capacity: 4,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("soak server binds");
    let addr = server.local_addr();

    let tally = Arc::new(Tally::default());
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let expected = Arc::clone(&expected);
            let tally = Arc::clone(&tally);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                // Every third request carries a generous deadline so
                // the deadline plumbing runs hot even when it rarely
                // expires on an idle machine.
                let deadlined = QueryOptions {
                    deadline: Some(Duration::from_secs(30)),
                    config: None,
                    want_trace: false,
                };
                for i in 0..queries_per_client {
                    let opts = if i % 3 == 0 {
                        deadlined.clone()
                    } else {
                        QueryOptions::default()
                    };
                    let mut attempts = 0u32;
                    loop {
                        match client.query_with(&paper_query(), &opts) {
                            Ok(reply) => {
                                assert_eq!(
                                    sorted(reply.rows),
                                    *expected,
                                    "client {c} query {i}: TCP rows diverged from serial"
                                );
                                tally.ok.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(e) if e.is_retryable() => {
                                tally.shed_retries.fetch_add(1, Ordering::Relaxed);
                                attempts += 1;
                                assert!(
                                    attempts < 10_000,
                                    "client {c} query {i}: retry budget exhausted"
                                );
                                thread::sleep(Duration::from_millis(1 + (attempts as u64 % 5)));
                            }
                            Err(NetError::Remote {
                                code: fj_net::ErrorCode::DeadlineExceeded,
                                ..
                            }) => {
                                // A 30 s budget expiring means a badly
                                // overloaded machine, not a bug; note
                                // it and move on.
                                tally.deadline_hits.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(other) => panic!("client {c} query {i}: {other}"),
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("soak client thread");
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let stats = server.stats();
    let stats_json = server.stats_json();
    server.shutdown();

    let ok = tally.ok.load(Ordering::Relaxed);
    let shed_retries = tally.shed_retries.load(Ordering::Relaxed);
    let deadline_hits = tally.deadline_hits.load(Ordering::Relaxed);
    let total = (clients * queries_per_client) as u64;
    assert_eq!(
        ok + deadline_hits,
        total,
        "every issued query must resolve to verified rows (or a logged deadline)"
    );

    let mut report = Report::new(
        format!(
            "fj-net loopback soak — {clients} clients × {queries_per_client} queries \
             ({n_emps} emps / {n_depts} depts, queue_capacity=4)"
        ),
        &[
            "clients",
            "queries ok",
            "shed retries",
            "deadline",
            "queries/s",
            "KiB in",
            "KiB out",
        ],
    );
    report.row(vec![
        Report::cell(clients),
        Report::cell(ok),
        Report::cell(shed_retries),
        Report::cell(deadline_hits),
        Report::num(ok as f64 / secs),
        Report::num(stats.bytes_in as f64 / 1024.0),
        Report::num(stats.bytes_out as f64 / 1024.0),
    ]);
    report.note(
        "every reply's row-set verified byte-identical to the serial Database facade; \
         sheds are typed retryable replies, never hangs",
    );
    report.note(format!("server stats: {stats_json}"));
    report
}
