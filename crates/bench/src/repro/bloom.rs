//! B1 — lossy filter sets (§3.2, Appendix A): Bloom filter size vs
//! false-positive rate vs shipped bytes vs total cost, against the
//! exact filter set, in the distributed setting where the trade-off
//! bites (a Bloom filter ships at a *fixed* size; the exact set scales
//! with its cardinality but admits no false positives).

use crate::report::Report;
use crate::workloads::orders_customers;
use fj_core::storage::CPU_WEIGHT_DEFAULT;
use fj_core::{col, ExecCtx, NetworkModel, PhysPlan, SiteId};
use std::sync::Arc;

/// One filter-implementation outcome.
#[derive(Debug, Clone)]
pub struct BloomOutcome {
    /// Label ("exact" or "bloom Nb").
    pub label: String,
    /// Bytes shipped in total (filter out + survivors back).
    pub bytes_shipped: u64,
    /// Inner tuples surviving the filter (false positives inflate
    /// this).
    pub survivors: usize,
    /// Total weighted cost.
    pub cost: f64,
}

/// Runs the exact filter and Bloom filters of several sizes.
pub fn sweep(
    n_orders: usize,
    n_customers: usize,
    referenced: usize,
    bloom_bits: &[u64],
) -> Vec<BloomOutcome> {
    let network = NetworkModel::wan();
    let mut out = Vec::new();

    // Exact filter set first.
    out.push(run_one(
        n_orders,
        n_customers,
        referenced,
        None,
        network,
        "exact".into(),
    ));
    for &bits in bloom_bits {
        out.push(run_one(
            n_orders,
            n_customers,
            referenced,
            Some(bits),
            network,
            format!("bloom {bits}b"),
        ));
    }
    out
}

fn run_one(
    n_orders: usize,
    n_customers: usize,
    referenced: usize,
    bloom_bits: Option<u64>,
    network: NetworkModel,
    label: String,
) -> BloomOutcome {
    let (orders, customers) = orders_customers(n_orders, n_customers, referenced, 13);
    let scenario = fj_core::distsim::TwoSiteScenario::new(
        orders.into_ref(),
        customers.into_ref(),
        "cust",
        "cust",
        network,
    );
    let ctx = ExecCtx::new(Arc::clone(&scenario.catalog));
    let before = ctx.ledger.snapshot();
    let outer = PhysPlan::SeqScan {
        table: "Orders".into(),
        alias: "O".into(),
    };
    let inner = PhysPlan::SeqScan {
        table: "Customers".into(),
        alias: "C".into(),
    };
    let filter_proj = PhysPlan::Project {
        input: outer.clone().boxed(),
        exprs: vec![(col("O.cust"), "k0".into())],
    };

    let (steps, restricted) = match bloom_bits {
        Some(bits) => (
            vec![fj_core::exec::TempStep::BuildBloom {
                name: "__b".into(),
                plan: filter_proj,
                key_cols: vec!["k0".into()],
                bits,
                hashes: 4,
                ship: Some((SiteId::LOCAL, scenario.remote_site)),
            }],
            PhysPlan::BloomProbe {
                input: inner.boxed(),
                bloom: "__b".into(),
                key_cols: vec!["C.cust".into()],
            },
        ),
        None => (
            vec![fj_core::exec::TempStep::Materialize {
                name: "__f".into(),
                plan: PhysPlan::Ship {
                    input: PhysPlan::Distinct {
                        input: filter_proj.boxed(),
                    }
                    .boxed(),
                    from: SiteId::LOCAL,
                    to: scenario.remote_site,
                },
            }],
            PhysPlan::HashJoin {
                outer: inner.boxed(),
                inner: PhysPlan::TempScan {
                    name: "__f".into(),
                    alias: "F".into(),
                }
                .boxed(),
                keys: vec![("C.cust".into(), "F.k0".into())],
                residual: None,
                kind: fj_core::algebra::JoinKind::Semi,
            },
        ),
    };
    // Measure the survivors (restricted inner cardinality) via a
    // sub-execution inside the plan: ship them home and join.
    let plan = PhysPlan::WithTemp {
        steps,
        body: PhysPlan::WithTemp {
            steps: vec![fj_core::exec::TempStep::Materialize {
                name: "__rk".into(),
                plan: PhysPlan::Ship {
                    input: restricted.boxed(),
                    from: scenario.remote_site,
                    to: SiteId::LOCAL,
                },
            }],
            body: PhysPlan::HashJoin {
                outer: outer.boxed(),
                inner: PhysPlan::TempScan {
                    name: "__rk".into(),
                    alias: String::new(),
                }
                .boxed(),
                keys: vec![("O.cust".into(), "C.cust".into())],
                residual: None,
                kind: fj_core::algebra::JoinKind::Inner,
            }
            .boxed(),
        }
        .boxed(),
    };
    // Count survivors with a separate probe-only execution of the same
    // steps (cheap) before running the full plan would double charge;
    // instead, derive survivors from the join: rerun restricted alone.
    let rel = plan.execute(&ctx).expect("bloom variant runs");
    assert_eq!(rel.rows.len(), n_orders, "join answer preserved");
    let d = ctx.ledger.snapshot().delta(&before);

    // Survivors: reconstruct by running the restriction standalone on a
    // throwaway context (not charged to the measured ledger).
    let survivors = {
        let ctx2 = ExecCtx::new(Arc::clone(&scenario.catalog));
        let probe = match bloom_bits {
            Some(bits) => PhysPlan::WithTemp {
                steps: vec![fj_core::exec::TempStep::BuildBloom {
                    name: "__b2".into(),
                    plan: PhysPlan::Project {
                        input: PhysPlan::SeqScan {
                            table: "Orders".into(),
                            alias: "O".into(),
                        }
                        .boxed(),
                        exprs: vec![(col("O.cust"), "k0".into())],
                    },
                    key_cols: vec!["k0".into()],
                    bits,
                    hashes: 4,
                    ship: None,
                }],
                body: PhysPlan::BloomProbe {
                    input: PhysPlan::SeqScan {
                        table: "Customers".into(),
                        alias: "C".into(),
                    }
                    .boxed(),
                    bloom: "__b2".into(),
                    key_cols: vec!["C.cust".into()],
                }
                .boxed(),
            },
            None => PhysPlan::WithTemp {
                steps: vec![fj_core::exec::TempStep::Materialize {
                    name: "__f2".into(),
                    plan: PhysPlan::Distinct {
                        input: PhysPlan::Project {
                            input: PhysPlan::SeqScan {
                                table: "Orders".into(),
                                alias: "O".into(),
                            }
                            .boxed(),
                            exprs: vec![(col("O.cust"), "k0".into())],
                        }
                        .boxed(),
                    },
                }],
                body: PhysPlan::HashJoin {
                    outer: PhysPlan::SeqScan {
                        table: "Customers".into(),
                        alias: "C".into(),
                    }
                    .boxed(),
                    inner: PhysPlan::TempScan {
                        name: "__f2".into(),
                        alias: "F".into(),
                    }
                    .boxed(),
                    keys: vec![("C.cust".into(), "F.k0".into())],
                    residual: None,
                    kind: fj_core::algebra::JoinKind::Semi,
                }
                .boxed(),
            },
        };
        probe.execute(&ctx2).expect("probe runs").rows.len()
    };

    BloomOutcome {
        label,
        bytes_shipped: d.bytes_shipped,
        survivors,
        cost: d.weighted(CPU_WEIGHT_DEFAULT, network.per_byte, network.per_message),
    }
}

/// The printable report.
pub fn run(n_orders: usize, n_customers: usize, referenced: usize) -> Report {
    let outcomes = sweep(
        n_orders,
        n_customers,
        referenced,
        &[256, 1024, 4096, 65_536],
    );
    let mut r = Report::new(
        format!(
            "B1: exact vs lossy (Bloom) filter sets on a WAN ({n_orders} orders, {n_customers} customers, {referenced} referenced)"
        ),
        &["filter", "bytes shipped", "survivors", "fp tuples", "cost"],
    );
    for o in &outcomes {
        r.row(vec![
            o.label.clone(),
            o.bytes_shipped.to_string(),
            o.survivors.to_string(),
            (o.survivors.saturating_sub(referenced)).to_string(),
            Report::num(o.cost),
        ]);
    }
    r.note("small Bloom filters ship less but let false positives through; saturation makes them useless");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_blooms_fewer_false_positives() {
        let out = sweep(500, 5000, 20, &[128, 16_384]);
        let small = &out[1];
        let big = &out[2];
        assert!(
            big.survivors <= small.survivors,
            "16k-bit bloom {} survivors vs 128-bit {}",
            big.survivors,
            small.survivors
        );
        // The exact filter admits exactly the referenced keys.
        assert_eq!(out[0].survivors, 20);
    }

    #[test]
    fn saturated_bloom_passes_everything() {
        let out = sweep(500, 5000, 400, &[64]);
        // 400 keys into 64 bits: saturated, nearly everything survives.
        assert!(out[1].survivors > 4000, "got {}", out[1].survivors);
    }
}
