//! E1 — bushy vs left-deep join enumeration on star and snowflake
//! catalogs.
//!
//! The ROADMAP's enumeration item predicts that on star/snowflake
//! schemas, pre-joining small (filtered) dimensions into one build side
//! beats any left-deep chain: the fact table is probed exactly once
//! instead of once per dimension, and nothing fact-sized is ever used
//! as a hash build (which would Grace-partition). This experiment
//! optimizes the same query on the same catalog under
//! [`PlanShape::LeftDeep`] and [`PlanShape::Bushy`] and reports the
//! *predicted* cost of each winner, the *measured* ledger cost of
//! executing both plans, and the enumeration work spent — then asserts
//! the invariants CI relies on:
//!
//! * answers are byte-identical between shapes;
//! * bushy predicted cost is never worse than left-deep (the bushy
//!   space is a strict superset);
//! * on the star catalog the bushy winner is *strictly* cheaper.

use crate::report::Report;
use crate::workloads::{snowflake, star_selective};
use fj_core::{Catalog, Database, JoinQuery, Optimizer, OptimizerConfig, PlanShape};
use std::sync::Arc;

/// One catalog arm, measured under both plan shapes.
pub struct ShapePoint {
    /// Arm label.
    pub name: &'static str,
    /// Predicted cost of the best left-deep plan (page units).
    pub left_deep_predicted: f64,
    /// Predicted cost of the best bushy plan (page units).
    pub bushy_predicted: f64,
    /// Measured ledger cost executing the left-deep winner.
    pub left_deep_measured: f64,
    /// Measured ledger cost executing the bushy winner.
    pub bushy_measured: f64,
    /// Join alternatives costed by each enumerator.
    pub left_deep_considered: u64,
    /// Join alternatives costed by the bushy enumerator.
    pub bushy_considered: u64,
    /// Result cardinality (identical under both shapes).
    pub rows: usize,
}

/// Optimizes and executes `q` over `cat` under both plan shapes.
pub fn measure(name: &'static str, cat: Catalog, q: &JoinQuery) -> ShapePoint {
    let shared = Arc::new(cat.clone());
    let db = Database::with_catalog(cat);
    let mut predicted = [0.0f64; 2];
    let mut measured = [0.0f64; 2];
    let mut considered = [0u64; 2];
    let mut rows: [Vec<fj_core::Tuple>; 2] = [Vec::new(), Vec::new()];
    for (i, shape) in [PlanShape::LeftDeep, PlanShape::Bushy]
        .into_iter()
        .enumerate()
    {
        let cfg = OptimizerConfig::default().with_shape(shape);
        let plan = Optimizer::new(Arc::clone(&shared), cfg)
            .optimize(q)
            .expect("workload optimizes");
        predicted[i] = plan.cost;
        considered[i] = plan.plans_considered;
        let result = db.execute_with_config(q, cfg).expect("workload executes");
        measured[i] = result.measured_cost;
        rows[i] = result.rows;
        rows[i].sort();
    }
    assert_eq!(
        rows[0], rows[1],
        "{name}: bushy and left-deep answers must be byte-identical"
    );
    ShapePoint {
        name,
        left_deep_predicted: predicted[0],
        bushy_predicted: predicted[1],
        left_deep_measured: measured[0],
        bushy_measured: measured[1],
        left_deep_considered: considered[0],
        bushy_considered: considered[1],
        rows: rows[0].len(),
    }
}

/// Both arms at the given scale: a star with three selective
/// dimensions, and a snowflake with two dimension arms.
pub fn sweep(fact_rows: usize, dim_rows: usize, sub_rows: usize) -> Vec<ShapePoint> {
    let (star_cat, star_q) = star_selective(4, fact_rows, dim_rows.min(100), 15, 11);
    let (snow_cat, snow_q) = snowflake(2, fact_rows, dim_rows, sub_rows, 15, 13);
    vec![
        measure("star (3 selective dims)", star_cat, &star_q),
        measure("snowflake (2 arms)", snow_cat, &snow_q),
    ]
}

/// The printable report, with the CI assertions applied.
pub fn run(fact_rows: usize, dim_rows: usize, sub_rows: usize) -> Report {
    let points = sweep(fact_rows, dim_rows, sub_rows);
    let mut r = Report::new(
        format!("E1: bushy vs left-deep enumeration ({fact_rows} fact rows, {dim_rows} dim rows)"),
        &[
            "catalog",
            "shape",
            "predicted",
            "measured",
            "plans considered",
            "rows",
        ],
    );
    for p in &points {
        r.row(vec![
            p.name.to_string(),
            "left-deep".to_string(),
            Report::num(p.left_deep_predicted),
            Report::num(p.left_deep_measured),
            p.left_deep_considered.to_string(),
            p.rows.to_string(),
        ]);
        r.row(vec![
            p.name.to_string(),
            "bushy".to_string(),
            Report::num(p.bushy_predicted),
            Report::num(p.bushy_measured),
            p.bushy_considered.to_string(),
            p.rows.to_string(),
        ]);
        r.note(format!(
            "{}: left-deep/bushy predicted cost ratio {:.2}x (measured {:.2}x)",
            p.name,
            p.left_deep_predicted / p.bushy_predicted,
            p.left_deep_measured / p.bushy_measured.max(1e-9),
        ));
        // The bushy space is a strict superset of the left-deep space,
        // so the bushy winner can never be predicted worse.
        assert!(
            p.bushy_predicted <= p.left_deep_predicted * 1.01 + 1e-6,
            "{}: bushy predicted {} worse than left-deep {}",
            p.name,
            p.bushy_predicted,
            p.left_deep_predicted
        );
        assert!(
            p.bushy_considered >= p.left_deep_considered,
            "{}: bushy enumerated fewer alternatives ({} vs {})",
            p.name,
            p.bushy_considered,
            p.left_deep_considered
        );
    }
    // The acceptance bar: on the star catalog the bushy winner is
    // *strictly* cheaper than the best left-deep plan.
    let star = &points[0];
    assert!(
        star.bushy_predicted < star.left_deep_predicted,
        "star: bushy {} must be strictly cheaper than left-deep {}",
        star.bushy_predicted,
        star.left_deep_predicted
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bushy_strictly_cheaper_on_star_and_snowflake() {
        let points = sweep(20_000, 400, 60);
        for p in &points {
            assert!(
                p.bushy_predicted < p.left_deep_predicted,
                "{}: bushy {} vs left-deep {}",
                p.name,
                p.bushy_predicted,
                p.left_deep_predicted
            );
        }
    }
}
