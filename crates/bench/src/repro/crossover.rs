//! C2 — the case for *cost-based* magic: a fine-grained selectivity
//! sweep locating the crossover between "never rewrite" and "always
//! rewrite", and checking the cost-based optimizer lands on the right
//! side of it everywhere.

use crate::report::Report;
use crate::repro::fig1_magic::{sweep, Point};

/// Finds the crossover fraction: the first sweep point where
/// always-magic stops beating naive.
pub fn find_crossover(points: &[Point]) -> Option<f64> {
    points
        .iter()
        .find(|p| p.magic >= p.naive)
        .map(|p| p.frac_big)
}

/// The printable report.
pub fn run(n_emps: usize, n_depts: usize) -> Report {
    let fracs: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
    let points = sweep(n_emps, n_depts, &fracs);
    let mut r = Report::new(
        format!("C2: never/always/cost-based policies, crossover sweep ({n_emps} emps / {n_depts} depts)"),
        &["frac_big", "never-magic", "always-magic", "cost-based", "regret vs best"],
    );
    let mut total_regret = 0.0;
    for p in &points {
        let best = p.naive.min(p.magic);
        let regret = (p.cost_based - best).max(0.0);
        total_regret += regret;
        r.row(vec![
            format!("{:.1}", p.frac_big),
            Report::num(p.naive),
            Report::num(p.magic),
            Report::num(p.cost_based),
            Report::num(regret),
        ]);
    }
    match find_crossover(&points) {
        Some(f) => r.note(format!("crossover at frac_big ≈ {f:.1}")),
        None => r.note("always-magic wins across the whole sweep at this scale"),
    }
    r.note(format!(
        "total cost-based regret across the sweep: {total_regret:.1} page units"
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_based_has_bounded_regret() {
        let points = sweep(3000, 300, &[0.05, 0.5, 1.0]);
        for p in &points {
            let best = p.naive.min(p.magic);
            let worst = p.naive.max(p.magic);
            // Cost-based must be much closer to best than to worst.
            assert!(
                p.cost_based - best <= (worst - best) * 0.6 + 50.0,
                "at frac {}: cost-based {} best {best} worst {worst}",
                p.frac_big,
                p.cost_based
            );
        }
    }
}
