//! Recovery chaos: a two-replica cluster where one replica is
//! disk-backed with torn-page-write and slow-fsync faults armed, gets
//! hard-killed mid-storm, restarts from its data directory (WAL replay
//! heals every torn page), and is re-admitted by the cluster's HEALTH
//! prober — all under concurrent clients mixing plain, deadlined, and
//! cancelled queries.
//!
//! The recovery contract under fire: **no client-visible query
//! failures, and the rejoined replica answers byte-identical to serial
//! execution**. The crash window is absorbed by failover; recovery
//! replays only committed loads; the restarted replica starts with a
//! cold buffer pool, so its first queries physically read the healed
//! page file (pool misses > 0 proves the disk was really consulted).
//!
//! The disk replica sits behind a tiny TCP forwarder so its *address*
//! survives the crash: the prober keeps probing the same endpoint,
//! marks it dead while the process is down, and re-admits it when the
//! restarted server comes back — the same stable-endpoint model a
//! service VIP gives a real cluster.

use super::forwarder::Forwarder;
use crate::report::Report;
use crate::workloads::{emp_dept, paper_query, EmpDeptConfig};
use fj_cluster::{CancelToken, ClusterClient, ClusterConfig, ClusterError, HedgeConfig};
use fj_core::{Database, OptimizerConfig, Tuple};
use fj_net::{Client, ErrorCode, QueryOptions, Server, ServerConfig};
use fj_runtime::{FaultPlan, RecoveryReport, ServiceConfig, StorageMode};
use fj_store::{Store, TempDir};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// Per-run tallies accumulated across client threads.
#[derive(Debug, Default)]
struct Tally {
    ok: AtomicU64,
    deadline_hits: AtomicU64,
    cancelled: AtomicU64,
    injected_faults: AtomicU64,
    reroutes: AtomicU64,
    budget_stalls: AtomicU64,
}

/// The disk replica's config: small pool pressure is *not* the point of
/// this run — the pool must hold the working set so pre-crash queries
/// never read the torn on-disk pages (the load path warmed the good
/// images into memory; the disk is only trusted again after recovery
/// heals it from the WAL).
fn disk_service(dir: &Path) -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        queue_capacity: 64,
        storage: StorageMode::Disk {
            dir: dir.to_path_buf(),
            pool_pages: 4096,
        },
        // Every page write torn, occasional slow fsyncs: the page file
        // is garbage until recovery, and commits still group-fsync.
        fault_plan: Some(Arc::new(
            FaultPlan::new(0xD15C)
                .with_torn_page_writes(1)
                .with_slow_fsync(2, Duration::from_millis(1)),
        )),
        ..ServiceConfig::default()
    }
}

fn disk_replica(cat: fj_core::Catalog, dir: &Path, clients: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            max_connections: clients.max(1) * 4,
            service: disk_service(dir),
            ..ServerConfig::default()
        },
    )
    .expect("disk replica binds")
}

/// The storm: clients hammer the cluster while the disk replica is
/// crashed and then restarted from its data directory. Returns the
/// tally, cluster stats, the restart's recovery report, and the
/// restarted replica's (pool misses, physical reads, completed
/// queries, rows of a direct post-recovery query).
#[allow(clippy::too_many_lines)]
fn storm(
    n_emps: usize,
    n_depts: usize,
    clients: usize,
    queries_per_client: usize,
    dir: &Path,
) -> (
    Tally,
    fj_cluster::ClusterStats,
    RecoveryReport,
    (u64, u64, u64, Vec<Tuple>),
) {
    let cat = emp_dept(EmpDeptConfig {
        n_emps,
        n_depts,
        frac_big: 0.1,
        ..Default::default()
    });
    let expected = Arc::new(sorted(
        Database::with_catalog(cat.clone())
            .execute(&paper_query())
            .expect("serial reference execution")
            .rows,
    ));

    // Replica A: in-memory, with read errors and stalls so typed
    // retries stay exercised while B is down.
    let server_a = Server::bind(
        "127.0.0.1:0",
        cat.clone(),
        ServerConfig {
            max_connections: clients.max(1) * 4,
            service: ServiceConfig {
                workers: 4,
                queue_capacity: 64,
                fault_plan: Some(Arc::new(
                    FaultPlan::new(0xA11CE)
                        .with_read_errors(200)
                        .with_stalls(96, Duration::from_micros(200)),
                )),
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("replica A binds");

    // Replica B: disk-backed behind the stable forwarder endpoint.
    let forwarder = Forwarder::start();
    let server_b = disk_replica(cat.clone(), dir, clients);
    forwarder.set_backend(Some(server_b.local_addr()));

    let addrs = vec![server_a.local_addr(), forwarder.addr];
    let cluster = Arc::new(
        ClusterClient::connect(
            &addrs,
            ClusterConfig {
                probe_interval: Duration::from_millis(10),
                probe_timeout: Duration::from_millis(500),
                connect_timeout: Duration::from_millis(500),
                retry_budget_capacity: 64,
                retry_deposit_per_success: 0.5,
                hedge: HedgeConfig {
                    enabled: true,
                    quantile: 0.5,
                    min_delay: Duration::from_millis(2),
                    min_samples: 16,
                    // Verify mode: a hedge racing the in-memory and the
                    // disk-backed replica must see identical bytes.
                    verify: true,
                },
                ..ClusterConfig::default()
            },
        )
        .expect("cluster client"),
    );

    let tally = Arc::new(Tally::default());
    let done = Arc::new(AtomicU64::new(0));
    let total = (clients * queries_per_client) as u64;
    let restarted: Arc<Mutex<Option<(Server, RecoveryReport)>>> = Arc::new(Mutex::new(None));
    thread::scope(|scope| {
        // Coordinator: crash B a quarter of the way in, restart it from
        // its data directory at the halfway mark. Both transitions are
        // invisible to the clients except as failovers.
        {
            let done = Arc::clone(&done);
            let restarted = Arc::clone(&restarted);
            let forwarder = &forwarder;
            let cat = cat.clone();
            scope.spawn(move || {
                while done.load(Ordering::Relaxed) < total / 4 {
                    thread::sleep(Duration::from_millis(1));
                }
                forwarder.set_backend(None);
                server_b.abort();
                while done.load(Ordering::Relaxed) < total / 2 {
                    thread::sleep(Duration::from_millis(1));
                }
                // Restart ≡ recover: Store::open replays the WAL's
                // committed loads in place, healing every torn page
                // from its logged image.
                let server = disk_replica(cat, dir, clients);
                let report = server
                    .recovery_report()
                    .expect("disk replica has a recovery report");
                forwarder.set_backend(Some(server.local_addr()));
                *restarted.lock().unwrap() = Some((server, report));
            });
        }
        for c in 0..clients {
            let cluster = Arc::clone(&cluster);
            let expected = Arc::clone(&expected);
            let tally = Arc::clone(&tally);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                for i in 0..queries_per_client {
                    // i % 4: 1 → tiny deadline, 3 → mid-flight cancel,
                    // else plain. Governed queries run the naive plan
                    // so cancellation has a window.
                    let opts = if i % 4 == 1 {
                        QueryOptions {
                            deadline: Some(Duration::from_millis(1)),
                            config: Some(OptimizerConfig::without_filter_join()),
                            want_trace: false,
                        }
                    } else if i % 4 == 3 {
                        QueryOptions {
                            deadline: None,
                            config: Some(OptimizerConfig::without_filter_join()),
                            want_trace: false,
                        }
                    } else {
                        QueryOptions::default()
                    };
                    let mut attempts = 0u32;
                    loop {
                        attempts += 1;
                        assert!(
                            attempts < 1000,
                            "client {c} query {i} cannot reach a terminal outcome"
                        );
                        let token = Arc::new(CancelToken::new());
                        let killer = (i % 4 == 3).then(|| {
                            let token = Arc::clone(&token);
                            thread::spawn(move || {
                                thread::sleep(Duration::from_micros(300));
                                token.cancel();
                            })
                        });
                        let outcome = cluster.query_with_token(&paper_query(), &opts, &token);
                        if let Some(k) = killer {
                            k.join().expect("canceller thread");
                        }
                        match outcome {
                            Ok(reply) => {
                                assert_eq!(
                                    sorted(reply.rows),
                                    *expected,
                                    "client {c} query {i}: rows diverged from serial"
                                );
                                tally.ok.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(ClusterError::Cancelled) if i % 4 == 3 => {
                                tally.cancelled.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(ClusterError::Net(e))
                                if e.error_code() == Some(ErrorCode::DeadlineExceeded)
                                    && i % 4 == 1 =>
                            {
                                tally.deadline_hits.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(ClusterError::Net(e))
                                if e.error_code() == Some(ErrorCode::QueryFailed) =>
                            {
                                tally.injected_faults.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ClusterError::NoHealthyReplica { .. }) => {
                                tally.reroutes.fetch_add(1, Ordering::Relaxed);
                                thread::sleep(Duration::from_millis(2));
                            }
                            Err(ClusterError::RetryBudgetExhausted { .. }) => {
                                tally.budget_stalls.fetch_add(1, Ordering::Relaxed);
                                thread::sleep(Duration::from_millis(5));
                            }
                            Err(other) => {
                                panic!("client {c} query {i}: unexpected {other:?}")
                            }
                        }
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let (server, report) = restarted
        .lock()
        .unwrap()
        .take()
        .expect("coordinator restarted the disk replica");

    // Re-admission proof: probe now, then route cluster queries until
    // the recovered replica has completed at least one (round-robin
    // spreads ready replicas, so a handful of queries suffices).
    cluster.probe_now();
    let already = server.metrics().completed;
    for _ in 0..200 {
        if server.metrics().completed > already {
            break;
        }
        let _ = cluster.query(&paper_query());
    }
    let completed_after_rejoin = server.metrics().completed;
    assert!(
        completed_after_rejoin > already || already > 0,
        "the recovered replica must serve cluster queries after re-admission"
    );

    // Byte-identity proof, straight at the recovered replica: the rows
    // it serves from its healed page file equal serial execution.
    let direct_rows = Client::connect(forwarder.addr)
        .expect("direct client to recovered replica")
        .query(&paper_query())
        .expect("direct query on recovered replica")
        .rows;

    let stats = cluster.stats();
    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => unreachable!("all client threads joined"),
    }
    let store_stats = server.store_stats();
    server_a.shutdown();
    server.shutdown();
    forwarder.stop();
    let tally = Arc::try_unwrap(tally).expect("all client threads joined");
    (
        tally,
        stats,
        report,
        (
            store_stats.pool_misses,
            store_stats.physical_reads,
            completed_after_rejoin,
            direct_rows,
        ),
    )
}

/// Drives the full recovery chaos reproduction. Panics (failing the
/// reproduction) if any query resolves outside the expected classes,
/// any row-set diverges from serial, recovery fails to replay the
/// crashed replica's tables, the rejoined replica serves nothing, or
/// the post-shutdown store re-open disagrees with the template rows.
pub fn run(n_emps: usize, n_depts: usize, clients: usize, queries_per_client: usize) -> Report {
    let dir = TempDir::new("recovery-chaos");
    let (tally, stats, recovery, (pool_misses, physical_reads, rejoined_completed, direct_rows)) =
        storm(n_emps, n_depts, clients, queries_per_client, dir.path());

    let ok = tally.ok.load(Ordering::Relaxed);
    let deadline_hits = tally.deadline_hits.load(Ordering::Relaxed);
    let cancelled = tally.cancelled.load(Ordering::Relaxed);
    let injected_faults = tally.injected_faults.load(Ordering::Relaxed);
    let reroutes = tally.reroutes.load(Ordering::Relaxed);
    let budget_stalls = tally.budget_stalls.load(Ordering::Relaxed);
    let total = (clients * queries_per_client) as u64;
    assert_eq!(
        ok + deadline_hits + cancelled,
        total,
        "every query must terminate as a verified result, a requested \
         cancellation, or a requested deadline expiry"
    );
    assert!(ok >= 1, "the storm must complete some queries");
    assert!(
        stats.failovers >= 1,
        "crashing the disk replica must exercise failover"
    );
    assert_eq!(
        stats.hedge_mismatches, 0,
        "hedge verification must never see the disk and memory replicas disagree"
    );
    assert_eq!(
        recovery.replayed_tables, 2,
        "recovery must replay both committed tables from the WAL"
    );
    assert!(
        recovery.replayed_pages > 0,
        "recovery must write page images back (healing the torn writes)"
    );
    assert!(
        pool_misses > 0 && physical_reads > 0,
        "the restarted replica starts cold: its queries must read the page file"
    );

    // The crashed-and-recovered replica answers byte-identical to
    // serial in-memory execution.
    let cat = emp_dept(EmpDeptConfig {
        n_emps,
        n_depts,
        frac_big: 0.1,
        ..Default::default()
    });
    let expected = sorted(
        Database::with_catalog(cat.clone())
            .execute(&paper_query())
            .expect("serial reference execution")
            .rows,
    );
    assert_eq!(
        sorted(direct_rows),
        expected,
        "recovered replica must answer byte-identical to serial"
    );

    // Post-shutdown, the data directory alone still reproduces every
    // row of both tables, byte-identical and in load order — and a
    // second recovery replays to the same bytes (idempotence).
    for _ in 0..2 {
        let (store, _) = Store::open(dir.path(), 64, None).expect("re-open data directory");
        for name in ["Emp", "Dept"] {
            let tmpl = cat.table(name).expect("template table");
            let (schema, rows) = store.recovered_rows(name).expect("recovered rows");
            assert_eq!(&schema, tmpl.schema().as_ref(), "{name}: schema");
            assert_eq!(rows, tmpl.rows(), "{name}: recovered rows diverged");
        }
    }

    let mut report = Report::new(
        format!(
            "fj-store recovery chaos — {clients} clients × {queries_per_client} queries; \
             disk replica (torn writes + slow fsync) crashed and restarted from its \
             data directory mid-storm ({n_emps} emps / {n_depts} depts)"
        ),
        &[
            "clients",
            "queries ok",
            "deadline",
            "cancelled",
            "faults retried",
            "failovers",
            "replayed tables",
            "replayed pages",
            "pool misses",
            "phys reads",
            "rejoin served",
        ],
    );
    report.row(vec![
        Report::cell(clients),
        Report::cell(ok),
        Report::cell(deadline_hits),
        Report::cell(cancelled),
        Report::cell(injected_faults),
        Report::cell(stats.failovers),
        Report::cell(recovery.replayed_tables),
        Report::cell(recovery.replayed_pages),
        Report::cell(pool_misses),
        Report::cell(physical_reads),
        Report::cell(rejoined_completed),
    ]);
    report.note(
        "zero client-visible failures: every query resolved as a serial-verified \
         result, a requested cancel, or a requested deadline; the crash window was \
         absorbed by failover and the restarted replica was re-admitted by HEALTH \
         probes at its stable endpoint",
    );
    report.note(format!(
        "recovery replayed {} tables / {} page images from the WAL (every page \
         write was torn at load time — replay healed all of them); the rejoined \
         replica answered byte-identical to serial, cold ({} pool misses, {} \
         physical page reads){}",
        recovery.replayed_tables,
        recovery.replayed_pages,
        pool_misses,
        physical_reads,
        if recovery.torn_wal_tail {
            "; a torn WAL tail was truncated"
        } else {
            ""
        }
    ));
    report.note(format!(
        "transient windows: {reroutes} no-candidate reroutes, {budget_stalls} \
         budget-exhausted backoffs (both typed, both recovered); post-shutdown the \
         data directory re-opened twice to byte-identical rows for both tables"
    ));
    report.note(format!("cluster stats: {}", stats.to_json()));
    report
}
