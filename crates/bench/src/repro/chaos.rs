//! Chaos soak: the loopback soak under seeded storage faults, client
//! cancellations, tiny deadlines, and one induced worker panic.
//!
//! The governor contract under fire: every injected page-read fault
//! surfaces as a typed QUERY_FAILED reply (never a hang, never a
//! panic escaping the pool), cancellations and expired deadlines tear
//! their queries down server-side, the one induced worker panic is
//! caught and answered by a respawn (`workers_replaced == 1`), and —
//! the headline — **every surviving OK reply is byte-identical to
//! serial execution**. After the storm, a full batch against the same
//! pool proves capacity never degraded.

use crate::report::Report;
use crate::workloads::{emp_dept, paper_query, EmpDeptConfig};
use fj_core::{Database, OptimizerConfig, Tuple};
use fj_net::{Client, ErrorCode, NetError, QueryOptions, RetryPolicy, Server, ServerConfig};
use fj_runtime::{FaultPlan, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// Per-run tallies accumulated across client threads.
#[derive(Debug, Default)]
struct Tally {
    ok: AtomicU64,
    deadline_hits: AtomicU64,
    cancelled: AtomicU64,
    injected_faults: AtomicU64,
    worker_panics: AtomicU64,
}

/// Drives `clients` concurrent TCP clients through a server carrying a
/// seeded [`FaultPlan`] (read errors + latency stalls + one exact-
/// ordinal induced panic). A quarter of the queries carry a deliberately
/// tiny deadline, another quarter are cancelled mid-flight from a
/// second thread. Panics (failing the reproduction) if any reply class
/// is untyped, any surviving row-set diverges from serial, or the pool
/// ends below full strength.
pub fn run(n_emps: usize, n_depts: usize, clients: usize, queries_per_client: usize) -> Report {
    let cat = emp_dept(EmpDeptConfig {
        n_emps,
        n_depts,
        frac_big: 0.1,
        ..Default::default()
    });
    let expected = Arc::new(sorted(
        Database::with_catalog(cat.clone())
            .execute(&paper_query())
            .expect("serial reference execution")
            .rows,
    ));

    // Seeded fault schedule: the same seed replays the same faults.
    // Read errors are common enough to show up every run, stalls add
    // latency jitter, and exactly one page read (ordinal 3) panics the
    // worker that performs it.
    let faults = Arc::new(
        FaultPlan::new(0xC4A05)
            .with_read_errors(200)
            .with_stalls(64, Duration::from_micros(200))
            .with_panic_at(3),
    );
    let server = Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            max_connections: clients.max(1) * 2,
            service: ServiceConfig {
                workers: 4,
                queue_capacity: 4, // small on purpose: shed/retry stays hot
                fault_plan: Some(Arc::clone(&faults)),
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("chaos server binds");
    let addr = server.local_addr();

    let tally = Arc::new(Tally::default());
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let expected = Arc::clone(&expected);
            let tally = Arc::clone(&tally);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let policy = RetryPolicy {
                    base: Duration::from_millis(1),
                    cap: Duration::from_millis(50),
                    max_attempts: 10_000,
                    seed: c as u64,
                };
                for i in 0..queries_per_client {
                    // i % 4: 1 → tiny deadline, 3 → mid-flight cancel,
                    // else plain. The governed queries run the naive
                    // no-filter-join plan (same rows, materialises the
                    // whole view) so cancellation has a real window.
                    let opts = if i % 4 == 1 {
                        QueryOptions {
                            deadline: Some(Duration::from_millis(1)),
                            config: Some(OptimizerConfig::without_filter_join()),
                            want_trace: false,
                        }
                    } else if i % 4 == 3 {
                        QueryOptions {
                            deadline: None,
                            config: Some(OptimizerConfig::without_filter_join()),
                            want_trace: false,
                        }
                    } else {
                        QueryOptions::default()
                    };
                    let killer = (i % 4 == 3).then(|| {
                        let mut canceller = client.canceller().expect("socket clones");
                        thread::spawn(move || {
                            thread::sleep(Duration::from_micros(300));
                            let _ = canceller.cancel();
                        })
                    });
                    let outcome = client.query_with_retry(&paper_query(), &opts, &policy);
                    if let Some(k) = killer {
                        k.join().expect("canceller thread");
                    }
                    match outcome {
                        Ok(reply) => {
                            assert_eq!(
                                sorted(reply.rows),
                                *expected,
                                "client {c} query {i}: surviving rows diverged from serial"
                            );
                            tally.ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(NetError::Remote { code, message }) => match code {
                            ErrorCode::DeadlineExceeded => {
                                tally.deadline_hits.fetch_add(1, Ordering::Relaxed);
                            }
                            ErrorCode::Cancelled => {
                                tally.cancelled.fetch_add(1, Ordering::Relaxed);
                            }
                            ErrorCode::QueryFailed if message.contains("injected") => {
                                tally.injected_faults.fetch_add(1, Ordering::Relaxed);
                            }
                            ErrorCode::Internal if message.contains("panicked") => {
                                tally.worker_panics.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => panic!("client {c} query {i}: unexpected [{code}] {message}"),
                        },
                        Err(other) => panic!("client {c} query {i}: {other}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("chaos client thread");
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);

    let ok = tally.ok.load(Ordering::Relaxed);
    let deadline_hits = tally.deadline_hits.load(Ordering::Relaxed);
    let cancelled = tally.cancelled.load(Ordering::Relaxed);
    let injected_faults = tally.injected_faults.load(Ordering::Relaxed);
    let worker_panics = tally.worker_panics.load(Ordering::Relaxed);
    let total = (clients * queries_per_client) as u64;
    assert_eq!(
        ok + deadline_hits + cancelled + injected_faults + worker_panics,
        total,
        "every issued query must resolve to a verified result or a typed refusal"
    );
    assert_eq!(
        worker_panics, 1,
        "exactly the one induced panic may surface to a client"
    );

    // Pool self-healed: the replacement worker is accounted for, and a
    // calm closing batch (retrying residual injected faults) completes
    // with full, correct rows — capacity never degraded.
    let metrics = server.metrics();
    assert_eq!(
        metrics.workers_replaced, 1,
        "panicked worker respawned once"
    );
    let mut closing = Client::connect(addr).expect("closing client connects");
    for i in 0..8 {
        let mut attempts = 0u32;
        let reply = loop {
            match closing.query(&paper_query()) {
                Ok(r) => break r,
                Err(NetError::Remote { code, message })
                    if code == ErrorCode::QueryFailed && message.contains("injected") =>
                {
                    attempts += 1;
                    assert!(attempts < 100, "closing query {i} cannot get past faults");
                }
                Err(other) => panic!("closing query {i}: {other}"),
            }
        };
        assert_eq!(
            sorted(reply.rows),
            *expected,
            "closing query {i} diverged after the storm"
        );
    }
    let stats_json = server.stats_json();
    server.shutdown();

    let mut report = Report::new(
        format!(
            "fj-net chaos soak — {clients} clients × {queries_per_client} queries \
             ({n_emps} emps / {n_depts} depts, seeded faults + 1 induced panic)"
        ),
        &[
            "clients",
            "queries ok",
            "deadline",
            "cancelled",
            "faults",
            "panics",
            "workers replaced",
            "queries/s",
        ],
    );
    report.row(vec![
        Report::cell(clients),
        Report::cell(ok),
        Report::cell(deadline_hits),
        Report::cell(cancelled),
        Report::cell(injected_faults),
        Report::cell(worker_panics),
        Report::cell(metrics.workers_replaced),
        Report::num(ok as f64 / secs),
    ]);
    report.note(
        "every surviving OK reply verified byte-identical to serial execution; \
         faults/cancellations/deadlines all typed, the induced panic respawned its worker, \
         and a post-storm batch completed at full pool strength",
    );
    report.note(format!("fault-plan events fired: {}", faults.events()));
    report.note(format!("server stats: {stats_json}"));
    report
}
