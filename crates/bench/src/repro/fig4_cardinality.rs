//! Figure 4: restricted-view cardinality vs filter-set selectivity,
//! and the straight-line fit.
//!
//! The paper's observation: "the cardinality of the result of the
//! filtered inner relation is directly proportional to the selectivity
//! of the filter set". We measure the *actual* cardinality of the
//! restricted `DepAvgSal` view at 11 selectivities and compare with the
//! straight line fitted from a handful of equivalence classes.

use crate::report::Report;
use crate::workloads::{emp_dept, EmpDeptConfig};
use fj_core::exec::context::TempTable;
use fj_core::optimizer::parametric::ParametricFit;
use fj_core::storage::{Schema, Tuple};
use fj_core::{CostParams, DataType, ExecCtx, Value};
use std::sync::Arc;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Filter-set selectivity.
    pub selectivity: f64,
    /// Actual rows of the restricted view (materialized result).
    pub actual: f64,
    /// Rows reported by the root of the operator trace of the same
    /// execution — must always equal `actual`.
    pub traced: f64,
    /// Straight-line estimate.
    pub fitted: f64,
}

/// Executes the restricted view at `selectivity` and returns the actual
/// output cardinality.
pub fn actual_cardinality(
    catalog: &Arc<fj_core::Catalog>,
    n_depts: usize,
    selectivity: f64,
) -> f64 {
    traced_cardinality(catalog, n_depts, selectivity).0
}

/// Executes the restricted view at `selectivity` with per-operator
/// tracing attached and returns `(materialized rows, trace-root rows)`.
/// The pair cross-checks the observability layer against the result it
/// observes: any disagreement means the tracer is lying.
pub fn traced_cardinality(
    catalog: &Arc<fj_core::Catalog>,
    n_depts: usize,
    selectivity: f64,
) -> (f64, f64) {
    let collector = Arc::new(fj_core::TraceCollector::new());
    let ctx = ExecCtx::new(Arc::clone(catalog)).with_tracer(Arc::clone(&collector));
    let f_rows = ((n_depts as f64) * selectivity).round() as usize;
    let filter_schema = Schema::from_pairs(&[("k0", DataType::Int)]).into_ref();
    let rows: Vec<Tuple> = (0..f_rows)
        .map(|i| Tuple::new(vec![Value::Int(i as i64)]))
        .collect();
    ctx.register_temp("__f4", TempTable::new(filter_schema.clone(), rows));
    let restricted = fj_core::algebra::magic::restricted_inner(
        catalog,
        "DepAvgSal",
        &["did".to_string()],
        "__f4",
        &filter_schema,
    )
    .expect("restriction builds");
    let phys = fj_core::exec::lower::lower(&restricted, catalog).expect("lowers");
    let rel = phys.execute(&ctx).expect("runs");
    let traced = collector
        .finish()
        .map(|t| t.rows_out() as f64)
        .unwrap_or(f64::NAN);
    (rel.rows.len() as f64, traced)
}

/// Executes the restricted view at `selectivity` and returns the
/// *measured* weighted cost of that execution (used by the Figure 5
/// experiment to score the cost step function).
pub fn actual_cost(catalog: &Arc<fj_core::Catalog>, n_depts: usize, selectivity: f64) -> f64 {
    let ctx = ExecCtx::new(Arc::clone(catalog));
    let f_rows = ((n_depts as f64) * selectivity).round() as usize;
    let filter_schema = Schema::from_pairs(&[("k0", DataType::Int)]).into_ref();
    let rows: Vec<Tuple> = (0..f_rows)
        .map(|i| Tuple::new(vec![Value::Int(i as i64)]))
        .collect();
    ctx.register_temp("__f4", TempTable::new(filter_schema.clone(), rows));
    let restricted = fj_core::algebra::magic::restricted_inner(
        catalog,
        "DepAvgSal",
        &["did".to_string()],
        "__f4",
        &filter_schema,
    )
    .expect("restriction builds");
    let phys = fj_core::exec::lower::lower(&restricted, catalog).expect("lowers");
    let before = ctx.ledger.snapshot();
    phys.execute(&ctx).expect("runs");
    ctx.ledger
        .snapshot()
        .delta(&before)
        .weighted(fj_core::storage::CPU_WEIGHT_DEFAULT, 0.0, 0.0)
}

/// Measures actuals and the fit at `classes` equivalence classes.
pub fn points(n_emps: usize, n_depts: usize, classes: usize) -> (Vec<Point>, ParametricFit) {
    let catalog = Arc::new(emp_dept(EmpDeptConfig {
        n_emps,
        n_depts,
        ..Default::default()
    }));
    let mut invocations = 0;
    let fit = ParametricFit::fit(
        &catalog,
        CostParams::default(),
        "DepAvgSal",
        &["did".to_string()],
        classes,
        &mut invocations,
    )
    .expect("fit succeeds");
    let pts = (0..=10)
        .map(|i| {
            let s = i as f64 / 10.0;
            let (actual, traced) = traced_cardinality(&catalog, n_depts, s);
            Point {
                selectivity: s,
                actual,
                traced,
                fitted: fit.cardinality(s),
            }
        })
        .collect();
    (pts, fit)
}

/// The printable report.
pub fn run(n_emps: usize, n_depts: usize) -> Report {
    let (pts, fit) = points(n_emps, n_depts, 4);
    let mut r = Report::new(
        format!(
            "Figure 4: restricted-view cardinality vs filter selectivity ({n_emps} emps / {n_depts} depts, 4 classes)"
        ),
        &[
            "selectivity",
            "actual |R'k|",
            "traced |R'k|",
            "fitted |R'k|",
            "rel. error",
        ],
    );
    let mut max_err: f64 = 0.0;
    let mut trace_agrees = true;
    for p in &pts {
        let err = if p.actual > 0.0 {
            (p.fitted - p.actual).abs() / p.actual
        } else {
            (p.fitted - p.actual).abs() / n_depts as f64
        };
        max_err = max_err.max(err);
        trace_agrees &= p.traced == p.actual;
        r.row(vec![
            format!("{:.1}", p.selectivity),
            Report::num(p.actual),
            Report::num(p.traced),
            Report::num(p.fitted),
            format!("{:.1}%", err * 100.0),
        ]);
    }
    r.note(format!(
        "line: rows(s) = {:.1}·s + {:.1}; max relative error {:.1}%; trace agrees with result: {}",
        fit.card_slope,
        fit.card_intercept,
        max_err * 100.0,
        if trace_agrees { "yes" } else { "NO" }
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actual_cardinality_is_linear_in_selectivity() {
        let catalog = Arc::new(emp_dept(EmpDeptConfig {
            n_emps: 5000,
            n_depts: 500,
            ..Default::default()
        }));
        let lo = actual_cardinality(&catalog, 500, 0.2);
        let hi = actual_cardinality(&catalog, 500, 0.8);
        // Every department has employees at this scale, so the view has
        // one group per filtered department: exactly 100 and 400.
        assert_eq!(lo, 100.0);
        assert_eq!(hi, 400.0);
    }

    #[test]
    fn trace_root_cardinality_matches_materialized_result() {
        let catalog = Arc::new(emp_dept(EmpDeptConfig {
            n_emps: 5000,
            n_depts: 500,
            ..Default::default()
        }));
        for s in [0.0, 0.3, 1.0] {
            let (actual, traced) = traced_cardinality(&catalog, 500, s);
            assert_eq!(traced, actual, "trace disagrees at selectivity {s}");
        }
    }

    #[test]
    fn fit_tracks_actuals_tightly() {
        let (pts, _) = points(5000, 500, 4);
        for p in &pts {
            let tol = 0.15 * 500.0; // 15% of the domain
            assert!(
                (p.fitted - p.actual).abs() <= tol,
                "at s={} fitted {} vs actual {}",
                p.selectivity,
                p.fitted,
                p.actual
            );
        }
    }
}
