//! One module per reproduced figure/table. Each exposes a `run`
//! function taking a scale parameter and returning a
//! [`crate::report::Report`] that prints like the paper's artifact.

pub mod bloom;
pub mod bushy;
pub mod chaos;
pub mod cluster_chaos;
pub mod complexity;
pub mod crossover;
pub mod dist;
pub mod fig1_magic;
pub mod fig3_orders;
pub mod fig4_cardinality;
pub mod fig5_classes;
pub mod fig6_taxonomy;
pub(crate) mod forwarder;
pub mod local_semijoin;
pub mod memory_chaos;
pub mod mutation_chaos;
pub mod recovery_chaos;
pub mod soak;
pub mod table1_components;
pub mod throughput;
pub mod trace_overhead;
pub mod udf;
