//! Table 1: the seven Filter Join cost components — predicted by the
//! optimizer's formulas next to charges measured by staging the same
//! Filter Join phase by phase through the executor.
//!
//! The staged decomposition attributes temp-table *reads* to the phase
//! that performs them (the paper's formulas fold them into
//! `ProductionCost_P`/`AvailCost_F`), so individual rows can shift a
//! few page units between adjacent components; the totals are directly
//! comparable.

use crate::report::Report;
use crate::workloads::{emp_dept, EmpDeptConfig};
use fj_core::exec::context::TempTable;
use fj_core::exec::physical::Rel;
use fj_core::expr::col;
use fj_core::optimizer::estimate::PlanEstimator;
use fj_core::optimizer::filter_join::{cost_filter_join, FilterJoinArgs};
use fj_core::optimizer::parametric::ParametricEstimator;
use fj_core::storage::CPU_WEIGHT_DEFAULT;
use fj_core::{lit, CostParams, ExecCtx, LedgerSnapshot, LogicalPlan, PhysPlan};
use std::sync::Arc;

/// Predicted vs measured for the seven components.
#[derive(Debug, Clone)]
pub struct ComponentRow {
    /// Component name (Table 1).
    pub name: &'static str,
    /// Formula prediction (page units).
    pub predicted: f64,
    /// Measured ledger charge of the corresponding phase (page units).
    pub measured: f64,
}

fn weighted(d: &LedgerSnapshot) -> f64 {
    d.weighted(CPU_WEIGHT_DEFAULT, 0.0, 0.0)
}

/// Stages the paper's Filter Join (production `{E ⋈ D}` filtered into
/// `DepAvgSal`) phase by phase.
pub fn staged(n_emps: usize, n_depts: usize, frac_big: f64) -> Vec<ComponentRow> {
    let cat = Arc::new(emp_dept(EmpDeptConfig {
        n_emps,
        n_depts,
        frac_big,
        ..Default::default()
    }));
    let params = CostParams::default();
    let estimator = PlanEstimator::new(&cat, params);

    // The production set: young employees of big departments.
    let outer_logical = LogicalPlan::scan("Emp", "E")
        .select(col("E.age").lt(lit(30)))
        .join(
            LogicalPlan::scan("Dept", "D").select(col("D.budget").gt(lit(100_000))),
            Some(col("E.did").eq(col("D.did"))),
        );
    let (outer_cost, outer_stats) = estimator.cost(&outer_logical).expect("estimates");

    // Predicted components from the optimizer's formula.
    let mut memo = ParametricEstimator::new(4);
    let keys = vec![("E.did".to_string(), "V.did".to_string())];
    let decision = cost_filter_join(FilterJoinArgs {
        catalog: &cat,
        params,
        memo: &mut memo,
        outer_cost,
        outer: &outer_stats,
        keys: &keys,
        inner_alias: "V",
        inner_relation: "DepAvgSal",
        use_bloom: false,
        prefix_production: None,
    })
    .expect("costing succeeds")
    .expect("applicable");
    let predicted = decision.cost;

    // ---- Measured, phase by phase.
    let ctx = ExecCtx::new(Arc::clone(&cat));
    let outer_phys = fj_core::exec::lower::lower(&outer_logical, &cat).expect("outer lowers");
    let snap = |ctx: &ExecCtx| ctx.ledger.snapshot();

    // Phase 1: JoinCost_P.
    let s0 = snap(&ctx);
    let p: Rel = outer_phys.execute(&ctx).expect("outer runs");
    let m_join_p = weighted(&snap(&ctx).delta(&s0));

    // Phase 2: ProductionCost_P (materialize).
    let s1 = snap(&ctx);
    ctx.register_temp("__p", TempTable::new(p.schema.clone(), p.rows.clone()));
    let m_prod_p = weighted(&snap(&ctx).delta(&s1));

    // Phase 3: ProjCost_F (scan P, distinct-project the key).
    let s2 = snap(&ctx);
    let f = PhysPlan::Distinct {
        input: PhysPlan::Project {
            input: PhysPlan::TempScan {
                name: "__p".into(),
                alias: String::new(),
            }
            .boxed(),
            exprs: vec![(col("E.did"), "k0".into())],
        }
        .boxed(),
    }
    .execute(&ctx)
    .expect("filter set computes");
    let m_proj_f = weighted(&snap(&ctx).delta(&s2));

    // Phase 4: AvailCost_F (materialize F).
    let s3 = snap(&ctx);
    ctx.register_temp("__f", TempTable::new(f.schema.clone(), f.rows.clone()));
    let m_avail_f = weighted(&snap(&ctx).delta(&s3));

    // Phase 5: FilterCost_Rk (restricted view).
    let s4 = snap(&ctx);
    let filter_schema = f.schema.clone();
    let restricted_logical = fj_core::algebra::magic::restricted_inner(
        &cat,
        "DepAvgSal",
        &["did".to_string()],
        "__f",
        &filter_schema,
    )
    .expect("restriction builds");
    let restricted_phys = fj_core::exec::lower::lower(&restricted_logical, &cat).expect("lowers");
    let rk = restricted_phys.execute(&ctx).expect("restricted view runs");
    let m_filter_rk = weighted(&snap(&ctx).delta(&s4));

    // Phase 6: AvailCost_Rk' — pipelined, nothing to do.
    let m_avail_rk = 0.0;

    // Phase 7: FinalJoinCost (read P back, hash join with R'k).
    let s5 = snap(&ctx);
    let requalified = fj_core::exec::ops::filter::project(
        &ctx,
        rk,
        &[
            (col("did"), "V.did".into()),
            (col("avgsal"), "V.avgsal".into()),
        ],
    )
    .expect("requalifies");
    let p_again = PhysPlan::TempScan {
        name: "__p".into(),
        alias: String::new(),
    }
    .execute(&ctx)
    .expect("P rereads");
    let joined = fj_core::exec::ops::joins::hash_join(
        &ctx,
        p_again,
        requalified,
        &keys,
        None,
        fj_core::algebra::JoinKind::Inner,
    )
    .expect("final join runs");
    assert!(!joined.schema.columns().is_empty());
    let m_final = weighted(&snap(&ctx).delta(&s5));

    vec![
        ComponentRow {
            name: "JoinCost_P",
            predicted: predicted.join_cost_p,
            measured: m_join_p,
        },
        ComponentRow {
            name: "ProductionCost_P",
            predicted: predicted.production_cost_p,
            measured: m_prod_p,
        },
        ComponentRow {
            name: "ProjCost_F",
            predicted: predicted.proj_cost_f,
            measured: m_proj_f,
        },
        ComponentRow {
            name: "AvailCost_F",
            predicted: predicted.avail_cost_f,
            measured: m_avail_f,
        },
        ComponentRow {
            name: "FilterCost_Rk",
            predicted: predicted.filter_cost_rk,
            measured: m_filter_rk,
        },
        ComponentRow {
            name: "AvailCost_Rk'",
            predicted: predicted.avail_cost_rk,
            measured: m_avail_rk,
        },
        ComponentRow {
            name: "FinalJoinCost",
            predicted: predicted.final_join_cost,
            measured: m_final,
        },
    ]
}

/// The printable report.
pub fn run(n_emps: usize, n_depts: usize) -> Report {
    let rows = staged(n_emps, n_depts, 0.1);
    let mut r = Report::new(
        format!(
            "Table 1: Filter Join cost components ({n_emps} emps / {n_depts} depts, page units)"
        ),
        &["component", "predicted", "measured"],
    );
    let (mut tp, mut tm) = (0.0, 0.0);
    for c in &rows {
        tp += c.predicted;
        tm += c.measured;
        r.row(vec![
            c.name.into(),
            Report::num(c.predicted),
            Report::num(c.measured),
        ]);
    }
    r.row(vec!["TOTAL".into(), Report::num(tp), Report::num(tm)]);
    r.note("temp-table reads attach to the consuming phase in the measured column");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_agree_within_factor() {
        let rows = staged(4000, 400, 0.1);
        let tp: f64 = rows.iter().map(|c| c.predicted).sum();
        let tm: f64 = rows.iter().map(|c| c.measured).sum();
        assert!(tp > 0.0 && tm > 0.0);
        let ratio = tp / tm;
        assert!(
            (0.4..2.5).contains(&ratio),
            "predicted {tp} vs measured {tm} (ratio {ratio})"
        );
    }

    #[test]
    fn dominant_component_is_join_or_filter() {
        let rows = staged(4000, 400, 0.1);
        let max = rows
            .iter()
            .max_by(|a, b| a.measured.total_cmp(&b.measured))
            .unwrap();
        assert!(
            matches!(max.name, "JoinCost_P" | "FilterCost_Rk" | "FinalJoinCost"),
            "unexpected dominant component {}",
            max.name
        );
    }

    #[test]
    fn all_components_nonnegative() {
        for c in staged(1000, 100, 0.2) {
            assert!(c.predicted >= 0.0, "{c:?}");
            assert!(c.measured >= 0.0, "{c:?}");
        }
    }
}
