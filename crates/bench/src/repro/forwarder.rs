//! A stable TCP endpoint fronting a restartable backend — the chaos
//! harnesses' stand-in for a service VIP. Accepted connections are
//! relayed byte-for-byte to the current backend address, and refused
//! (accept + drop) while no backend is up, so a replica "process" can
//! die and come back without changing the address probers and clients
//! watch.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// See the module docs. Built by [`Forwarder::start`]; the backend is
/// swapped (or cleared, modelling a dead process) at any time via
/// [`Forwarder::set_backend`].
pub(crate) struct Forwarder {
    /// The stable address clients connect to.
    pub(crate) addr: SocketAddr,
    backend: Arc<Mutex<Option<SocketAddr>>>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Forwarder {
    pub(crate) fn start() -> Forwarder {
        let listener = TcpListener::bind("127.0.0.1:0").expect("forwarder bind");
        listener
            .set_nonblocking(true)
            .expect("forwarder nonblocking");
        let addr = listener.local_addr().expect("forwarder addr");
        let backend: Arc<Mutex<Option<SocketAddr>>> = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let backend = Arc::clone(&backend);
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("fj-chaos-fwd".into())
                .spawn(move || {
                    let mut relays: Vec<JoinHandle<()>> = Vec::new();
                    while !stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((client, _)) => {
                                let target = *backend.lock().unwrap();
                                let upstream = target.and_then(|t| {
                                    TcpStream::connect_timeout(&t, Duration::from_millis(500)).ok()
                                });
                                match upstream {
                                    // A dead backend is a dead replica:
                                    // drop the connection so the caller
                                    // sees a transport error.
                                    None => drop(client),
                                    Some(upstream) => {
                                        relays.push(spawn_relay(client, upstream, &stop));
                                    }
                                }
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                thread::sleep(Duration::from_millis(1));
                            }
                            Err(_) => break,
                        }
                    }
                    for r in relays {
                        let _ = r.join();
                    }
                })
                .expect("spawn forwarder")
        };
        Forwarder {
            addr,
            backend,
            stop,
            accept: Some(accept),
        }
    }

    pub(crate) fn set_backend(&self, addr: Option<SocketAddr>) {
        *self.backend.lock().unwrap() = addr;
    }

    pub(crate) fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

/// One half-duplex pump: bytes from `from` to `to` until EOF, error, or
/// the stop flag. Read timeouts keep the thread responsive to `stop`
/// without killing live-but-idle connections.
fn pump(from: &TcpStream, to: &TcpStream, stop: &AtomicBool) {
    let mut from = from.try_clone().expect("clone relay stream");
    let mut to = to.try_clone().expect("clone relay stream");
    from.set_read_timeout(Some(Duration::from_millis(50)))
        .expect("relay read timeout");
    let mut buf = [0u8; 16 * 1024];
    loop {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// Full-duplex relay between `client` and `upstream`: one thread per
/// direction, both torn down when either side closes.
fn spawn_relay(client: TcpStream, upstream: TcpStream, stop: &Arc<AtomicBool>) -> JoinHandle<()> {
    let stop = Arc::clone(stop);
    thread::Builder::new()
        .name("fj-chaos-relay".into())
        .spawn(move || {
            let back = {
                let client = client.try_clone().expect("clone relay stream");
                let upstream = upstream.try_clone().expect("clone relay stream");
                let stop = Arc::clone(&stop);
                thread::spawn(move || pump(&upstream, &client, &stop))
            };
            pump(&client, &upstream, &stop);
            let _ = back.join();
        })
        .expect("spawn relay")
}
