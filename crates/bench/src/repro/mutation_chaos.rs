//! Mutation chaos: the write path's recovery contract under fire.
//!
//! Two phases. **Phase 1** is a deterministic store-level crash-point
//! sweep: a seeded mutation sequence (inserts, updates, deletes) runs
//! against a disk store with torn-delta-write and slow-fsync faults
//! armed, and the store is hard-killed after every mutation prefix and
//! after every fuzzy-checkpoint phase (`Flush`, `Scrub`, `Sync`,
//! `Manifest`, `Done`). At every crash point, restart must recover
//! **exactly the committed mutation prefix** — uncommitted work
//! invisible, committed rows byte-identical to an in-memory oracle
//! built from [`Mutation::apply`], and a second re-open byte-identical
//! to the first (idempotence). A cancelled mutation must leave no
//! state behind.
//!
//! **Phase 2** is a server-level storm: a disk-backed server behind a
//! stable forwarder endpoint serves concurrent clients mixing plain and
//! deadlined queries while a mutator thread streams mutations into a
//! side table and a checkpoint thread runs fuzzy checkpoints the whole
//! time. The server is hard-killed mid-storm and restarted from its
//! data directory. Contract: zero client-visible failures (every query
//! verifies byte-identical against serial execution — mutations target
//! a table the query never reads, so results stay stable), deadlined
//! queries all complete within their deadlines even while checkpoints
//! run (fuzzy = non-blocking), and a mutation whose reply was lost to
//! the crash is resolved by *reading* — never by blind replay, which
//! would double-apply inserts.

use super::forwarder::Forwarder;
use crate::report::Report;
use crate::workloads::{emp_dept, paper_query, EmpDeptConfig};
use fj_core::{DataType, Database, FromItem, JoinQuery, Schema, Table, TableBuilder, Tuple, Value};
use fj_net::{Client, ErrorCode, Mutation, QueryOptions, Server, ServerConfig};
use fj_runtime::{FaultPlan, RecoveryReport, ServiceConfig, StorageMode};
use fj_store::{CheckpointPhase, Store, TempDir};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

fn pages_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("pages.fj")).unwrap_or_default()
}

// ---------------------------------------------------------------------
// Phase 1: deterministic store-level crash-point sweep.
// ---------------------------------------------------------------------

const P1_ROWS: i64 = 48;

fn phase1_table() -> Table {
    TableBuilder::new("T")
        .column("k", DataType::Int)
        .column("w", DataType::Double)
        .column("tag", DataType::Str)
        .rows((0..P1_ROWS).map(|i| {
            vec![
                Value::Int(i),
                Value::Double(i as f64 * 0.5),
                Value::Str(format!("r{i}")),
            ]
        }))
        .build()
        .expect("phase-1 template conforms")
}

/// The `i`-th mutation of the seeded sequence: a pure function of `i`,
/// cycling insert → update → delete. Insert keys are fresh by
/// construction, so the sequence is valid from any committed prefix.
fn phase1_mutation(i: u64) -> Mutation {
    match i % 3 {
        0 => Mutation::Insert {
            table: "T".into(),
            rows: (0..=(i % 2))
                .map(|j| {
                    let k = 1_000 + (i * 4 + j) as i64;
                    vec![
                        Value::Int(k),
                        Value::Double(k as f64),
                        Value::Str(format!("ins{i}-{j}")),
                    ]
                })
                .collect(),
        },
        1 => Mutation::Update {
            table: "T".into(),
            set: vec![
                ("w".into(), Value::Double(i as f64 * 10.0)),
                ("tag".into(), Value::Str(format!("upd{i}"))),
            ],
            where_col: "k".into(),
            where_value: Value::Int(((i * 13) % P1_ROWS as u64) as i64),
        },
        _ => Mutation::Delete {
            table: "T".into(),
            where_col: "k".into(),
            where_value: Value::Int(((i * 29) % P1_ROWS as u64) as i64),
        },
    }
}

fn sweep_faults(seed: u64) -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan::new(seed)
            .with_torn_delta_writes(2)
            .with_torn_scrub_writes(3)
            .with_slow_fsync(8, Duration::from_micros(200)),
    )
}

/// What the phase-1 sweep verified.
struct SweepOut {
    crash_points: usize,
    checkpoint_points: usize,
    replayed_mutations: u64,
    replayed_pages: u64,
}

#[allow(clippy::too_many_lines)]
fn crash_point_sweep(seed: u64, n_mutations: u64) -> SweepOut {
    let tmpl = phase1_table();
    let schema: Schema = tmpl.schema().as_ref().clone();
    let muts: Vec<Mutation> = (0..n_mutations).map(phase1_mutation).collect();

    // Oracle prefixes: oracles[k] = rows after the first k mutations.
    let mut oracles: Vec<Vec<Tuple>> = vec![tmpl.rows().to_vec()];
    for m in &muts {
        let (next, _) = m
            .apply(&schema, oracles.last().expect("nonempty"))
            .expect("seeded mutation applies to its oracle");
        oracles.push(next);
    }

    let mut replayed_mutations = 0u64;
    let mut replayed_pages = 0u64;

    // Crash after every committed prefix, torn delta writes armed.
    for k in 0..=muts.len() {
        let dir = TempDir::new(&format!("mutation-chaos-p1-{k}"));
        {
            let (store, _) =
                Store::open(dir.path(), 16, Some(sweep_faults(seed ^ k as u64))).unwrap();
            store.load_table(&tmpl).unwrap();
            for (i, m) in muts[..k].iter().enumerate() {
                let res = store.mutate(m, &|| false).expect("seeded mutation commits");
                assert_eq!(
                    res.row_count as usize,
                    oracles[i + 1].len(),
                    "crash point {k}: committed row count must track the oracle"
                );
                assert_eq!(res.version as usize, i + 2, "one version bump per mutation");
            }
            // Hard kill: drop without checkpoint.
        }
        let first = {
            let (store, report) = Store::open(dir.path(), 16, None).unwrap();
            assert_eq!(
                report.replayed_mutations, k,
                "crash point {k}: replay exactly the committed mutation prefix"
            );
            replayed_mutations += report.replayed_mutations as u64;
            replayed_pages += report.replayed_pages as u64;
            let (_, rows) = store.recovered_rows("T").unwrap();
            assert_eq!(
                rows, oracles[k],
                "crash point {k}: recovered rows must equal the oracle prefix"
            );
            pages_bytes(dir.path())
        };
        // Double re-open: byte-identical page file, same rows.
        let (store, _) = Store::open(dir.path(), 16, None).unwrap();
        assert_eq!(
            pages_bytes(dir.path()),
            first,
            "crash point {k}: second recovery must be byte-identical"
        );
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, oracles[k]);
        drop(store);
    }

    // Crash *inside* the fuzzy checkpoint, at every phase boundary,
    // with mutations both before and after the partial checkpoint.
    let half = muts.len() / 2;
    let phases = [
        CheckpointPhase::Flush,
        CheckpointPhase::Scrub,
        CheckpointPhase::Sync,
        CheckpointPhase::Manifest,
        CheckpointPhase::Done,
    ];
    for (p, phase) in phases.iter().enumerate() {
        let dir = TempDir::new(&format!("mutation-chaos-p1-ckpt-{p}"));
        {
            let (store, _) =
                Store::open(dir.path(), 16, Some(sweep_faults(seed ^ (0xC0 + p as u64)))).unwrap();
            store.load_table(&tmpl).unwrap();
            for m in &muts[..half] {
                store.mutate(m, &|| false).unwrap();
            }
            store.checkpoint_until(*phase).unwrap();
            for m in &muts[half..] {
                store.mutate(m, &|| false).unwrap();
            }
            // Hard kill mid-/post-checkpoint.
        }
        let first = {
            let (store, _) = Store::open(dir.path(), 16, None).unwrap();
            let (_, rows) = store.recovered_rows("T").unwrap();
            assert_eq!(
                rows,
                *oracles.last().expect("nonempty"),
                "checkpoint phase {phase:?}: every mutation was committed, all must survive"
            );
            pages_bytes(dir.path())
        };
        let (store, _) = Store::open(dir.path(), 16, None).unwrap();
        assert_eq!(
            pages_bytes(dir.path()),
            first,
            "checkpoint phase {phase:?}: second recovery must be byte-identical"
        );
        drop(store);
    }

    // A cancelled mutation leaves no partial state: not in the rows,
    // not in the WAL, invisible to recovery.
    {
        let dir = TempDir::new("mutation-chaos-p1-cancel");
        {
            let (store, _) = Store::open(dir.path(), 16, None).unwrap();
            store.load_table(&tmpl).unwrap();
            let err = store.mutate(&muts[0], &|| true).unwrap_err();
            assert!(
                matches!(err, fj_store::StoreError::Cancelled),
                "cancelled mutation must fail typed, got {err:?}"
            );
            // The next mutation sees the *unmutated* table.
            let res = store.mutate(&muts[0], &|| false).unwrap();
            assert_eq!(res.version, 2, "cancelled attempt must not burn a version");
        }
        let (store, report) = Store::open(dir.path(), 16, None).unwrap();
        assert_eq!(report.replayed_mutations, 1);
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, oracles[1]);
        drop(store);
    }

    SweepOut {
        crash_points: muts.len() + 1,
        checkpoint_points: phases.len(),
        replayed_mutations,
        replayed_pages,
    }
}

// ---------------------------------------------------------------------
// Phase 2: server-level storm with a crash-restart mid-stream.
// ---------------------------------------------------------------------

const AUDIT_ROWS: i64 = 64;

fn audit_table() -> Table {
    TableBuilder::new("Audit")
        .column("k", DataType::Int)
        .column("v", DataType::Int)
        .rows((0..AUDIT_ROWS).map(|i| vec![Value::Int(i), Value::Int(i * 10)]))
        .build()
        .expect("audit template conforms")
}

/// Scan of the mutated side table — how the mutator *reads* to resolve
/// a mutation whose reply was lost to a crash.
fn audit_query() -> JoinQuery {
    JoinQuery::new(vec![FromItem::new("Audit", "a")])
}

/// The `i`-th storm mutation. Insert keys are disjoint from phase-1's
/// and unique per `i`, so a lost-reply mutation can always be resolved
/// by content: applied and not-applied states never collide.
fn storm_mutation(i: u64) -> Mutation {
    match i % 3 {
        0 => Mutation::Insert {
            table: "Audit".into(),
            rows: vec![vec![
                Value::Int(10_000 + i as i64),
                Value::Int(i as i64 * 7),
            ]],
        },
        1 => Mutation::Update {
            table: "Audit".into(),
            set: vec![("v".into(), Value::Int(i as i64 * 100 + 1))],
            where_col: "k".into(),
            where_value: Value::Int(((i * 13) % AUDIT_ROWS as u64) as i64),
        },
        _ => Mutation::Delete {
            table: "Audit".into(),
            where_col: "k".into(),
            where_value: Value::Int(((i * 29) % AUDIT_ROWS as u64) as i64),
        },
    }
}

fn storm_faults() -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan::new(0x0A57)
            .with_torn_delta_writes(2)
            .with_torn_scrub_writes(3)
            .with_slow_fsync(4, Duration::from_millis(1)),
    )
}

fn disk_server(cat: fj_core::Catalog, dir: &Path, clients: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            max_connections: clients.max(1) * 4 + 8,
            service: ServiceConfig {
                workers: 4,
                queue_capacity: 64,
                storage: StorageMode::Disk {
                    dir: dir.to_path_buf(),
                    pool_pages: 4096,
                },
                fault_plan: Some(storm_faults()),
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("disk server binds")
}

fn connect_retry(addr: SocketAddr) -> Client {
    loop {
        match Client::connect_timeout(&addr, Duration::from_millis(500)) {
            Ok(c) => return c,
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

#[derive(Debug, Default)]
struct Tally {
    ok: AtomicU64,
    deadlined_ok: AtomicU64,
    transport_retries: AtomicU64,
    shed_retries: AtomicU64,
    mutations_ok: AtomicU64,
    lost_replies_resolved: AtomicU64,
    checkpoints: AtomicU64,
}

/// Runs the server-level storm. Returns the tally, the restart's
/// recovery report, the oracle's final Audit rows, and the final
/// server's (cache hits, store stats, health mutations counter).
#[allow(clippy::too_many_lines)]
fn storm(
    n_emps: usize,
    n_depts: usize,
    clients: usize,
    queries_per_client: usize,
    n_mutations: u64,
    dir: &Path,
) -> (
    Tally,
    RecoveryReport,
    Vec<Tuple>,
    (u64, fj_runtime::StoreStats, u64),
) {
    let mut cat = emp_dept(EmpDeptConfig {
        n_emps,
        n_depts,
        frac_big: 0.1,
        ..Default::default()
    });
    let audit = audit_table();
    let audit_schema: Schema = audit.schema().as_ref().clone();
    let audit_rows0 = audit.rows().to_vec();
    cat.add_table(audit.into_ref());

    let expected = Arc::new(sorted(
        Database::with_catalog(cat.clone())
            .execute(&paper_query())
            .expect("serial reference execution")
            .rows,
    ));

    let forwarder = Forwarder::start();
    let server = disk_server(cat.clone(), dir, clients);
    forwarder.set_backend(Some(server.local_addr()));
    let cell: Arc<Mutex<Option<Server>>> = Arc::new(Mutex::new(Some(server)));

    let tally = Arc::new(Tally::default());
    let done = Arc::new(AtomicU64::new(0));
    let total = (clients * queries_per_client) as u64;
    let mutator_done = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let recovery_out: Arc<Mutex<Option<RecoveryReport>>> = Arc::new(Mutex::new(None));
    let oracle_out: Arc<Mutex<Vec<Tuple>>> = Arc::new(Mutex::new(Vec::new()));
    let addr = forwarder.addr;

    thread::scope(|scope| {
        // Coordinator: hard-kill the server a third of the way through
        // the query storm — mid-mutation-stream, with the checkpoint
        // loop running — then restart it from the data directory.
        {
            let done = Arc::clone(&done);
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            let mutator_done = Arc::clone(&mutator_done);
            let recovery_out = Arc::clone(&recovery_out);
            let forwarder = &forwarder;
            let cat = cat.clone();
            scope.spawn(move || {
                while done.load(Ordering::Relaxed) < total / 3 {
                    thread::sleep(Duration::from_millis(1));
                }
                let server = cell.lock().unwrap().take().expect("server present");
                forwarder.set_backend(None);
                server.abort();
                // Crash window: clients and the mutator see transport
                // errors and must resolve them without data loss.
                thread::sleep(Duration::from_millis(100));
                let server = disk_server(cat, dir, clients);
                *recovery_out.lock().unwrap() = Some(
                    server
                        .recovery_report()
                        .expect("disk server has a recovery report"),
                );
                forwarder.set_backend(Some(server.local_addr()));
                *cell.lock().unwrap() = Some(server);
                while !(done.load(Ordering::Relaxed) >= total
                    && mutator_done.load(Ordering::Relaxed))
                {
                    thread::sleep(Duration::from_millis(1));
                }
                stop.store(true, Ordering::SeqCst);
            });
        }

        // Checkpoint loop: fuzzy checkpoints run concurrently with the
        // whole storm. Holding the cell lock only pins the server
        // handle; the checkpoint itself never blocks queries.
        {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            let tally = Arc::clone(&tally);
            scope.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    if let Some(server) = cell.lock().unwrap().as_ref() {
                        if server.checkpoint().is_ok() {
                            tally.checkpoints.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    thread::sleep(Duration::from_millis(10));
                }
            });
        }

        // Mutator: a serial mutation stream into Audit. A lost reply
        // (crash window) is resolved by reading the table back and
        // comparing against the oracle with and without the mutation —
        // blind resend would double-apply inserts.
        {
            let tally = Arc::clone(&tally);
            let mutator_done = Arc::clone(&mutator_done);
            let oracle_out = Arc::clone(&oracle_out);
            let audit_schema = audit_schema.clone();
            scope.spawn(move || {
                let mut client = connect_retry(addr);
                let mut oracle = audit_rows0;
                for i in 0..n_mutations {
                    let m = storm_mutation(i);
                    let (applied, _) = m
                        .apply(&audit_schema, &oracle)
                        .expect("storm mutation applies to its oracle");
                    loop {
                        match client.mutate(&m) {
                            Ok(reply) => {
                                assert_eq!(
                                    reply.row_count as usize,
                                    applied.len(),
                                    "mutation {i}: committed row count must track the oracle"
                                );
                                oracle = applied;
                                tally.mutations_ok.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(e)
                                if e.error_code() == Some(ErrorCode::Shed)
                                    || e.error_code() == Some(ErrorCode::ShuttingDown) =>
                            {
                                // Typed refusal at the edge: nothing
                                // was submitted, safe to resend.
                                tally.shed_retries.fetch_add(1, Ordering::Relaxed);
                                thread::sleep(Duration::from_millis(2));
                            }
                            Err(e) if e.error_code().is_none() => {
                                // Transport error: the reply is lost and
                                // commit status unknown. Read to resolve.
                                client = connect_retry(addr);
                                let got = loop {
                                    match client.query(&audit_query()) {
                                        Ok(reply) => break sorted(reply.rows),
                                        Err(_) => {
                                            client = connect_retry(addr);
                                            thread::sleep(Duration::from_millis(2));
                                        }
                                    }
                                };
                                if got == sorted(applied.clone()) {
                                    oracle = applied;
                                    tally.mutations_ok.fetch_add(1, Ordering::Relaxed);
                                    tally.lost_replies_resolved.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                assert_eq!(
                                    got,
                                    sorted(oracle.clone()),
                                    "mutation {i}: recovered rows match neither the \
                                     pre- nor post-mutation oracle — partial commit"
                                );
                                tally.lost_replies_resolved.fetch_add(1, Ordering::Relaxed);
                                // Not committed: resend.
                            }
                            Err(other) => {
                                panic!("mutation {i}: unexpected typed error {other:?}")
                            }
                        }
                    }
                }
                *oracle_out.lock().unwrap() = oracle;
                mutator_done.store(true, Ordering::SeqCst);
            });
        }

        // Query clients: plain and deadlined paper queries, verified
        // byte-identical against serial execution on every success.
        // Mutations never touch Emp/Dept, so the answer is stable.
        for c in 0..clients {
            let tally = Arc::clone(&tally);
            let done = Arc::clone(&done);
            let expected = Arc::clone(&expected);
            scope.spawn(move || {
                let mut client = connect_retry(addr);
                for i in 0..queries_per_client {
                    // Every third query carries a deadline generous for
                    // execution but fatal if a checkpoint were to block
                    // the read path.
                    let deadlined = i % 3 == 1;
                    let opts = QueryOptions {
                        deadline: deadlined.then(|| Duration::from_secs(10)),
                        config: None,
                        want_trace: false,
                    };
                    loop {
                        match client.query_with(&paper_query(), &opts) {
                            Ok(reply) => {
                                assert_eq!(
                                    sorted(reply.rows),
                                    *expected,
                                    "client {c} query {i}: rows diverged from serial"
                                );
                                tally.ok.fetch_add(1, Ordering::Relaxed);
                                if deadlined {
                                    tally.deadlined_ok.fetch_add(1, Ordering::Relaxed);
                                }
                                break;
                            }
                            Err(e)
                                if e.error_code() == Some(ErrorCode::Shed)
                                    || e.error_code() == Some(ErrorCode::ShuttingDown) =>
                            {
                                tally.shed_retries.fetch_add(1, Ordering::Relaxed);
                                thread::sleep(Duration::from_millis(2));
                            }
                            Err(e) if e.error_code().is_none() => {
                                tally.transport_retries.fetch_add(1, Ordering::Relaxed);
                                client = connect_retry(addr);
                            }
                            Err(e) if e.error_code() == Some(ErrorCode::DeadlineExceeded) => {
                                panic!(
                                    "client {c} query {i}: a 10s deadline expired — \
                                     the checkpoint blocked the read path"
                                )
                            }
                            Err(other) => {
                                panic!("client {c} query {i}: unexpected {other:?}")
                            }
                        }
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let server = cell
        .lock()
        .unwrap()
        .take()
        .expect("coordinator restarted the server");
    let oracle = std::mem::take(&mut *oracle_out.lock().unwrap());

    // Final reads, straight at the recovered server: the paper query
    // still matches serial, and the mutated table matches the oracle.
    let mut direct = connect_retry(forwarder.addr);
    let paper_rows = direct.query(&paper_query()).expect("direct paper query");
    assert_eq!(sorted(paper_rows.rows), *expected);
    let audit_rows = direct.query(&audit_query()).expect("direct audit query");
    assert_eq!(
        sorted(audit_rows.rows),
        sorted(oracle.clone()),
        "recovered Audit rows must equal the committed-mutation oracle"
    );
    let health_mutations = direct
        .health(Duration::from_secs(5))
        .expect("health after storm")
        .mutations_applied;

    let cache_hits = server.metrics().cache_hits;
    let store_stats = server.store_stats();
    let recovery = recovery_out
        .lock()
        .unwrap()
        .take()
        .expect("restart produced a recovery report");
    drop(direct);
    server.shutdown();
    forwarder.stop();
    let tally = Arc::try_unwrap(tally).expect("all storm threads joined");
    (
        tally,
        recovery,
        oracle,
        (cache_hits, store_stats, health_mutations),
    )
}

/// Drives the full mutation-chaos reproduction. Panics (failing the
/// reproduction) if any crash point recovers anything other than the
/// committed mutation prefix, any recovery is non-idempotent, a
/// cancelled mutation leaves state, any query resolves outside the
/// expected classes or diverges from serial, a deadlined query expires
/// during checkpoints, or the post-storm data directory disagrees with
/// the mutation oracle.
pub fn run(n_emps: usize, n_depts: usize, clients: usize, queries_per_client: usize) -> Report {
    let sweep = crash_point_sweep(0xF1A6, 12);

    let dir = TempDir::new("mutation-chaos");
    let n_mutations = 24u64;
    let (tally, recovery, oracle, (cache_hits, store_stats, health_mutations)) = storm(
        n_emps,
        n_depts,
        clients,
        queries_per_client,
        n_mutations,
        dir.path(),
    );

    let ok = tally.ok.load(Ordering::Relaxed);
    let deadlined_ok = tally.deadlined_ok.load(Ordering::Relaxed);
    let transport_retries = tally.transport_retries.load(Ordering::Relaxed);
    let shed_retries = tally.shed_retries.load(Ordering::Relaxed);
    let mutations_ok = tally.mutations_ok.load(Ordering::Relaxed);
    let lost_replies = tally.lost_replies_resolved.load(Ordering::Relaxed);
    let checkpoints = tally.checkpoints.load(Ordering::Relaxed);
    let total = (clients * queries_per_client) as u64;

    assert_eq!(
        ok, total,
        "every query must eventually complete with serial-verified rows"
    );
    assert!(
        deadlined_ok > 0,
        "the storm must complete deadlined queries during checkpoints"
    );
    assert_eq!(
        mutations_ok, n_mutations,
        "every mutation must eventually commit exactly once"
    );
    assert!(
        checkpoints >= 1,
        "the storm must complete at least one fuzzy checkpoint"
    );
    assert!(
        cache_hits > 0,
        "plans must stay warm across mutations of an unrelated table"
    );
    assert!(
        store_stats.mutations_applied > 0 || health_mutations > 0,
        "the restarted server must have applied mutations"
    );

    // Post-shutdown, the data directory alone reproduces the oracle —
    // twice, byte-identically.
    let first = {
        let (store, _) = Store::open(dir.path(), 64, None).expect("re-open data directory");
        let (_, rows) = store.recovered_rows("Audit").expect("recovered Audit");
        assert_eq!(
            sorted(rows),
            sorted(oracle.clone()),
            "post-shutdown Audit rows diverged from the mutation oracle"
        );
        pages_bytes(dir.path())
    };
    let (store, _) = Store::open(dir.path(), 64, None).expect("second re-open");
    assert_eq!(
        pages_bytes(dir.path()),
        first,
        "second post-shutdown recovery must be byte-identical"
    );
    drop(store);

    let mut report = Report::new(
        format!(
            "fj-store mutation chaos — {} store-level crash points + {} mid-checkpoint \
             kills (torn delta/scrub writes armed), then {clients} clients × \
             {queries_per_client} queries vs {n_mutations} mutations with a crash-restart \
             and concurrent fuzzy checkpoints ({n_emps} emps / {n_depts} depts)",
            sweep.crash_points, sweep.checkpoint_points,
        ),
        &[
            "crash points",
            "ckpt kills",
            "replayed muts",
            "replayed pages",
            "queries ok",
            "deadlined ok",
            "mutations",
            "lost replies",
            "checkpoints",
            "wal deltas",
        ],
    );
    report.row(vec![
        Report::cell(sweep.crash_points),
        Report::cell(sweep.checkpoint_points),
        Report::cell(sweep.replayed_mutations),
        Report::cell(sweep.replayed_pages),
        Report::cell(ok),
        Report::cell(deadlined_ok),
        Report::cell(mutations_ok),
        Report::cell(lost_replies),
        Report::cell(checkpoints),
        Report::cell(store_stats.wal_deltas),
    ]);
    report.note(format!(
        "phase 1: every committed mutation prefix recovered exactly at {} crash \
         points and {} mid-checkpoint kills; double re-open byte-identical at every \
         point; a cancelled mutation left no state and burned no version",
        sweep.crash_points, sweep.checkpoint_points
    ));
    report.note(format!(
        "phase 2: zero client-visible failures — {ok} queries byte-identical to \
         serial ({deadlined_ok} under 10s deadlines with checkpoints running), \
         {mutations_ok} mutations committed exactly once ({lost_replies} lost replies \
         resolved by reading, {transport_retries} transport retries, {shed_retries} \
         typed refusals retried); restart replayed {} mutations / {} pages",
        recovery.replayed_mutations, recovery.replayed_pages
    ));
    report.note(format!(
        "post-shutdown the data directory re-opened twice to byte-identical pages \
         and oracle-equal rows; plans stayed warm across mutations (cache hits {cache_hits})"
    ));
    report
}
