//! Cluster chaos: three replicas with independent seeded fault plans,
//! one hard-killed and one drained mid-run, under concurrent clients
//! mixing plain, deadlined, and cancelled queries — routed through the
//! replica-aware [`ClusterClient`].
//!
//! The cluster contract under fire: **no client-visible query
//! failures**. Every query resolves as a verified result (byte-
//! identical rows to serial execution), a requested cancellation, or a
//! requested deadline expiry; injected storage faults and replica
//! deaths are absorbed by typed retries and failover under the shared
//! retry budget, and hedged-request verification never sees two
//! replicas disagree. A second phase measures what hedging buys:
//! client-observed p99 with one deliberately stalled replica, hedging
//! off vs on.

use crate::report::Report;
use crate::workloads::{emp_dept, paper_query, EmpDeptConfig};
use fj_cluster::{CancelToken, ClusterClient, ClusterConfig, ClusterError, HedgeConfig};
use fj_core::{fixtures, Database, OptimizerConfig, Tuple};
use fj_net::{ErrorCode, QueryOptions, Server, ServerConfig};
use fj_runtime::{FaultPlan, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// Per-run tallies accumulated across client threads.
#[derive(Debug, Default)]
struct Tally {
    ok: AtomicU64,
    deadline_hits: AtomicU64,
    cancelled: AtomicU64,
    injected_faults: AtomicU64,
    reroutes: AtomicU64,
    budget_stalls: AtomicU64,
}

/// One replica server over `cat` with the given fault plan.
fn replica(cat: fj_core::Catalog, faults: Option<Arc<FaultPlan>>, clients: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        cat,
        ServerConfig {
            max_connections: clients.max(1) * 4,
            service: ServiceConfig {
                workers: 4,
                queue_capacity: 64,
                fault_plan: faults,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("replica binds")
}

/// The storm phase: three faulty replicas, one aborted and one drained
/// mid-run, concurrent clients with deadlines and cancels. Returns
/// (tally, cluster stats, workers replaced on the panicking replica).
#[allow(clippy::too_many_lines)]
fn storm(
    n_emps: usize,
    n_depts: usize,
    clients: usize,
    queries_per_client: usize,
) -> (Tally, fj_cluster::ClusterStats, u64) {
    let cat = emp_dept(EmpDeptConfig {
        n_emps,
        n_depts,
        frac_big: 0.1,
        ..Default::default()
    });
    let expected = Arc::new(sorted(
        Database::with_catalog(cat.clone())
            .execute(&paper_query())
            .expect("serial reference execution")
            .rows,
    ));

    // Independent seeded fault schedules per replica: A throws read
    // errors and stalls, B panics a worker on exactly one page read
    // (and stalls), C only stalls — then C is hard-killed and A is
    // drained mid-run, so by the end B carries everything.
    let server_a = replica(
        cat.clone(),
        Some(Arc::new(
            FaultPlan::new(0xA11CE)
                .with_read_errors(150)
                .with_stalls(64, Duration::from_micros(200)),
        )),
        clients,
    );
    let server_b = replica(
        cat.clone(),
        Some(Arc::new(
            FaultPlan::new(0xB0B)
                .with_panic_at(3)
                .with_stalls(80, Duration::from_micros(200)),
        )),
        clients,
    );
    let server_c = replica(
        cat,
        Some(Arc::new(
            FaultPlan::new(0xCAFE).with_stalls(48, Duration::from_micros(300)),
        )),
        clients,
    );
    let addrs = vec![
        server_a.local_addr(),
        server_b.local_addr(),
        server_c.local_addr(),
    ];
    let cluster = Arc::new(
        ClusterClient::connect(
            &addrs,
            ClusterConfig {
                probe_interval: Duration::from_millis(10),
                probe_timeout: Duration::from_millis(500),
                connect_timeout: Duration::from_millis(500),
                retry_budget_capacity: 64,
                retry_deposit_per_success: 0.5,
                hedge: HedgeConfig {
                    enabled: true,
                    quantile: 0.5,
                    min_delay: Duration::from_millis(2),
                    min_samples: 16,
                    // The storm runs hedges in verify mode: the losing
                    // replica's reply must be byte-identical.
                    verify: true,
                },
                ..ClusterConfig::default()
            },
        )
        .expect("cluster client"),
    );

    let tally = Arc::new(Tally::default());
    let done = Arc::new(AtomicU64::new(0));
    let total = (clients * queries_per_client) as u64;
    thread::scope(|scope| {
        // Coordinator: hard-kill C a quarter of the way in, drain A at
        // the halfway mark. Both are invisible to the clients except as
        // failovers.
        {
            let done = Arc::clone(&done);
            let server_a = &server_a;
            scope.spawn(move || {
                while done.load(Ordering::Relaxed) < total / 4 {
                    thread::sleep(Duration::from_millis(1));
                }
                server_c.abort();
                while done.load(Ordering::Relaxed) < total / 2 {
                    thread::sleep(Duration::from_millis(1));
                }
                server_a.begin_drain();
            });
        }
        for c in 0..clients {
            let cluster = Arc::clone(&cluster);
            let expected = Arc::clone(&expected);
            let tally = Arc::clone(&tally);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                for i in 0..queries_per_client {
                    // i % 4: 1 → tiny deadline, 3 → mid-flight cancel,
                    // else plain. Governed queries run the naive
                    // no-filter-join plan (same rows, bigger
                    // intermediate state) so cancellation has a window.
                    let opts = if i % 4 == 1 {
                        QueryOptions {
                            deadline: Some(Duration::from_millis(1)),
                            config: Some(OptimizerConfig::without_filter_join()),
                            want_trace: false,
                        }
                    } else if i % 4 == 3 {
                        QueryOptions {
                            deadline: None,
                            config: Some(OptimizerConfig::without_filter_join()),
                            want_trace: false,
                        }
                    } else {
                        QueryOptions::default()
                    };
                    // Retry loop: injected faults and transient
                    // no-candidate windows are re-driven until the
                    // query lands in a terminal class.
                    let mut attempts = 0u32;
                    loop {
                        attempts += 1;
                        assert!(
                            attempts < 1000,
                            "client {c} query {i} cannot reach a terminal outcome"
                        );
                        let token = Arc::new(CancelToken::new());
                        let killer = (i % 4 == 3).then(|| {
                            let token = Arc::clone(&token);
                            thread::spawn(move || {
                                thread::sleep(Duration::from_micros(300));
                                token.cancel();
                            })
                        });
                        let outcome = cluster.query_with_token(&paper_query(), &opts, &token);
                        if let Some(k) = killer {
                            k.join().expect("canceller thread");
                        }
                        match outcome {
                            Ok(reply) => {
                                assert_eq!(
                                    sorted(reply.rows),
                                    *expected,
                                    "client {c} query {i}: rows diverged from serial"
                                );
                                tally.ok.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(ClusterError::Cancelled) if i % 4 == 3 => {
                                tally.cancelled.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(ClusterError::Net(e))
                                if e.error_code() == Some(ErrorCode::DeadlineExceeded)
                                    && i % 4 == 1 =>
                            {
                                tally.deadline_hits.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(ClusterError::Net(e))
                                if e.error_code() == Some(ErrorCode::QueryFailed) =>
                            {
                                // Injected storage fault: typed, and
                                // the retry is the recovery.
                                tally.injected_faults.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ClusterError::NoHealthyReplica { .. }) => {
                                // Transient: the kill/drain window can
                                // momentarily leave no routable
                                // candidate until the prober catches up.
                                tally.reroutes.fetch_add(1, Ordering::Relaxed);
                                thread::sleep(Duration::from_millis(2));
                            }
                            Err(ClusterError::RetryBudgetExhausted { .. }) => {
                                // The cluster chose to stop retrying;
                                // back off and let successes refill it.
                                tally.budget_stalls.fetch_add(1, Ordering::Relaxed);
                                thread::sleep(Duration::from_millis(5));
                            }
                            Err(other) => {
                                panic!("client {c} query {i}: unexpected {other:?}")
                            }
                        }
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let stats = cluster.stats();
    let workers_replaced_b = server_b.metrics().workers_replaced;
    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => unreachable!("all client threads joined"),
    }
    server_a.shutdown();
    server_b.shutdown();
    let tally = Arc::try_unwrap(tally).expect("all client threads joined");
    (tally, stats, workers_replaced_b)
}

/// The hedging phase: one healthy and one deliberately stalled replica,
/// round-robin routing. Returns client-observed (p99 unhedged, p99
/// hedged) in milliseconds.
fn hedge_p99(queries: usize) -> ((f64, f64), u64, u64) {
    let p99 = |mut lat: Vec<Duration>| -> f64 {
        lat.sort();
        let idx = ((0.99 * lat.len() as f64).ceil() as usize).max(1) - 1;
        lat[idx].as_secs_f64() * 1e3
    };
    let run_once = |hedge: HedgeConfig| -> (f64, fj_cluster::ClusterStats) {
        // The slow replica stalls on *every* page read: any query
        // routed to it takes tens of milliseconds that hedging can win
        // back by racing the healthy replica.
        // Every page read on the slow replica stalls 40ms, putting its
        // queries (~160ms) far above both the healthy replica and any
        // value the power-of-2 latency histogram can round the hedge
        // trigger up to — the hedge always fires well before the stall
        // resolves.
        let slow = replica(
            fixtures::paper_catalog(),
            Some(Arc::new(
                FaultPlan::new(0x51).with_stalls(1, Duration::from_millis(40)),
            )),
            4,
        );
        let fast = replica(fixtures::paper_catalog(), None, 4);
        let addrs = vec![slow.local_addr(), fast.local_addr()];
        let cluster = ClusterClient::connect(
            &addrs,
            ClusterConfig {
                probe_interval: Duration::from_millis(10),
                hedge,
                ..ClusterConfig::default()
            },
        )
        .expect("hedge cluster client");
        let query = paper_query();
        // Untimed warmup: seed the latency histogram past
        // `min_samples` so the measured window runs with the hedge
        // trigger fully armed (and the unhedged run sees the same
        // steady state).
        for _ in 0..8 {
            cluster.query(&query).expect("hedge-phase warmup query");
        }
        let mut latencies = Vec::with_capacity(queries);
        for _ in 0..queries {
            let t0 = Instant::now();
            let reply = cluster.query(&query).expect("hedge-phase query");
            latencies.push(t0.elapsed());
            assert!(!reply.rows.is_empty());
        }
        let stats = cluster.stats();
        assert_eq!(stats.hedge_mismatches, 0);
        cluster.shutdown();
        slow.shutdown();
        fast.shutdown();
        (p99(latencies), stats)
    };
    let (unhedged, _) = run_once(HedgeConfig {
        enabled: false,
        ..HedgeConfig::default()
    });
    // Round-robin over one slow and one healthy replica is a *bimodal*
    // latency distribution with half its mass in the slow mode, so the
    // hedge quantile must sit inside the fast mode's mass (the
    // textbook p95 assumes the tail is rare). 0.35 pins the trigger to
    // the fast mode regardless of how many slow completions the
    // histogram has absorbed.
    let (hedged, stats) = run_once(HedgeConfig {
        enabled: true,
        quantile: 0.35,
        min_delay: Duration::from_millis(1),
        min_samples: 8,
        // Losers are cancelled outright here — this phase measures
        // latency, not divergence.
        verify: false,
    });
    ((unhedged, hedged), stats.hedges_launched, stats.hedges_won)
}

/// Drives the full cluster chaos reproduction. Panics (failing the
/// reproduction) if any query resolves outside the expected classes,
/// any surviving row-set diverges from serial, hedge verification sees
/// a divergence, no failover was exercised, or hedging fails to improve
/// the measured p99 against a stalled replica.
pub fn run(n_emps: usize, n_depts: usize, clients: usize, queries_per_client: usize) -> Report {
    let (tally, stats, workers_replaced_b) = storm(n_emps, n_depts, clients, queries_per_client);

    let ok = tally.ok.load(Ordering::Relaxed);
    let deadline_hits = tally.deadline_hits.load(Ordering::Relaxed);
    let cancelled = tally.cancelled.load(Ordering::Relaxed);
    let injected_faults = tally.injected_faults.load(Ordering::Relaxed);
    let reroutes = tally.reroutes.load(Ordering::Relaxed);
    let budget_stalls = tally.budget_stalls.load(Ordering::Relaxed);
    let total = (clients * queries_per_client) as u64;
    assert_eq!(
        ok + deadline_hits + cancelled,
        total,
        "every query must terminate as a verified result, a requested \
         cancellation, or a requested deadline expiry"
    );
    assert!(ok >= 1, "the storm must complete some queries");
    assert!(
        stats.failovers >= 1,
        "killing and draining replicas must exercise failover"
    );
    assert_eq!(
        stats.hedge_mismatches, 0,
        "hedge verification must never see replicas disagree"
    );
    assert_eq!(
        workers_replaced_b, 1,
        "the induced panic on replica B respawned exactly one worker"
    );

    let p99_queries = (clients * queries_per_client).clamp(40, 120);
    let ((p99_unhedged, p99_hedged), hedges_launched, hedges_won) = hedge_p99(p99_queries);
    assert!(
        p99_hedged < p99_unhedged,
        "hedging must beat a stalled replica: {p99_hedged:.2}ms vs {p99_unhedged:.2}ms"
    );
    let improvement = 100.0 * (1.0 - p99_hedged / p99_unhedged);

    let mut report = Report::new(
        format!(
            "fj-cluster chaos — {clients} clients × {queries_per_client} queries over 3 \
             faulty replicas; 1 hard-killed + 1 drained mid-run \
             ({n_emps} emps / {n_depts} depts)"
        ),
        &[
            "clients",
            "queries ok",
            "deadline",
            "cancelled",
            "faults retried",
            "failovers",
            "hedges",
            "breaker opens",
            "p99 off (ms)",
            "p99 on (ms)",
            "p99 gain",
        ],
    );
    report.row(vec![
        Report::cell(clients),
        Report::cell(ok),
        Report::cell(deadline_hits),
        Report::cell(cancelled),
        Report::cell(injected_faults),
        Report::cell(stats.failovers),
        Report::cell(stats.hedges_launched),
        Report::cell(stats.breaker_opens),
        Report::num(p99_unhedged),
        Report::num(p99_hedged),
        Report::cell(format!("{improvement:.0}%")),
    ]);
    report.note(
        "zero client-visible failures: every query resolved as a serial-verified \
         result, a requested cancel, or a requested deadline; injected faults were \
         typed and retried, replica death/drain absorbed by failover under the \
         shared retry budget, and hedge verification saw no divergence",
    );
    report.note(format!(
        "transient windows: {reroutes} no-candidate reroutes, {budget_stalls} \
         budget-exhausted backoffs (both typed, both recovered)"
    ));
    report.note(format!(
        "hedging vs a stalled replica ({p99_queries} queries, round-robin): \
         p99 {p99_unhedged:.2} ms unhedged → {p99_hedged:.2} ms hedged \
         ({improvement:.0}% improvement; {hedges_launched} hedges launched, \
         {hedges_won} won)"
    ));
    report.note(format!("cluster stats: {}", stats.to_json()));
    report
}
