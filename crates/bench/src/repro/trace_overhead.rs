//! Trace overhead: the cost of the observability layer itself.
//!
//! Tracing promises to be zero-cost when off (`ExecCtx.tracer` is
//! `None` and the execution path is untouched) and cheap when on (one
//! `OpStats` frame per plan node, counters bumped per operator, not
//! per tuple). This experiment measures both modes on the paper's
//! Figure 1 query and reports the per-query overhead, plus a fidelity
//! check: the traced runs must return the same number of rows and a
//! trace whose root cardinality matches.

use crate::report::Report;
use crate::workloads::{emp_dept, paper_query, EmpDeptConfig};
use fj_core::Database;
use std::time::Instant;

/// One measured mode.
#[derive(Debug, Clone, Copy)]
pub struct Mode {
    /// Whether tracing was attached.
    pub traced: bool,
    /// Executions measured.
    pub runs: usize,
    /// Mean per-query wall time in microseconds.
    pub mean_micros: f64,
    /// Rows returned per execution (identical across runs).
    pub rows: usize,
}

/// Runs the Figure 1 query `runs` times with and without tracing and
/// returns the two measured modes, untraced first.
pub fn measure(n_emps: usize, n_depts: usize, runs: usize) -> (Mode, Mode) {
    let db = Database::with_catalog(emp_dept(EmpDeptConfig {
        n_emps,
        n_depts,
        ..Default::default()
    }));
    let query = paper_query();
    // Warm both paths once: the first execution pays one-off costs
    // (view materialization) that would otherwise skew whichever mode
    // runs first.
    let warm = db.execute(&query).expect("warm-up runs");
    db.execute_traced(&query).expect("traced warm-up runs");

    let started = Instant::now();
    let mut rows = 0;
    for _ in 0..runs {
        rows = db.execute(&query).expect("untraced run").rows.len();
    }
    let plain = Mode {
        traced: false,
        runs,
        mean_micros: started.elapsed().as_micros() as f64 / runs as f64,
        rows,
    };

    let started = Instant::now();
    let mut traced_rows = 0;
    for _ in 0..runs {
        let result = db.execute_traced(&query).expect("traced run");
        let trace = result.trace.expect("traced run carries a trace");
        assert_eq!(
            trace.rows_out() as usize,
            result.rows.len(),
            "trace root cardinality must match the result"
        );
        traced_rows = result.rows.len();
    }
    let traced = Mode {
        traced: true,
        runs,
        mean_micros: started.elapsed().as_micros() as f64 / runs as f64,
        rows: traced_rows,
    };
    assert_eq!(warm.rows.len(), plain.rows);
    assert_eq!(plain.rows, traced.rows, "tracing must not change results");
    (plain, traced)
}

/// The printable report.
pub fn run(n_emps: usize, n_depts: usize, runs: usize) -> Report {
    let (plain, traced) = measure(n_emps, n_depts, runs);
    let mut r = Report::new(
        format!(
            "Trace overhead: Figure 1 query, tracing off vs on ({n_emps} emps / {n_depts} depts, {runs} runs)"
        ),
        &["mode", "runs", "rows", "mean us/query"],
    );
    for m in [&plain, &traced] {
        r.row(vec![
            if m.traced { "traced" } else { "untraced" }.to_string(),
            m.runs.to_string(),
            m.rows.to_string(),
            format!("{:.1}", m.mean_micros),
        ]);
    }
    let overhead = if plain.mean_micros > 0.0 {
        (traced.mean_micros - plain.mean_micros) / plain.mean_micros * 100.0
    } else {
        0.0
    };
    r.note(format!(
        "tracing overhead: {overhead:+.1}% mean wall time; identical row counts in both modes"
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_agree_on_rows_and_the_trace_is_present() {
        // Tiny instance: this is a correctness check, not a timing one
        // (wall-clock asserts would flake on shared CI machines).
        let (plain, traced) = measure(500, 50, 3);
        assert!(!plain.traced);
        assert!(traced.traced);
        assert_eq!(plain.rows, traced.rows);
        assert!(plain.rows > 0, "the Figure 1 query returns rows");
    }
}
