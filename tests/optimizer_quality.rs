//! Optimizer-quality integration tests: the dynamic program's plan is
//! never worse than any forced left-deep order, predicted costs track
//! measured costs, and the §3.3 limitations hold structurally.

use filterjoin::{fixtures, CostLedger, Database, ExecCtx, Optimizer, OptimizerConfig};
use std::sync::Arc;

fn permutations(items: &[String]) -> Vec<Vec<String>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head.clone());
            out.push(tail);
        }
    }
    out
}

#[test]
fn dp_is_optimal_over_forced_orders() {
    let cat = Arc::new(fixtures::paper_catalog());
    let q = fixtures::paper_query();
    let opt = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default());
    let global = opt.optimize(&q).unwrap();
    let aliases: Vec<String> = q.from.iter().map(|f| f.alias.clone()).collect();
    for order in permutations(&aliases) {
        let forced = opt.optimize_with_order(&q, &order).unwrap();
        // Small tolerance for path-dependent cardinality estimates
        // breaking entry-cost ties (see dp_optimality.rs).
        assert!(
            global.cost <= forced.cost * 1.01 + 1e-6,
            "global {} beaten by forced {:?} at {}",
            global.cost,
            order,
            forced.cost
        );
    }
}

#[test]
fn estimated_cost_tracks_measured_cost() {
    // On the scaled instance, predicted and measured total costs should
    // be the same order of magnitude (the cost model mirrors the
    // executor's charges).
    let cat = fj_bench::workloads::emp_dept(fj_bench::workloads::EmpDeptConfig {
        n_emps: 5_000,
        n_depts: 500,
        frac_big: 0.1,
        ..Default::default()
    });
    let db = Database::with_catalog(cat);
    let r = db.execute(&fixtures::paper_query()).unwrap();
    let est = r.estimated_cost.unwrap();
    let ratio = est / r.measured_cost;
    assert!(
        (0.3..3.0).contains(&ratio),
        "estimated {est} vs measured {} (ratio {ratio})",
        r.measured_cost
    );
}

#[test]
fn sips_production_is_a_prefix_of_the_join_order() {
    // Limitations 1+2: every Filter Join's production set must be the
    // full outer prefix at the point the inner joins.
    let cat = fj_bench::workloads::emp_dept(fj_bench::workloads::EmpDeptConfig {
        n_emps: 5_000,
        n_depts: 500,
        frac_big: 0.05,
        ..Default::default()
    });
    let db = Database::with_catalog(cat);
    let plan = db.optimize(&fixtures::paper_query()).unwrap();
    for s in &plan.sips {
        let k = s.production.len();
        assert_eq!(
            s.production,
            plan.order[..k].to_vec(),
            "production must be the join-order prefix"
        );
        assert_eq!(s.inner, plan.order[k], "inner follows its production");
    }
}

#[test]
fn parametric_fits_are_memoized_across_the_enumeration() {
    // Assumption 1: the number of nested estimator invocations is
    // #classes × #(virtual relation, attrs) pairs, independent of how
    // many joins the DP considers.
    let cat = Arc::new(fixtures::paper_catalog());
    let q = fixtures::paper_query();
    let opt = Optimizer::new(cat, OptimizerConfig::default());
    let plan = opt.optimize(&q).unwrap();
    assert!(
        plan.nested_invocations <= 2 * 4,
        "nested invocations {} exceed classes × virtual relations",
        plan.nested_invocations
    );
    assert!(plan.plans_considered > plan.nested_invocations);
}

#[test]
fn execution_is_deterministic() {
    let cat = Arc::new(fixtures::paper_catalog());
    let q = fixtures::paper_query();
    let opt = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default());
    let plan = opt.optimize(&q).unwrap();
    let run = || {
        let ctx = ExecCtx::new(Arc::clone(&cat));
        let rel = plan.phys.execute(&ctx).unwrap();
        (rel.rows, ctx.ledger.snapshot())
    };
    let (rows1, charges1) = run();
    let (rows2, charges2) = run();
    assert_eq!(rows1, rows2, "same rows every run");
    assert_eq!(charges1, charges2, "same ledger charges every run");
    let _ = CostLedger::new();
}

#[test]
fn explain_round_trips_the_decision() {
    let cat = fj_bench::workloads::emp_dept(fj_bench::workloads::EmpDeptConfig {
        n_emps: 4_000,
        n_depts: 400,
        frac_big: 0.05,
        ..Default::default()
    });
    let db = Database::with_catalog(cat);
    let q = fixtures::paper_query();
    let explain = db.explain(&q).unwrap();
    let plan = db.optimize(&q).unwrap();
    if plan.sips.is_empty() {
        assert!(explain.contains("none"));
    } else {
        assert!(explain.contains("filter join #0"));
        assert!(explain.contains("JoinCost_P"), "Table 1 breakdown shown");
    }
}

// -------------------- bushy enumeration quality battery -------------
//
// The bushy space is a strict superset of the left-deep space, which
// yields a total order the tests below enforce on every generated
// shape:  bushy best  ≤  left-deep best  ≤  every forced order.
// (Small multiplicative tolerance throughout: cardinality estimates
// are path-dependent, so entry-cost ties can break either way — the
// same tolerance `dp_is_optimal_over_forced_orders` uses.)

use filterjoin::optimizer::OptError;
use filterjoin::{col, Catalog, DataType, FromItem, JoinQuery, PlanShape, TableBuilder, Value};
use proptest::prelude::*;

/// An `n`-relation chain `t0.b = t1.a AND t1.b = t2.a AND …` with
/// per-table row counts drawn from `sizes` (cycled), so join order
/// genuinely matters.
fn chain_instance(n: usize, sizes: &[usize], fan: i64) -> (Catalog, JoinQuery) {
    let mut cat = Catalog::new();
    for i in 0..n {
        let rows = sizes[i % sizes.len()].max(1);
        cat.add_table(
            TableBuilder::new(format!("T{i}"))
                .column("a", DataType::Int)
                .column("b", DataType::Int)
                .rows((0..rows).map(|r| {
                    vec![
                        Value::Int(r as i64 % fan.max(1)),
                        Value::Int((r as i64 * 7 + i as i64) % fan.max(1)),
                    ]
                }))
                .build()
                .expect("chain table conforms")
                .into_ref(),
        );
    }
    let from: Vec<FromItem> = (0..n)
        .map(|i| FromItem::new(format!("T{i}"), format!("t{i}")))
        .collect();
    let mut q = JoinQuery::new(from);
    if n > 1 {
        let pred = (0..n - 1)
            .map(|i| col(format!("t{i}.b")).eq(col(format!("t{}.a", i + 1))))
            .reduce(|a, b| a.and(b))
            .expect("n > 1");
        q = q.with_predicate(pred);
    }
    (cat, q)
}

/// An `n`-relation cross product (no predicate at all): the shape that
/// exercises the edgeless-split paths of both enumerators.
fn cross_instance(n: usize, sizes: &[usize]) -> (Catalog, JoinQuery) {
    let mut cat = Catalog::new();
    for i in 0..n {
        let rows = sizes[i % sizes.len()].max(1);
        cat.add_table(
            TableBuilder::new(format!("X{i}"))
                .column("v", DataType::Int)
                .rows((0..rows).map(|r| vec![Value::Int(r as i64)]))
                .build()
                .expect("cross table conforms")
                .into_ref(),
        );
    }
    let from: Vec<FromItem> = (0..n)
        .map(|i| FromItem::new(format!("X{i}"), format!("x{i}")))
        .collect();
    (cat, JoinQuery::new(from))
}

/// Optimizes `q` under `shape`.
fn best(cat: &Arc<Catalog>, q: &JoinQuery, shape: PlanShape) -> filterjoin::OptimizedPlan {
    Optimizer::new(
        Arc::clone(cat),
        OptimizerConfig::default().with_shape(shape),
    )
    .optimize(q)
    .expect("shape optimizes")
}

/// The superset order on one instance: bushy ≤ left-deep ≤ every
/// forced order (both shapes beat every forced left-deep chain), and
/// the bushy enumerator never costs fewer alternatives.
fn check_superset_order(cat: Catalog, q: &JoinQuery) {
    let cat = Arc::new(cat);
    let ld = best(&cat, q, PlanShape::LeftDeep);
    let bushy = best(&cat, q, PlanShape::Bushy);
    assert!(
        bushy.cost <= ld.cost * 1.01 + 1e-6,
        "bushy {} worse than left-deep {}",
        bushy.cost,
        ld.cost
    );
    assert!(
        bushy.plans_considered >= ld.plans_considered,
        "bushy considered {} < left-deep {}",
        bushy.plans_considered,
        ld.plans_considered
    );
    let opt = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default());
    let aliases: Vec<String> = q.from.iter().map(|f| f.alias.clone()).collect();
    for order in permutations(&aliases) {
        let forced = opt
            .optimize_with_order(q, &order)
            .expect("forced order plans");
        assert!(
            ld.cost <= forced.cost * 1.01 + 1e-6,
            "left-deep {} beaten by forced {:?} at {}",
            ld.cost,
            order,
            forced.cost
        );
        assert!(
            bushy.cost <= forced.cost * 1.01 + 1e-6,
            "bushy {} beaten by forced {:?} at {}",
            bushy.cost,
            order,
            forced.cost
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Chains: bushy ≤ left-deep ≤ every forced order.
    #[test]
    fn bushy_superset_order_on_chains(
        n in 2usize..5,
        sizes in prop::collection::vec(5usize..120, 1..4),
        fan in 2i64..12,
    ) {
        let (cat, q) = chain_instance(n, &sizes, fan);
        check_superset_order(cat, &q);
    }

    /// Stars (fact + selective dimensions): bushy ≤ left-deep ≤ every
    /// forced order.
    #[test]
    fn bushy_superset_order_on_stars(
        n in 3usize..5,
        fact_rows in 40usize..250,
        dim_rows in 6usize..40,
        seed in 0u64..1_000,
    ) {
        let (cat, q) = fj_bench::workloads::star_selective(n, fact_rows, dim_rows, 15, seed);
        check_superset_order(cat, &q);
    }

    /// Cross products (no join graph at all): bushy ≤ left-deep ≤
    /// every forced order.
    #[test]
    fn bushy_superset_order_on_cross_products(
        n in 2usize..4,
        sizes in prop::collection::vec(3usize..40, 1..4),
    ) {
        let (cat, q) = cross_instance(n, &sizes);
        check_superset_order(cat, &q);
    }
}

/// Exhaustive ≤6-relation cross-check: the left-deep DP (with its
/// bounded interesting-orders frontier) must match the true left-deep
/// optimum — the minimum over all N! forced orders — and the bushy DP
/// must do at least as well. Pruning never drops the optimum.
#[test]
fn exhaustive_six_relation_cross_check() {
    let instances = vec![
        chain_instance(6, &[150, 8, 90, 12, 60, 25], 7),
        fj_bench::workloads::star_selective(6, 300, 20, 15, 42),
    ];
    for (cat, q) in instances {
        let cat = Arc::new(cat);
        let ld = best(&cat, &q, PlanShape::LeftDeep);
        let bushy = best(&cat, &q, PlanShape::Bushy);
        let opt = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default());
        let aliases: Vec<String> = q.from.iter().map(|f| f.alias.clone()).collect();
        let exhaustive = permutations(&aliases)
            .into_iter()
            .map(|order| {
                opt.optimize_with_order(&q, &order)
                    .expect("forced order plans")
                    .cost
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            ld.cost <= exhaustive * 1.01 + 1e-6,
            "left-deep DP {} dropped the exhaustive optimum {}",
            ld.cost,
            exhaustive
        );
        assert!(
            bushy.cost <= exhaustive * 1.01 + 1e-6,
            "bushy DP {} dropped the exhaustive optimum {}",
            bushy.cost,
            exhaustive
        );
    }
}

/// Enumeration work grows with relation count for both shapes, and the
/// bushy enumerator always explores at least the left-deep space.
#[test]
fn enumeration_counts_grow_as_expected() {
    let mut prev = (0u64, 0u64);
    for n in 3..=6 {
        let (cat, q) = chain_instance(n, &[40, 15, 80], 6);
        let cat = Arc::new(cat);
        let ld = best(&cat, &q, PlanShape::LeftDeep);
        let bushy = best(&cat, &q, PlanShape::Bushy);
        assert!(
            ld.plans_considered > prev.0 && bushy.plans_considered > prev.1,
            "n={n}: counts must grow ({} vs {}, {} vs {})",
            ld.plans_considered,
            prev.0,
            bushy.plans_considered,
            prev.1
        );
        assert!(bushy.plans_considered >= ld.plans_considered);
        prev = (ld.plans_considered, bushy.plans_considered);
    }
}

/// A forced order means forced *left-deep*: the `plan_shape` knob is
/// ignored by `optimize_with_order`, so a bushy-configured optimizer
/// prices exactly the same chain as a left-deep one.
#[test]
fn forced_order_is_left_deep_even_under_bushy_config() {
    let cat = Arc::new(fixtures::paper_catalog());
    let q = fixtures::paper_query();
    let order = vec!["E".to_string(), "D".to_string(), "V".to_string()];
    let ld = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default())
        .optimize_with_order(&q, &order)
        .expect("left-deep forced order");
    let bushy_cfg = Optimizer::new(Arc::clone(&cat), OptimizerConfig::bushy())
        .optimize_with_order(&q, &order)
        .expect("bushy-configured forced order");
    assert_eq!(ld.order, bushy_cfg.order);
    assert!(
        (ld.cost - bushy_cfg.cost).abs() < 1e-9,
        "the knob must not change a forced order: {} vs {}",
        ld.cost,
        bushy_cfg.cost
    );
}

/// Orders that are not a permutation of the query's aliases are
/// rejected with the typed error, never planned wrongly — under both
/// enumerator configurations.
#[test]
fn invalid_forced_orders_rejected_with_typed_error() {
    let cat = Arc::new(fixtures::paper_catalog());
    let q = fixtures::paper_query();
    for config in [OptimizerConfig::default(), OptimizerConfig::bushy()] {
        let opt = Optimizer::new(Arc::clone(&cat), config);
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // Wrong length.
        assert!(matches!(
            opt.optimize_with_order(&q, &s(&["E", "D"])),
            Err(OptError::InvalidForcedOrder(_))
        ));
        // Unknown alias.
        assert!(matches!(
            opt.optimize_with_order(&q, &s(&["E", "D", "Z"])),
            Err(OptError::InvalidForcedOrder(_))
        ));
        // Duplicate alias (same length as the query): before the
        // permutation check this silently dropped a relation.
        assert!(matches!(
            opt.optimize_with_order(&q, &s(&["E", "D", "D"])),
            Err(OptError::InvalidForcedOrder(_))
        ));
    }
}

/// EXPLAIN ANALYZE must zip a bushy plan's estimate tree and trace with
/// its physical plan: on the pinned snowflake (where the bushy winner
/// is strictly cheaper than any left-deep chain, so its shape has a
/// composite inner), every operator line must carry both an estimate
/// and an actual.
#[test]
fn explain_analyze_annotates_every_operator_of_a_bushy_plan() {
    let (cat, q) = fj_bench::workloads::snowflake(2, 500, 50, 25, 15, 13);
    let shared = Arc::new(cat.clone());
    let ld = best(&shared, &q, PlanShape::LeftDeep);
    let bushy = best(&shared, &q, PlanShape::Bushy);
    assert!(
        bushy.cost < ld.cost,
        "pinned seed must stay a strict bushy win"
    );

    let mut db = Database::with_catalog(cat);
    db.config_mut().plan_shape = PlanShape::Bushy;
    let s = db.explain_analyze(&q).unwrap();
    let op_lines: Vec<&str> = s
        .lines()
        .skip_while(|l| !l.starts_with("operators"))
        .skip(1)
        .collect();
    // 9 relations-and-operators minimum: 5 scans + 4 joins.
    assert!(op_lines.len() >= 9, "unexpectedly small plan:\n{s}");
    for line in &op_lines {
        assert!(line.contains("[est "), "missing estimate: {line}");
        assert!(line.contains("| actual "), "missing actual: {line}");
    }
}
