//! Optimizer-quality integration tests: the dynamic program's plan is
//! never worse than any forced left-deep order, predicted costs track
//! measured costs, and the §3.3 limitations hold structurally.

use filterjoin::{fixtures, CostLedger, Database, ExecCtx, Optimizer, OptimizerConfig};
use std::sync::Arc;

fn permutations(items: &[String]) -> Vec<Vec<String>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head.clone());
            out.push(tail);
        }
    }
    out
}

#[test]
fn dp_is_optimal_over_forced_orders() {
    let cat = Arc::new(fixtures::paper_catalog());
    let q = fixtures::paper_query();
    let opt = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default());
    let global = opt.optimize(&q).unwrap();
    let aliases: Vec<String> = q.from.iter().map(|f| f.alias.clone()).collect();
    for order in permutations(&aliases) {
        let forced = opt.optimize_with_order(&q, &order).unwrap();
        // Small tolerance for path-dependent cardinality estimates
        // breaking entry-cost ties (see dp_optimality.rs).
        assert!(
            global.cost <= forced.cost * 1.01 + 1e-6,
            "global {} beaten by forced {:?} at {}",
            global.cost,
            order,
            forced.cost
        );
    }
}

#[test]
fn estimated_cost_tracks_measured_cost() {
    // On the scaled instance, predicted and measured total costs should
    // be the same order of magnitude (the cost model mirrors the
    // executor's charges).
    let cat = fj_bench::workloads::emp_dept(fj_bench::workloads::EmpDeptConfig {
        n_emps: 5_000,
        n_depts: 500,
        frac_big: 0.1,
        ..Default::default()
    });
    let db = Database::with_catalog(cat);
    let r = db.execute(&fixtures::paper_query()).unwrap();
    let est = r.estimated_cost.unwrap();
    let ratio = est / r.measured_cost;
    assert!(
        (0.3..3.0).contains(&ratio),
        "estimated {est} vs measured {} (ratio {ratio})",
        r.measured_cost
    );
}

#[test]
fn sips_production_is_a_prefix_of_the_join_order() {
    // Limitations 1+2: every Filter Join's production set must be the
    // full outer prefix at the point the inner joins.
    let cat = fj_bench::workloads::emp_dept(fj_bench::workloads::EmpDeptConfig {
        n_emps: 5_000,
        n_depts: 500,
        frac_big: 0.05,
        ..Default::default()
    });
    let db = Database::with_catalog(cat);
    let plan = db.optimize(&fixtures::paper_query()).unwrap();
    for s in &plan.sips {
        let k = s.production.len();
        assert_eq!(
            s.production,
            plan.order[..k].to_vec(),
            "production must be the join-order prefix"
        );
        assert_eq!(s.inner, plan.order[k], "inner follows its production");
    }
}

#[test]
fn parametric_fits_are_memoized_across_the_enumeration() {
    // Assumption 1: the number of nested estimator invocations is
    // #classes × #(virtual relation, attrs) pairs, independent of how
    // many joins the DP considers.
    let cat = Arc::new(fixtures::paper_catalog());
    let q = fixtures::paper_query();
    let opt = Optimizer::new(cat, OptimizerConfig::default());
    let plan = opt.optimize(&q).unwrap();
    assert!(
        plan.nested_invocations <= 2 * 4,
        "nested invocations {} exceed classes × virtual relations",
        plan.nested_invocations
    );
    assert!(plan.plans_considered > plan.nested_invocations);
}

#[test]
fn execution_is_deterministic() {
    let cat = Arc::new(fixtures::paper_catalog());
    let q = fixtures::paper_query();
    let opt = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default());
    let plan = opt.optimize(&q).unwrap();
    let run = || {
        let ctx = ExecCtx::new(Arc::clone(&cat));
        let rel = plan.phys.execute(&ctx).unwrap();
        (rel.rows, ctx.ledger.snapshot())
    };
    let (rows1, charges1) = run();
    let (rows2, charges2) = run();
    assert_eq!(rows1, rows2, "same rows every run");
    assert_eq!(charges1, charges2, "same ledger charges every run");
    let _ = CostLedger::new();
}

#[test]
fn explain_round_trips_the_decision() {
    let cat = fj_bench::workloads::emp_dept(fj_bench::workloads::EmpDeptConfig {
        n_emps: 4_000,
        n_depts: 400,
        frac_big: 0.05,
        ..Default::default()
    });
    let db = Database::with_catalog(cat);
    let q = fixtures::paper_query();
    let explain = db.explain(&q).unwrap();
    let plan = db.optimize(&q).unwrap();
    if plan.sips.is_empty() {
        assert!(explain.contains("none"));
    } else {
        assert!(explain.contains("filter join #0"));
        assert!(explain.contains("JoinCost_P"), "Table 1 breakdown shown");
    }
}
