//! Cross-crate equivalence properties: every road to an answer —
//! naive lowering, magic rewriting under any valid SIPS, and the
//! cost-based optimizer under any configuration — must produce the
//! same result multiset.

use filterjoin::{
    col, fixtures, lit, AggCall, AggFunc, Catalog, DataType, Database, FromItem, JoinQuery,
    LogicalPlan, OptimizerConfig, Schema, Sips, TableBuilder, Tuple, Value, ViewDef,
};
use proptest::prelude::*;

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// Builds a randomized Emp/Dept/DepAvgSal catalog from proptest inputs.
fn catalog_from(emps: &[(i64, i64, f64, i64)], depts: &[(i64, f64)]) -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("Emp")
            .column("eid", DataType::Int)
            .column("did", DataType::Int)
            .column("sal", DataType::Double)
            .column("age", DataType::Int)
            .rows(emps.iter().enumerate().map(|(i, (_, d, s, a))| {
                vec![
                    Value::Int(i as i64),
                    Value::Int(*d),
                    Value::Double(*s),
                    Value::Int(*a),
                ]
            }))
            .build()
            .expect("emp rows conform")
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("Dept")
            .column("did", DataType::Int)
            .column("budget", DataType::Double)
            .rows(
                depts
                    .iter()
                    .enumerate()
                    .map(|(i, (_, b))| vec![Value::Int(i as i64), Value::Double(*b)]),
            )
            .build()
            .expect("dept rows conform")
            .into_ref(),
    );
    fixtures::add_dep_avg_sal_view(&mut cat);
    cat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper query over random instances: optimizer (FJ on and
    /// off), naive plan, and both single-relation-production magic
    /// rewrites all agree.
    #[test]
    fn all_roads_agree_on_random_instances(
        emps in prop::collection::vec(
            (0i64..1, 0i64..8, 500.0f64..9_000.0, 18i64..70), 1..60),
        depts in prop::collection::vec((0i64..1, 10_000.0f64..300_000.0), 8..9),
    ) {
        let cat = catalog_from(&emps, &depts);
        let db = Database::with_catalog(cat);
        let q = fixtures::paper_query();

        let naive = sorted(db.run_logical(&q.to_plan()).unwrap().rows);
        let with_fj = sorted(db.execute(&q).unwrap().rows);
        let without_fj = sorted(
            db.execute_with_config(&q, OptimizerConfig::without_filter_join())
                .unwrap()
                .rows,
        );
        prop_assert_eq!(&naive, &with_fj);
        prop_assert_eq!(&naive, &without_fj);

        for production in [vec!["E".to_string(), "D".to_string()], vec!["E".to_string()]] {
            let sips = Sips::derive(db.catalog(), &q, &production, "V").unwrap();
            let magic = sorted(db.run_magic(&q, &sips).unwrap().rows);
            prop_assert_eq!(&naive, &magic);
        }
    }

    /// Two-table equi-joins: the optimizer agrees with a reference
    /// nested-loops evaluation for arbitrary key distributions
    /// (including duplicates and empty sides).
    #[test]
    fn optimizer_matches_reference_join(
        left in prop::collection::vec(0i64..12, 0..40),
        right in prop::collection::vec(0i64..12, 0..40),
    ) {
        let mut cat = Catalog::new();
        cat.add_table(
            TableBuilder::new("L")
                .column("k", DataType::Int)
                .rows(left.iter().map(|&k| vec![Value::Int(k)]))
                .build()
                .unwrap()
                .into_ref(),
        );
        cat.add_table(
            TableBuilder::new("R")
                .column("k", DataType::Int)
                .rows(right.iter().map(|&k| vec![Value::Int(k)]))
                .build()
                .unwrap()
                .into_ref(),
        );
        let db = Database::with_catalog(cat);
        let q = JoinQuery::new(vec![FromItem::new("L", "l"), FromItem::new("R", "r")])
            .with_predicate(col("l.k").eq(col("r.k")));
        let got = db.execute(&q).unwrap().rows.len();
        let expected: usize = left
            .iter()
            .map(|a| right.iter().filter(|b| *b == a).count())
            .sum();
        prop_assert_eq!(got, expected);
    }

    /// Magic rewriting of an SPJ (non-aggregate) view also preserves
    /// answers.
    #[test]
    fn spj_view_magic_equivalence(
        rows in prop::collection::vec((0i64..10, 0i64..100), 1..50),
        threshold in 0i64..100,
    ) {
        check_spj_view_magic(&rows, threshold);
    }
}

/// Body of `spj_view_magic_equivalence`, shared with the deterministic
/// regression replay below.
fn check_spj_view_magic(rows: &[(i64, i64)], threshold: i64) {
    {
        let mut cat = Catalog::new();
        cat.add_table(
            TableBuilder::new("T")
                .column("k", DataType::Int)
                .column("v", DataType::Int)
                .rows(
                    rows.iter()
                        .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)]),
                )
                .build()
                .unwrap()
                .into_ref(),
        );
        // An SPJ view: big values only.
        cat.add_view(ViewDef {
            name: "BigV".into(),
            plan: LogicalPlan::scan("T", "X")
                .select(col("X.v").ge(lit(threshold)))
                .project(vec![(col("X.k"), "k".into()), (col("X.v"), "v".into())])
                .into_ref(),
            schema: Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]).into_ref(),
        });
        let db = Database::with_catalog(cat);
        let q = JoinQuery::new(vec![FromItem::new("T", "A"), FromItem::new("BigV", "B")])
            .with_predicate(col("A.k").eq(col("B.k")));
        let naive = sorted(db.run_logical(&q.to_plan()).unwrap().rows);
        let sips = Sips::derive(db.catalog(), &q, &["A".to_string()], "B").unwrap();
        let magic = sorted(db.run_magic(&q, &sips).unwrap().rows);
        prop_assert_eq!(&naive, &magic);
        let optimized = sorted(db.execute(&q).unwrap().rows);
        prop_assert_eq!(&naive, &optimized);
    }
}

/// Deterministic replay of the shrunk input committed in
/// `tests/equivalence.proptest-regressions` (`rows = [(3, 0), (3, 21)],
/// threshold = 1`). The vendored proptest shim does not consult
/// regression files, so the historical failure is pinned here directly.
#[test]
fn spj_view_magic_equivalence_regression_seed() {
    check_spj_view_magic(&[(3, 0), (3, 21)], 1);
}

/// Aggregate semantics survive the rewriting even with multiple
/// aggregates in the view (deterministic dataset).
#[test]
fn multi_aggregate_view_magic_equivalence() {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("T")
            .column("k", DataType::Int)
            .column("v", DataType::Int)
            .rows((0..100).map(|i| vec![Value::Int(i % 7), Value::Int(i)]))
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.add_view(ViewDef {
        name: "Stats".into(),
        plan: LogicalPlan::scan("T", "X")
            .aggregate(
                vec!["X.k".into()],
                vec![
                    AggCall::new(AggFunc::Min, "X.v", "lo"),
                    AggCall::new(AggFunc::Max, "X.v", "hi"),
                    AggCall::count_star("n"),
                    AggCall::new(AggFunc::Avg, "X.v", "mean"),
                ],
            )
            .project(vec![
                (col("X.k"), "k".into()),
                (col("lo"), "lo".into()),
                (col("hi"), "hi".into()),
                (col("n"), "n".into()),
                (col("mean"), "mean".into()),
            ])
            .into_ref(),
        schema: Schema::from_pairs(&[
            ("k", DataType::Int),
            ("lo", DataType::Int),
            ("hi", DataType::Int),
            ("n", DataType::Int),
            ("mean", DataType::Double),
        ])
        .into_ref(),
    });
    let db = Database::with_catalog(cat);
    let q = JoinQuery::new(vec![FromItem::new("T", "A"), FromItem::new("Stats", "S")])
        .with_predicate(col("A.k").eq(col("S.k")).and(col("A.v").lt(lit(3))));
    let naive = sorted(db.run_logical(&q.to_plan()).unwrap().rows);
    assert!(!naive.is_empty());
    let sips = Sips::derive(db.catalog(), &q, &["A".to_string()], "S").unwrap();
    let magic = sorted(db.run_magic(&q, &sips).unwrap().rows);
    assert_eq!(naive, magic);
    let optimized = sorted(db.execute(&q).unwrap().rows);
    assert_eq!(naive, optimized);
}
