//! Differential plan-equivalence suite: the optimizer under *every*
//! feature configuration is tested against the naive `run_logical`
//! oracle on randomized instances. The oracle never touches the
//! optimizer — it lowers the logical plan directly — so any
//! disagreement is an optimizer or executor bug, not a shared one.
//! Traced executions ride along: the trace root must report exactly
//! the oracle's cardinality, pinning the observability layer to the
//! same oracle.

use filterjoin::{
    col, fixtures, lit, Catalog, CheckpointPhase, DataType, Database, FaultPlan, FromItem,
    InterruptReason, JoinQuery, Mutation, OptimizerConfig, PlanShape, QueryService, RuntimeError,
    ServiceConfig, StorageMode, Store, TableBuilder, Tuple, Value,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// Every optimizer feature combination worth distinguishing: all on,
/// all off, and each major feature toggled individually. Exhaustive
/// 2^6 would mostly re-test the same plans; these eight hit every
/// lowering path.
fn config_matrix() -> Vec<OptimizerConfig> {
    let all = OptimizerConfig::default();
    let mut configs = vec![all, OptimizerConfig::without_filter_join()];
    for toggle in 0..4 {
        let mut c = OptimizerConfig::default();
        match toggle {
            0 => c.enable_bloom = !c.enable_bloom,
            1 => c.enable_index_nl = !c.enable_index_nl,
            2 => c.enable_merge_join = !c.enable_merge_join,
            _ => c.filter_join_on_base = !c.filter_join_on_base,
        }
        configs.push(c);
    }
    let mut off = OptimizerConfig::without_filter_join();
    off.enable_bloom = false;
    off.enable_index_nl = false;
    off.enable_merge_join = false;
    configs.push(off);
    configs
}

/// The feature matrix crossed with both enumerator shapes: every
/// config runs once exploring left-deep chains and once exploring the
/// full bushy space, so a bushy-only lowering or execution bug cannot
/// hide behind the default shape.
fn shaped_matrix() -> Vec<OptimizerConfig> {
    config_matrix()
        .into_iter()
        .flat_map(|c| {
            [
                c.with_shape(PlanShape::LeftDeep),
                c.with_shape(PlanShape::Bushy),
            ]
        })
        .collect()
}

/// Randomized Emp/Dept/DepAvgSal catalog (the paper's schema).
fn paper_catalog_from(emps: &[(i64, f64, i64)], n_depts: i64) -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("Emp")
            .column("eid", DataType::Int)
            .column("did", DataType::Int)
            .column("sal", DataType::Double)
            .column("age", DataType::Int)
            .rows(emps.iter().enumerate().map(|(i, (d, s, a))| {
                vec![
                    Value::Int(i as i64),
                    Value::Int(d % n_depts.max(1)),
                    Value::Double(*s),
                    Value::Int(*a),
                ]
            }))
            .build()
            .expect("emp rows conform")
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("Dept")
            .column("did", DataType::Int)
            .column("budget", DataType::Double)
            .rows((0..n_depts).map(|i| vec![Value::Int(i), Value::Double(1e5 + i as f64)]))
            .build()
            .expect("dept rows conform")
            .into_ref(),
    );
    fixtures::add_dep_avg_sal_view(&mut cat);
    cat
}

/// Oracle vs every configured optimizer, on one database and query:
/// row multisets identical, and the traced execution's root
/// cardinality equal to the oracle count.
fn check_differential(db: &Database, q: &JoinQuery) {
    let oracle = sorted(db.run_logical(&q.to_plan()).expect("oracle runs").rows);
    for config in shaped_matrix() {
        let got = sorted(
            db.execute_with_config(q, config)
                .expect("optimized plan runs")
                .rows,
        );
        assert_eq!(oracle, got, "optimizer config diverged: {config:?}");
    }
    let traced = db.execute_traced(q).expect("traced run");
    let trace = traced.trace.expect("traced run carries a trace");
    assert_eq!(trace.rows_out() as usize, oracle.len());
    assert_eq!(sorted(traced.rows), oracle);
}

/// Body of `paper_query_differential`, shared with the pinned seeds.
fn check_paper_query(emps: &[(i64, f64, i64)], n_depts: i64, age: i64) {
    let db = Database::with_catalog(paper_catalog_from(emps, n_depts));
    let q = JoinQuery::new(vec![
        FromItem::new("Emp", "E"),
        FromItem::new("Dept", "D"),
        FromItem::new("DepAvgSal", "V"),
    ])
    .with_predicate(
        col("E.did")
            .eq(col("D.did"))
            .and(col("E.did").eq(col("V.did")))
            .and(col("E.sal").gt(col("V.avgsal")))
            .and(col("E.age").lt(lit(age))),
    );
    check_differential(&db, &q);
}

/// Body of `two_table_join_differential`, shared with the pinned seeds.
fn check_two_table(left: &[(i64, i64)], right: &[i64], threshold: i64) {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("L")
            .column("k", DataType::Int)
            .column("v", DataType::Int)
            .rows(
                left.iter()
                    .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)]),
            )
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("R")
            .column("k", DataType::Int)
            .rows(right.iter().map(|&k| vec![Value::Int(k)]))
            .build()
            .unwrap()
            .into_ref(),
    );
    let db = Database::with_catalog(cat);
    let q = JoinQuery::new(vec![FromItem::new("L", "l"), FromItem::new("R", "r")])
        .with_predicate(col("l.k").eq(col("r.k")).and(col("l.v").ge(lit(threshold))));
    check_differential(&db, &q);
}

/// Body of `chain_join_differential`, shared with the pinned seeds.
fn check_chain(a: &[(i64, i64)], b: &[(i64, i64)], c: &[i64]) {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("A")
            .column("x", DataType::Int)
            .column("y", DataType::Int)
            .rows(a.iter().map(|(x, y)| vec![Value::Int(*x), Value::Int(*y)]))
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("B")
            .column("y", DataType::Int)
            .column("z", DataType::Int)
            .rows(b.iter().map(|(y, z)| vec![Value::Int(*y), Value::Int(*z)]))
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("C")
            .column("z", DataType::Int)
            .rows(c.iter().map(|&z| vec![Value::Int(z)]))
            .build()
            .unwrap()
            .into_ref(),
    );
    let db = Database::with_catalog(cat);
    let q = JoinQuery::new(vec![
        FromItem::new("A", "a"),
        FromItem::new("B", "b"),
        FromItem::new("C", "c"),
    ])
    .with_predicate(col("a.y").eq(col("b.y")).and(col("b.z").eq(col("c.z"))));
    check_differential(&db, &q);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The paper query over random instances: the oracle and every
    /// optimizer configuration agree, and the trace agrees with both.
    #[test]
    fn paper_query_differential(
        emps in prop::collection::vec((0i64..64, 500.0f64..9_000.0, 18i64..70), 1..50),
        n_depts in 4i64..10,
        age in 20i64..65,
    ) {
        check_paper_query(&emps, n_depts, age);
    }

    /// Two-table equi-join with a residual filter, arbitrary key
    /// distributions (duplicates, skew, empty sides).
    #[test]
    fn two_table_join_differential(
        left in prop::collection::vec((0i64..10, 0i64..50), 0..40),
        right in prop::collection::vec(0i64..10, 0..40),
        threshold in 0i64..50,
    ) {
        check_two_table(&left, &right, threshold);
    }

    /// Three-table chain join: the optimizer's join-order choices must
    /// never change the answer.
    #[test]
    fn chain_join_differential(
        a in prop::collection::vec((0i64..6, 0i64..6), 0..25),
        b in prop::collection::vec((0i64..6, 0i64..6), 0..25),
        c in prop::collection::vec(0i64..6, 0..25),
    ) {
        check_chain(&a, &b, &c);
    }
}

// The vendored proptest shim derives its byte stream from the test
// name and does not consult regression files, so interesting inputs
// are pinned as explicit deterministic replays below.

/// Empty-side joins: every config must agree on zero rows (and the
/// trace must report zero, not skip the node).
#[test]
fn empty_sides_regression_seed() {
    check_two_table(&[], &[0, 1, 2], 0);
    check_two_table(&[(1, 10), (2, 20)], &[], 0);
    check_chain(&[(0, 0)], &[], &[0]);
}

/// Heavy duplicates on both sides — the multiset (not set) contract:
/// 3×2 matches on one key must survive every join strategy.
#[test]
fn duplicate_keys_regression_seed() {
    check_two_table(&[(5, 1), (5, 2), (5, 3)], &[5, 5], 0);
    check_chain(&[(1, 1), (1, 1)], &[(1, 2), (1, 2)], &[2, 2]);
}

/// One department, every employee in it, threshold filtering none:
/// maximally skewed paper-query instance.
#[test]
fn skewed_paper_instance_regression_seed() {
    let emps: Vec<(i64, f64, i64)> = (0..30).map(|i| (0, 1000.0 + i as f64, 30)).collect();
    check_paper_query(&emps, 1, 64);
}

/// A filter threshold excluding every row: the restricted view is
/// empty but the plan shape still has every operator.
#[test]
fn all_filtered_regression_seed() {
    check_two_table(&[(1, 1), (2, 2)], &[1, 2], 49);
    let emps = [(0, 800.0, 69), (1, 900.0, 68)];
    check_paper_query(&emps, 4, 21);
}

// ---------------------------------------------------------------------
// Disk-backed storage mode: the same differential contract must hold
// when every logical page the executor charges is shadowed by a
// physical fetch through the buffer pool and page file.

/// A unique scratch directory under the system temp dir, removed on
/// drop (kept for post-mortems if removal fails — it is temp space).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(label: &str) -> ScratchDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "fj-differential-{label}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn disk_config(dir: &ScratchDir, pool_pages: usize) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        storage: StorageMode::Disk {
            dir: dir.0.clone(),
            pool_pages,
        },
        ..ServiceConfig::default()
    }
}

/// A deterministic mid-sized paper instance for the disk-mode checks.
fn disk_instance() -> (Catalog, JoinQuery) {
    let emps: Vec<(i64, f64, i64)> = (0..200)
        .map(|i| {
            (
                (i * 7) % 64,
                500.0 + (i * 13 % 100) as f64 * 80.0,
                18 + (i * 5) % 50,
            )
        })
        .collect();
    let cat = paper_catalog_from(&emps, 8);
    let q = JoinQuery::new(vec![
        FromItem::new("Emp", "E"),
        FromItem::new("Dept", "D"),
        FromItem::new("DepAvgSal", "V"),
    ])
    .with_predicate(
        col("E.did")
            .eq(col("D.did"))
            .and(col("E.did").eq(col("V.did")))
            .and(col("E.sal").gt(col("V.avgsal")))
            .and(col("E.age").lt(lit(45))),
    );
    (cat, q)
}

/// Every optimizer configuration of the matrix, executed through a
/// disk-backed service with a deliberately tiny buffer pool (forcing
/// eviction churn), must agree with the in-memory oracle row for row.
#[test]
fn disk_mode_matches_oracle_across_config_matrix() {
    let (cat, q) = disk_instance();
    let oracle = sorted(
        Database::with_catalog(cat.clone())
            .run_logical(&q.to_plan())
            .expect("oracle runs")
            .rows,
    );
    let dir = ScratchDir::new("matrix");
    // pool_pages 2: far below the working set, so the clock hand is
    // forced to evict and re-fetch pages throughout every query.
    let service = QueryService::start(cat, disk_config(&dir, 2));
    for config in config_matrix() {
        let got = sorted(
            service
                .submit_with_config(q.clone(), config)
                .expect("submit")
                .wait()
                .expect("disk-mode query runs")
                .rows,
        );
        assert_eq!(
            oracle, got,
            "disk-mode optimizer config diverged: {config:?}"
        );
    }
    service.shutdown();
}

/// The cost-model parity contract on the restart (cold-pool) path: for
/// a cold base-table scan, the *simulated* page charges the ledger
/// records equal the *physical* page-file reads exactly, and every one
/// of them is a pool miss. A warm re-run keeps the simulated charges
/// identical while physical reads drop to zero — the intentional,
/// documented divergence: the ledger models a cold System-R buffer on
/// every query, the pool models a real warm one (DESIGN.md
/// §"Persistence & recovery").
#[test]
fn cold_disk_scan_charges_equal_physical_reads() {
    let (cat, _) = disk_instance();
    let dir = ScratchDir::new("parity");
    // First start loads the tables into the store; shut down cleanly.
    QueryService::start(cat.clone(), disk_config(&dir, 64)).shutdown();

    // Restart from the data directory: recovery replays, pool is cold.
    let service = QueryService::start(cat, disk_config(&dir, 64));
    let scan = JoinQuery::new(vec![FromItem::new("Emp", "E")]);

    let before = service.store_stats();
    let cold = service
        .submit(scan.clone())
        .expect("submit")
        .wait()
        .expect("cold scan runs");
    let after = service.store_stats();
    let misses = after.pool_misses - before.pool_misses;
    let physical = after.physical_reads - before.physical_reads;
    assert!(misses > 0, "a cold scan must miss the pool");
    assert_eq!(misses, physical, "every cold miss is one page-file read");
    assert_eq!(
        cold.charges.page_reads, physical,
        "simulated page charges must equal physical reads for a cold scan"
    );

    let before = service.store_stats();
    let warm = service
        .submit(scan)
        .expect("submit")
        .wait()
        .expect("warm scan runs");
    let after = service.store_stats();
    assert_eq!(
        warm.charges.page_reads, cold.charges.page_reads,
        "simulated charges are pool-oblivious by design"
    );
    assert_eq!(
        after.physical_reads, before.physical_reads,
        "a warm scan reads nothing from disk"
    );
    assert_eq!(
        after.pool_hits - before.pool_hits,
        misses,
        "the warm scan hits exactly the pages the cold scan faulted in"
    );
    assert_eq!(sorted(warm.rows), sorted(cold.rows));
    service.shutdown();
}

/// Applies `mutations` to the named tables of `cat` in order and
/// returns the mutated row vectors, keyed by insertion order of
/// `names`. Pure [`Mutation::apply`] — the same oracle the crash
/// harness uses, never the storage engine under test.
fn mutated_rows(cat: &Catalog, names: &[&str], mutations: &[Mutation]) -> Vec<Vec<Tuple>> {
    let mut rows: Vec<Vec<Tuple>> = names
        .iter()
        .map(|n| cat.table(n).expect("template table").rows().to_vec())
        .collect();
    for m in mutations {
        let i = names
            .iter()
            .position(|n| *n == m.table())
            .expect("mutation targets a known table");
        let schema = cat.table(names[i]).unwrap().schema().as_ref().clone();
        let (next, _) = m.apply(&schema, &rows[i]).expect("oracle mutation applies");
        rows[i] = next;
    }
    rows
}

/// The write-path differential: a disk-backed service absorbs a stream
/// of mutations (deletes, salary updates, inserts — against both join
/// sides), and then every optimizer configuration of the matrix must
/// agree row-for-row with a fresh in-memory oracle built from the
/// *post-mutation* catalog. The view over the mutated base table is
/// recomputed on both sides, so a stale snapshot anywhere in the
/// service's catalog, plan cache, or buffer pool shows up as a diff.
#[test]
fn disk_mode_after_mutations_matches_post_mutation_oracle() {
    let (cat, q) = disk_instance();
    let dir = ScratchDir::new("mutated");
    let service = QueryService::start(cat.clone(), disk_config(&dir, 2));

    let mutations = vec![
        Mutation::Delete {
            table: "Emp".into(),
            where_col: "age".into(),
            where_value: Value::Int(18),
        },
        Mutation::Update {
            table: "Emp".into(),
            set: vec![("sal".into(), Value::Double(12_000.0))],
            where_col: "did".into(),
            where_value: Value::Int(3),
        },
        Mutation::Insert {
            table: "Emp".into(),
            rows: (0..5)
                .map(|i| {
                    vec![
                        Value::Int(900 + i),
                        Value::Int(i % 8),
                        Value::Double(4_000.0 + i as f64),
                        Value::Int(25),
                    ]
                })
                .collect(),
        },
        Mutation::Update {
            table: "Dept".into(),
            set: vec![("budget".into(), Value::Double(5e5))],
            where_col: "did".into(),
            where_value: Value::Int(2),
        },
    ];
    for m in &mutations {
        let stats = service
            .execute_mutation(m.clone())
            .expect("mutation commits");
        assert!(stats.version >= 2, "every commit bumps the table version");
    }

    // Post-mutation oracle: the same mutations applied purely, then a
    // fresh in-memory catalog (view re-derived from the mutated rows).
    let rows = mutated_rows(&cat, &["Emp", "Dept"], &mutations);
    let mut post = Catalog::new();
    post.add_table(
        TableBuilder::new("Emp")
            .column("eid", DataType::Int)
            .column("did", DataType::Int)
            .column("sal", DataType::Double)
            .column("age", DataType::Int)
            .rows(rows[0].iter().map(|t| t.values().to_vec()))
            .build()
            .expect("mutated Emp conforms")
            .into_ref(),
    );
    post.add_table(
        TableBuilder::new("Dept")
            .column("did", DataType::Int)
            .column("budget", DataType::Double)
            .rows(rows[1].iter().map(|t| t.values().to_vec()))
            .build()
            .expect("mutated Dept conforms")
            .into_ref(),
    );
    fixtures::add_dep_avg_sal_view(&mut post);
    let oracle = sorted(
        Database::with_catalog(post)
            .run_logical(&q.to_plan())
            .expect("post-mutation oracle runs")
            .rows,
    );
    // The mutations must actually change the answer, or the matrix
    // below would pass against a service that ignored them.
    let pre_oracle = sorted(
        Database::with_catalog(cat)
            .run_logical(&q.to_plan())
            .expect("pre-mutation oracle runs")
            .rows,
    );
    assert_ne!(oracle, pre_oracle, "mutations must be answer-changing");

    for config in config_matrix() {
        let got = sorted(
            service
                .submit_with_config(q.clone(), config)
                .expect("submit")
                .wait()
                .expect("disk-mode query runs")
                .rows,
        );
        assert_eq!(
            oracle, got,
            "post-mutation disk-mode optimizer config diverged: {config:?}"
        );
    }
    service.shutdown();
}

/// Pinned regression seed: mutations committed around a checkpoint that
/// dies *after publishing the manifest but before truncating the WAL*
/// (the nastiest window — every mutation gets replayed over
/// already-checkpointed state). Recovery must be idempotent, and a
/// service started on the crashed directory must serve the
/// post-mutation rows across the whole config matrix.
#[test]
fn crash_mid_checkpoint_regression_seed() {
    let left: Vec<(i64, i64)> = (0..40).map(|i| (i % 11, i)).collect();
    let right: Vec<i64> = (0..30).map(|i| i % 13).collect();
    let cat = two_table_catalog(&left, &right);
    let mutations = vec![
        Mutation::Insert {
            table: "L".into(),
            rows: vec![
                vec![Value::Int(100), Value::Int(5)],
                vec![Value::Int(3), Value::Int(77)],
            ],
        },
        Mutation::Delete {
            table: "L".into(),
            where_col: "k".into(),
            where_value: Value::Int(7),
        },
        Mutation::Update {
            table: "L".into(),
            set: vec![("v".into(), Value::Int(9))],
            where_col: "k".into(),
            where_value: Value::Int(4),
        },
    ];
    let l_rows = mutated_rows(&cat, &["L"], &mutations).remove(0);

    let dir = ScratchDir::new("ckpt-crash");
    {
        let faults = std::sync::Arc::new(
            FaultPlan::new(0xBADC_0FFE)
                .with_torn_delta_writes(1)
                .with_torn_scrub_writes(2),
        );
        let (store, _) = Store::open(&dir.0, 8, Some(faults)).expect("open store");
        store
            .load_table(&cat.table("L").expect("template L"))
            .expect("load L");
        store
            .mutate(&mutations[0], &|| false)
            .expect("insert commits");
        store
            .mutate(&mutations[1], &|| false)
            .expect("delete commits");
        // The checkpoint dies after the manifest publish, before the
        // WAL truncate — then one more mutation lands, then the kill.
        store
            .checkpoint_until(CheckpointPhase::Manifest)
            .expect("partial checkpoint");
        store
            .mutate(&mutations[2], &|| false)
            .expect("update commits");
    }

    // Recovery replays all three commits over the checkpointed state
    // (the WAL was never truncated) — idempotently, twice.
    let first = {
        let (store, report) = Store::open(&dir.0, 8, None).expect("recover");
        assert_eq!(report.replayed_mutations, 3, "untruncated WAL replays all");
        let (_, rows) = store.recovered_rows("L").expect("recovered L");
        assert_eq!(rows, l_rows, "recovered rows must equal the oracle");
        std::fs::read(dir.0.join("pages.fj")).expect("page file exists")
    };
    {
        let (_store, _) = Store::open(&dir.0, 8, None).expect("second recover");
        assert_eq!(
            std::fs::read(dir.0.join("pages.fj")).expect("page file exists"),
            first,
            "second recovery must be byte-identical"
        );
    }

    // A service on the crashed directory serves the mutated table (R
    // loads fresh from the template) — matrix-agreeing with the oracle.
    let mut post = two_table_catalog(&[], &right);
    post.add_table(
        TableBuilder::new("L")
            .column("k", DataType::Int)
            .column("v", DataType::Int)
            .rows(l_rows.iter().map(|t| t.values().to_vec()))
            .build()
            .expect("mutated L conforms")
            .into_ref(),
    );
    let q = JoinQuery::new(vec![FromItem::new("L", "l"), FromItem::new("R", "r")])
        .with_predicate(col("l.k").eq(col("r.k")).and(col("l.v").ge(lit(4))));
    let oracle = sorted(
        Database::with_catalog(post)
            .run_logical(&q.to_plan())
            .expect("post-crash oracle runs")
            .rows,
    );
    let service = QueryService::start(cat, disk_config(&dir, 4));
    for config in config_matrix() {
        let got = sorted(
            service
                .submit_with_config(q.clone(), config)
                .expect("submit")
                .wait()
                .expect("post-crash query runs")
                .rows,
        );
        assert_eq!(oracle, got, "post-crash config diverged: {config:?}");
    }
    service.shutdown();
}

// -------------------- distributed execution differential ------------

/// A 3-shard coordinator over `cat`, with empty shard servers spun up
/// on loopback. The servers are returned so they outlive the
/// coordinator (and so tests can drain one).
fn dist_fixture(
    cat: Catalog,
    replication: usize,
) -> (Vec<filterjoin::Server>, filterjoin::DistCoordinator) {
    let servers: Vec<filterjoin::Server> = (0..3)
        .map(|_| {
            filterjoin::Server::bind(
                "127.0.0.1:0",
                Catalog::new(),
                filterjoin::ServerConfig::default(),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<std::net::SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
    let coord = filterjoin::DistCoordinator::deploy(
        cat,
        filterjoin::ShardMap::new(&addrs, 3, replication),
        filterjoin::DistConfig::default(),
    )
    .expect("deploy scatters cleanly");
    (servers, coord)
}

/// The distributed differential: the untouched `run_logical` oracle vs
/// the 3-shard coordinator under every optimizer configuration of the
/// matrix (with automatic strategy selection), then under every
/// explicit shipping strategy at the default configuration.
fn check_dist_differential(cat: Catalog, q: &JoinQuery) {
    let oracle = sorted(
        Database::with_catalog(cat.clone())
            .run_logical(&q.to_plan())
            .expect("oracle runs")
            .rows,
    );
    let (_servers, coord) = dist_fixture(cat, 1);
    for config in shaped_matrix() {
        let got = coord
            .execute_with_config(q, config, filterjoin::ShipStrategy::Auto)
            .expect("distributed run succeeds");
        assert_eq!(
            sorted(got.result.rows),
            oracle,
            "distributed run diverged under config {config:?}"
        );
    }
    for strategy in filterjoin::ShipStrategy::ALL {
        if strategy == filterjoin::ShipStrategy::FullReducer {
            // Applicable only to acyclic equi-join graphs; the shapes
            // below all are, but guard anyway so new shapes can ride.
            match coord.execute_with_config(q, OptimizerConfig::default(), strategy) {
                Ok(got) => assert_eq!(sorted(got.result.rows), oracle, "{}", strategy.name()),
                Err(filterjoin::DistError::Unsupported(_)) => continue,
                Err(e) => panic!("full reducer failed: {e}"),
            }
            continue;
        }
        let got = coord
            .execute_with_config(q, OptimizerConfig::default(), strategy)
            .expect("distributed run succeeds");
        assert_eq!(
            sorted(got.result.rows),
            oracle,
            "distributed {} diverged",
            strategy.name()
        );
    }
}

fn two_table_catalog(left: &[(i64, i64)], right: &[i64]) -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("L")
            .column("k", DataType::Int)
            .column("v", DataType::Int)
            .rows(
                left.iter()
                    .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)]),
            )
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("R")
            .column("k", DataType::Int)
            .rows(right.iter().map(|&k| vec![Value::Int(k)]))
            .build()
            .unwrap()
            .into_ref(),
    );
    cat
}

fn chain_catalog_from(a: &[(i64, i64)], b: &[(i64, i64)], c: &[i64]) -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("A")
            .column("x", DataType::Int)
            .column("y", DataType::Int)
            .rows(a.iter().map(|(x, y)| vec![Value::Int(*x), Value::Int(*y)]))
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("B")
            .column("y", DataType::Int)
            .column("z", DataType::Int)
            .rows(b.iter().map(|(y, z)| vec![Value::Int(*y), Value::Int(*z)]))
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("C")
            .column("z", DataType::Int)
            .rows(c.iter().map(|&z| vec![Value::Int(z)]))
            .build()
            .unwrap()
            .into_ref(),
    );
    cat
}

/// Two-table join with duplicates and skew through the 3-shard
/// coordinator: byte-identical to the oracle across the whole config
/// matrix and every shipping strategy.
#[test]
fn distributed_two_table_matches_oracle_across_config_matrix() {
    let left: Vec<(i64, i64)> = (0..37).map(|i| (i % 7, i % 13)).collect();
    let right: Vec<i64> = (0..29).map(|i| i % 9).collect();
    let cat = two_table_catalog(&left, &right);
    let q = JoinQuery::new(vec![FromItem::new("L", "l"), FromItem::new("R", "r")])
        .with_predicate(col("l.k").eq(col("r.k")).and(col("l.v").ge(lit(4))));
    check_dist_differential(cat, &q);
}

/// Three-table chain (the magic-sets shape) through the 3-shard
/// coordinator, including empty-partition skew: one key value owns
/// most rows, so at least one shard holds almost nothing.
#[test]
fn distributed_chain_matches_oracle_across_config_matrix() {
    let a: Vec<(i64, i64)> = (0..24)
        .map(|i| (i, if i % 3 == 0 { 0 } else { i % 5 }))
        .collect();
    let b: Vec<(i64, i64)> = (0..20).map(|i| (i % 5, i % 4)).collect();
    let c: Vec<i64> = (0..10).map(|i| i % 6).collect();
    let cat = chain_catalog_from(&a, &b, &c);
    let q = JoinQuery::new(vec![
        FromItem::new("A", "a"),
        FromItem::new("B", "b"),
        FromItem::new("C", "c"),
    ])
    .with_predicate(col("a.y").eq(col("b.y")).and(col("b.z").eq(col("c.z"))));
    check_dist_differential(cat, &q);
}

/// Pinned regression seed: a shard enters `begin_drain` between the
/// driver gather and the first reduction. With replication 2 the
/// coordinator must ride through on the replicas — byte-identical
/// result, zero client-visible failures, failover observable in stats.
#[test]
fn distributed_drain_regression_seed() {
    let a: Vec<(i64, i64)> = (0..30).map(|i| (i, i % 4)).collect();
    let b: Vec<(i64, i64)> = (0..26).map(|i| (i % 6, i % 5)).collect();
    let c: Vec<i64> = (0..14).map(|i| i % 8).collect();
    let cat = chain_catalog_from(&a, &b, &c);
    let q = JoinQuery::new(vec![
        FromItem::new("A", "a"),
        FromItem::new("B", "b"),
        FromItem::new("C", "c"),
    ])
    .with_predicate(col("a.y").eq(col("b.y")).and(col("b.z").eq(col("c.z"))));
    let oracle = sorted(
        Database::with_catalog(cat.clone())
            .run_logical(&q.to_plan())
            .expect("oracle runs")
            .rows,
    );
    let (servers, mut coord) = dist_fixture(cat, 2);
    let servers = std::sync::Arc::new(servers);
    let drained = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let servers = servers.clone();
        let drained = drained.clone();
        coord.set_phase_hook(Box::new(move |phase| {
            if phase.starts_with("reduce:") && !drained.swap(true, Ordering::SeqCst) {
                servers[0].begin_drain();
            }
        }));
    }
    let got = coord
        .execute_with_config(
            &q,
            OptimizerConfig::default(),
            filterjoin::ShipStrategy::Semijoin,
        )
        .expect("drain mid-query must be invisible to the client");
    assert_eq!(sorted(got.result.rows), oracle);
    assert!(drained.load(Ordering::SeqCst), "the hook must have fired");
    assert!(got.stats.failovers > 0, "failover must actually happen");
}

// -------------------- tight-memory spilling differential ------------

/// Two string-padded join sides, each several times a 4-page executor's
/// memory, with duplicated keys on the probe side so the multiset
/// contract is load-bearing through partitioned spill files.
fn spill_catalog(n_rows: usize) -> Catalog {
    let table = |name: &str, key_mod: i64| {
        TableBuilder::new(name)
            .column("id", DataType::Int)
            .column("pad", DataType::Str)
            .rows((0..n_rows).map(move |i| {
                vec![
                    Value::Int(i as i64 % key_mod),
                    Value::Str(format!("{name}-pad-{i}")),
                ]
            }))
            .build()
            .expect("spill rows conform")
            .into_ref()
    };
    let mut cat = Catalog::new();
    // Every Fact key appears twice; Dim keys are unique.
    cat.add_table(table("Fact", (n_rows as i64 / 2).max(1)));
    cat.add_table(table("Dim", n_rows as i64));
    cat
}

fn spill_query() -> JoinQuery {
    JoinQuery::new(vec![FromItem::new("Fact", "f"), FromItem::new("Dim", "d")])
        .with_predicate(col("f.id").eq(col("d.id")))
}

/// Executor memory and materialization budget far below the working
/// set: the seed configuration (spilling off) provably kills the query.
fn tight_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        memory_pages: 4,
        memory_budget_pages: Some(5),
        ..ServiceConfig::default()
    }
}

/// Runs `q` through a tight-memory *spilling* service under every
/// optimizer configuration of the matrix and asserts each agrees with
/// the in-memory oracle; afterwards the spill directory must be empty
/// and the broker quiescent.
fn check_spilling_matrix(cat: Catalog, q: &JoinQuery, config: ServiceConfig) {
    let oracle = sorted(
        Database::with_catalog(cat.clone())
            .run_logical(&q.to_plan())
            .expect("oracle runs")
            .rows,
    );
    let service = QueryService::start(cat, config);
    for config in config_matrix() {
        let got = sorted(
            service
                .submit_with_config(q.clone(), config)
                .expect("submit")
                .wait()
                .expect("tight-memory spilling query runs")
                .rows,
        );
        assert_eq!(
            oracle, got,
            "tight-memory optimizer config diverged: {config:?}"
        );
    }
    assert!(
        service.metrics().spills > 0,
        "the tight-memory matrix must actually spill"
    );
    assert_eq!(
        service
            .spill_temp_store()
            .expect("spilling is on")
            .live_files_on_disk()
            .expect("spill dir readable"),
        0,
        "no spill file may outlive its query"
    );
    assert_eq!(
        service
            .memory_broker()
            .expect("spilling is on")
            .in_use_pages(),
        0,
        "every broker grant released"
    );
    service.shutdown();
}

/// The memory-pressure differential: at the seed configuration the
/// governor kills the workload join (the pressure is real); the same
/// configuration with spilling on must then agree with the in-memory
/// oracle across the whole optimizer config matrix.
#[test]
fn spilling_mode_matches_oracle_across_config_matrix() {
    let cat = spill_catalog(600);
    let q = spill_query();

    let control = QueryService::start(cat.clone(), tight_config());
    let err = control.execute(q.clone()).expect_err("control join");
    assert!(
        matches!(
            err,
            RuntimeError::Interrupted(InterruptReason::MemoryBudget)
        ),
        "control must die on MemoryBudget, got: {err}"
    );
    control.shutdown();

    check_spilling_matrix(
        cat,
        &q,
        ServiceConfig {
            spill_soft_watermark_pages: Some(8),
            ..tight_config()
        },
    );
}

/// Pinned regression seed: knob extremes at heavy key skew. One hot key
/// owns a block of rows on both sides — a grace partition that
/// repartitioning can never shrink — exercised once with the recursion
/// bound floored at 1 (immediate fallback for oversized partitions) and
/// once with a 1-page watermark (the broker denies everything, so every
/// operator spills). Both must agree with the oracle across the matrix.
#[test]
fn spill_skew_and_knob_extremes_regression_seed() {
    let skewed = |name: &str, hot: usize, base: i64| {
        TableBuilder::new(name)
            .column("id", DataType::Int)
            .column("pad", DataType::Str)
            .rows((0..600).map(move |i| {
                let id = if i < hot { 7 } else { base + i as i64 };
                vec![Value::Int(id), Value::Str(format!("{name}-pad-{i}"))]
            }))
            .build()
            .expect("skewed rows conform")
            .into_ref()
    };
    let mut cat = Catalog::new();
    cat.add_table(skewed("Fact", 80, 1_000));
    cat.add_table(skewed("Dim", 40, 5_000));
    let q = spill_query();

    check_spilling_matrix(
        cat.clone(),
        &q,
        ServiceConfig {
            spill_soft_watermark_pages: Some(8),
            spill_max_recursion_depth: 1,
            ..tight_config()
        },
    );
    check_spilling_matrix(
        cat,
        &q,
        ServiceConfig {
            spill_soft_watermark_pages: Some(1),
            ..tight_config()
        },
    );
}

// -------------------- star/snowflake shape differential -------------
//
// The bushy enumerator exists for these schemas: a fact table joined
// to K (filtered) dimensions, optionally snowflaked one level deeper.
// Every shape below runs the full feature matrix under BOTH
// enumerators against the untouched `run_logical` oracle, so a bushy
// plan that executes, lowers, or traces wrongly diverges immediately.

/// A star instance sized for differential testing (hundreds of fact
/// rows, tens of dimension rows) — `fj_bench`'s generator, which is
/// also what `reproduce bushy` measures at scale.
fn star_instance(
    dims: usize,
    fact_rows: usize,
    dim_rows: usize,
    seed: u64,
) -> (Catalog, JoinQuery) {
    fj_bench::workloads::star_selective(dims + 1, fact_rows, dim_rows, 15, seed)
}

/// A snowflake instance: `arms` dimension arms, each `Dim ⋈ σ(Sub)` —
/// connected subgraphs that exclude the fact, the canonical
/// bushy-only reduction shape.
fn snowflake_instance(
    arms: usize,
    fact_rows: usize,
    dim_rows: usize,
    seed: u64,
) -> (Catalog, JoinQuery) {
    fj_bench::workloads::snowflake(arms, fact_rows, dim_rows, (dim_rows / 2).max(4), 15, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Star queries (fact + K selective dimensions) over randomized
    /// sizes: the oracle and every (config, shape) pair agree.
    #[test]
    fn star_shape_differential(
        dims in 2usize..4,
        fact_rows in 50usize..300,
        dim_rows in 8usize..48,
        seed in 0u64..1_000,
    ) {
        let (cat, q) = star_instance(dims, fact_rows, dim_rows, seed);
        check_differential(&Database::with_catalog(cat), &q);
    }

    /// Snowflake queries (fact + arms of Dim ⋈ σ(Sub)) over randomized
    /// sizes: the oracle and every (config, shape) pair agree.
    #[test]
    fn snowflake_shape_differential(
        arms in 1usize..3,
        fact_rows in 50usize..300,
        dim_rows in 8usize..48,
        seed in 0u64..1_000,
    ) {
        let (cat, q) = snowflake_instance(arms, fact_rows, dim_rows, seed);
        check_differential(&Database::with_catalog(cat), &q);
    }
}

/// The star matrix through a disk-backed service with a 2-page buffer
/// pool: bushy plans must execute byte-identically when every page is
/// faulted in through the store, in both enumerator modes.
#[test]
fn star_disk_mode_matches_oracle_in_both_shapes() {
    let (cat, q) = star_instance(3, 240, 32, 7);
    let oracle = sorted(
        Database::with_catalog(cat.clone())
            .run_logical(&q.to_plan())
            .expect("oracle runs")
            .rows,
    );
    let dir = ScratchDir::new("star");
    let service = QueryService::start(cat, disk_config(&dir, 2));
    for config in shaped_matrix() {
        let got = sorted(
            service
                .submit_with_config(q.clone(), config)
                .expect("submit")
                .wait()
                .expect("disk-mode star query runs")
                .rows,
        );
        assert_eq!(oracle, got, "disk-mode star diverged: {config:?}");
    }
    service.shutdown();
}

/// The star and snowflake shapes through the 3-shard coordinator:
/// every (config, shape) pair and every shipping strategy must match
/// the oracle — the distributed path consumes bushy plans too.
#[test]
fn distributed_star_and_snowflake_match_oracle_in_both_shapes() {
    let (cat, q) = star_instance(2, 150, 24, 5);
    check_dist_differential(cat, &q);
    let (cat, q) = snowflake_instance(1, 150, 24, 5);
    check_dist_differential(cat, &q);
}

/// Pinned regression seed: a snowflake where the bushy winner is
/// *strictly* cheaper than the best left-deep plan (each arm's
/// `Dim ⋈ σ(Sub)` reduction pays for itself before the fact join).
/// The plans must still agree with the oracle across the matrix.
#[test]
fn bushy_strictly_cheaper_regression_seed() {
    let (cat, q) = fj_bench::workloads::snowflake(2, 500, 50, 25, 15, 13);
    let shared = std::sync::Arc::new(cat.clone());
    let ld = filterjoin::Optimizer::new(
        std::sync::Arc::clone(&shared),
        OptimizerConfig::default().with_shape(PlanShape::LeftDeep),
    )
    .optimize(&q)
    .expect("left-deep optimizes");
    let bushy = filterjoin::Optimizer::new(
        shared,
        OptimizerConfig::default().with_shape(PlanShape::Bushy),
    )
    .optimize(&q)
    .expect("bushy optimizes");
    assert!(
        bushy.cost < ld.cost,
        "bushy {} must be strictly cheaper than left-deep {}",
        bushy.cost,
        ld.cost
    );
    check_differential(&Database::with_catalog(cat), &q);
}

/// Pinned regression seed: a star where the shapes *tie* — the best
/// bushy plan is exactly the best left-deep chain, so enabling the
/// bushy enumerator must change neither the predicted cost nor the
/// answer. (Guards against the bushy frontier pruning the left-deep
/// optimum out of its own superset space.)
#[test]
fn shapes_tie_regression_seed() {
    for (cat, q) in [
        fj_bench::workloads::star_selective(4, 500, 50, 15, 11),
        (fixtures::paper_catalog(), fixtures::paper_query()),
    ] {
        let shared = std::sync::Arc::new(cat.clone());
        let ld = filterjoin::Optimizer::new(
            std::sync::Arc::clone(&shared),
            OptimizerConfig::default().with_shape(PlanShape::LeftDeep),
        )
        .optimize(&q)
        .expect("left-deep optimizes");
        let bushy = filterjoin::Optimizer::new(
            shared,
            OptimizerConfig::default().with_shape(PlanShape::Bushy),
        )
        .optimize(&q)
        .expect("bushy optimizes");
        assert!(
            (bushy.cost - ld.cost).abs() < 1e-9,
            "shapes must tie: bushy {} vs left-deep {}",
            bushy.cost,
            ld.cost
        );
        check_differential(&Database::with_catalog(cat), &q);
    }
}
