//! Differential plan-equivalence suite: the optimizer under *every*
//! feature configuration is tested against the naive `run_logical`
//! oracle on randomized instances. The oracle never touches the
//! optimizer — it lowers the logical plan directly — so any
//! disagreement is an optimizer or executor bug, not a shared one.
//! Traced executions ride along: the trace root must report exactly
//! the oracle's cardinality, pinning the observability layer to the
//! same oracle.

use filterjoin::{
    col, fixtures, lit, Catalog, DataType, Database, FromItem, JoinQuery, OptimizerConfig,
    TableBuilder, Tuple, Value,
};
use proptest::prelude::*;

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// Every optimizer feature combination worth distinguishing: all on,
/// all off, and each major feature toggled individually. Exhaustive
/// 2^6 would mostly re-test the same plans; these eight hit every
/// lowering path.
fn config_matrix() -> Vec<OptimizerConfig> {
    let all = OptimizerConfig::default();
    let mut configs = vec![all, OptimizerConfig::without_filter_join()];
    for toggle in 0..4 {
        let mut c = OptimizerConfig::default();
        match toggle {
            0 => c.enable_bloom = !c.enable_bloom,
            1 => c.enable_index_nl = !c.enable_index_nl,
            2 => c.enable_merge_join = !c.enable_merge_join,
            _ => c.filter_join_on_base = !c.filter_join_on_base,
        }
        configs.push(c);
    }
    let mut off = OptimizerConfig::without_filter_join();
    off.enable_bloom = false;
    off.enable_index_nl = false;
    off.enable_merge_join = false;
    configs.push(off);
    configs
}

/// Randomized Emp/Dept/DepAvgSal catalog (the paper's schema).
fn paper_catalog_from(emps: &[(i64, f64, i64)], n_depts: i64) -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("Emp")
            .column("eid", DataType::Int)
            .column("did", DataType::Int)
            .column("sal", DataType::Double)
            .column("age", DataType::Int)
            .rows(emps.iter().enumerate().map(|(i, (d, s, a))| {
                vec![
                    Value::Int(i as i64),
                    Value::Int(d % n_depts.max(1)),
                    Value::Double(*s),
                    Value::Int(*a),
                ]
            }))
            .build()
            .expect("emp rows conform")
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("Dept")
            .column("did", DataType::Int)
            .column("budget", DataType::Double)
            .rows((0..n_depts).map(|i| vec![Value::Int(i), Value::Double(1e5 + i as f64)]))
            .build()
            .expect("dept rows conform")
            .into_ref(),
    );
    fixtures::add_dep_avg_sal_view(&mut cat);
    cat
}

/// Oracle vs every configured optimizer, on one database and query:
/// row multisets identical, and the traced execution's root
/// cardinality equal to the oracle count.
fn check_differential(db: &Database, q: &JoinQuery) {
    let oracle = sorted(db.run_logical(&q.to_plan()).expect("oracle runs").rows);
    for config in config_matrix() {
        let got = sorted(
            db.execute_with_config(q, config)
                .expect("optimized plan runs")
                .rows,
        );
        assert_eq!(oracle, got, "optimizer config diverged: {config:?}");
    }
    let traced = db.execute_traced(q).expect("traced run");
    let trace = traced.trace.expect("traced run carries a trace");
    assert_eq!(trace.rows_out() as usize, oracle.len());
    assert_eq!(sorted(traced.rows), oracle);
}

/// Body of `paper_query_differential`, shared with the pinned seeds.
fn check_paper_query(emps: &[(i64, f64, i64)], n_depts: i64, age: i64) {
    let db = Database::with_catalog(paper_catalog_from(emps, n_depts));
    let q = JoinQuery::new(vec![
        FromItem::new("Emp", "E"),
        FromItem::new("Dept", "D"),
        FromItem::new("DepAvgSal", "V"),
    ])
    .with_predicate(
        col("E.did")
            .eq(col("D.did"))
            .and(col("E.did").eq(col("V.did")))
            .and(col("E.sal").gt(col("V.avgsal")))
            .and(col("E.age").lt(lit(age))),
    );
    check_differential(&db, &q);
}

/// Body of `two_table_join_differential`, shared with the pinned seeds.
fn check_two_table(left: &[(i64, i64)], right: &[i64], threshold: i64) {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("L")
            .column("k", DataType::Int)
            .column("v", DataType::Int)
            .rows(
                left.iter()
                    .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)]),
            )
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("R")
            .column("k", DataType::Int)
            .rows(right.iter().map(|&k| vec![Value::Int(k)]))
            .build()
            .unwrap()
            .into_ref(),
    );
    let db = Database::with_catalog(cat);
    let q = JoinQuery::new(vec![FromItem::new("L", "l"), FromItem::new("R", "r")])
        .with_predicate(col("l.k").eq(col("r.k")).and(col("l.v").ge(lit(threshold))));
    check_differential(&db, &q);
}

/// Body of `chain_join_differential`, shared with the pinned seeds.
fn check_chain(a: &[(i64, i64)], b: &[(i64, i64)], c: &[i64]) {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("A")
            .column("x", DataType::Int)
            .column("y", DataType::Int)
            .rows(a.iter().map(|(x, y)| vec![Value::Int(*x), Value::Int(*y)]))
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("B")
            .column("y", DataType::Int)
            .column("z", DataType::Int)
            .rows(b.iter().map(|(y, z)| vec![Value::Int(*y), Value::Int(*z)]))
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("C")
            .column("z", DataType::Int)
            .rows(c.iter().map(|&z| vec![Value::Int(z)]))
            .build()
            .unwrap()
            .into_ref(),
    );
    let db = Database::with_catalog(cat);
    let q = JoinQuery::new(vec![
        FromItem::new("A", "a"),
        FromItem::new("B", "b"),
        FromItem::new("C", "c"),
    ])
    .with_predicate(col("a.y").eq(col("b.y")).and(col("b.z").eq(col("c.z"))));
    check_differential(&db, &q);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The paper query over random instances: the oracle and every
    /// optimizer configuration agree, and the trace agrees with both.
    #[test]
    fn paper_query_differential(
        emps in prop::collection::vec((0i64..64, 500.0f64..9_000.0, 18i64..70), 1..50),
        n_depts in 4i64..10,
        age in 20i64..65,
    ) {
        check_paper_query(&emps, n_depts, age);
    }

    /// Two-table equi-join with a residual filter, arbitrary key
    /// distributions (duplicates, skew, empty sides).
    #[test]
    fn two_table_join_differential(
        left in prop::collection::vec((0i64..10, 0i64..50), 0..40),
        right in prop::collection::vec(0i64..10, 0..40),
        threshold in 0i64..50,
    ) {
        check_two_table(&left, &right, threshold);
    }

    /// Three-table chain join: the optimizer's join-order choices must
    /// never change the answer.
    #[test]
    fn chain_join_differential(
        a in prop::collection::vec((0i64..6, 0i64..6), 0..25),
        b in prop::collection::vec((0i64..6, 0i64..6), 0..25),
        c in prop::collection::vec(0i64..6, 0..25),
    ) {
        check_chain(&a, &b, &c);
    }
}

// The vendored proptest shim derives its byte stream from the test
// name and does not consult regression files, so interesting inputs
// are pinned as explicit deterministic replays below.

/// Empty-side joins: every config must agree on zero rows (and the
/// trace must report zero, not skip the node).
#[test]
fn empty_sides_regression_seed() {
    check_two_table(&[], &[0, 1, 2], 0);
    check_two_table(&[(1, 10), (2, 20)], &[], 0);
    check_chain(&[(0, 0)], &[], &[0]);
}

/// Heavy duplicates on both sides — the multiset (not set) contract:
/// 3×2 matches on one key must survive every join strategy.
#[test]
fn duplicate_keys_regression_seed() {
    check_two_table(&[(5, 1), (5, 2), (5, 3)], &[5, 5], 0);
    check_chain(&[(1, 1), (1, 1)], &[(1, 2), (1, 2)], &[2, 2]);
}

/// One department, every employee in it, threshold filtering none:
/// maximally skewed paper-query instance.
#[test]
fn skewed_paper_instance_regression_seed() {
    let emps: Vec<(i64, f64, i64)> = (0..30).map(|i| (0, 1000.0 + i as f64, 30)).collect();
    check_paper_query(&emps, 1, 64);
}

/// A filter threshold excluding every row: the restricted view is
/// empty but the plan shape still has every operator.
#[test]
fn all_filtered_regression_seed() {
    check_two_table(&[(1, 1), (2, 2)], &[1, 2], 49);
    let emps = [(0, 800.0, 69), (1, 900.0, 68)];
    check_paper_query(&emps, 4, 21);
}
