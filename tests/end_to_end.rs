//! End-to-end scenarios across crates: distributed joins, UDF
//! relations, Bloom variants, memory pressure, and the full
//! magic-rewriting loop from cost-based SIPS back to an executable
//! rewritten query.

use filterjoin::distsim::{reference_join, run_strategy, DistStrategy, TwoSiteScenario};
use filterjoin::{
    col, fixtures, lit, DataType, Database, FromItem, JoinQuery, NetworkModel, OptimizerConfig,
    Schema, TableBuilder, TableFunction, Tuple, Value,
};
use std::sync::Arc;

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

#[test]
fn chosen_sips_drives_an_equivalent_magic_rewrite() {
    // The loop the paper closes: the optimizer picks a Filter Join,
    // reports its SIPS, and that SIPS drives the *textual* magic
    // rewriting (Figure 2 road) to the same answer.
    let cat = fj_bench::workloads::emp_dept(fj_bench::workloads::EmpDeptConfig {
        n_emps: 4_000,
        n_depts: 400,
        frac_big: 0.05,
        ..Default::default()
    });
    let db = Database::with_catalog(cat);
    let q = fixtures::paper_query();
    let optimized = db.execute(&q).unwrap();
    assert!(
        !optimized.sips.is_empty(),
        "expected a filter join at this selectivity"
    );
    // A filter join whose inner is the view corresponds directly to a
    // magic rewriting of the query.
    if let Some(view_sips) = optimized.sips.iter().find(|s| s.inner == "V") {
        let rewritten = db.run_magic(&q, view_sips).unwrap();
        assert_eq!(sorted(rewritten.rows), sorted(optimized.rows.clone()));
    }
}

#[test]
fn distributed_two_site_join_all_strategies_and_optimizer() {
    let (orders, mut customers) = fj_bench::workloads::orders_customers(400, 4_000, 15, 5);
    customers.create_hash_index(0).unwrap();
    let scenario = TwoSiteScenario::new(
        orders.into_ref(),
        customers.into_ref(),
        "cust",
        "cust",
        NetworkModel::wan(),
    );
    let expected = reference_join(&scenario).unwrap();
    for s in DistStrategy::ALL {
        assert_eq!(
            run_strategy(&scenario, s).unwrap().rows,
            expected,
            "{} must agree",
            s.name()
        );
    }
    // The optimizer's own plan over the same catalog also agrees.
    let mut db = Database::with_catalog((*scenario.catalog).clone());
    db.set_network(NetworkModel::wan());
    let q = JoinQuery::new(vec![
        FromItem::new("Orders", "O"),
        FromItem::new("Customers", "C"),
    ])
    .with_predicate(col("O.cust").eq(col("C.cust")));
    let r = db.execute(&q).unwrap();
    assert_eq!(r.rows.len(), expected.len());
    assert!(!r.sips.is_empty(), "WAN should force the semi-join");
}

#[test]
fn udf_query_via_optimizer_matches_domain_join() {
    let mut db = Database::new();
    db.create_table(
        TableBuilder::new("Txn")
            .column("cust", DataType::Int)
            .rows((0..500i64).map(|i| vec![Value::Int(i % 20)]))
            .build()
            .unwrap(),
    );
    let schema =
        Schema::from_pairs(&[("cust", DataType::Int), ("score", DataType::Int)]).into_ref();
    let udf = TableFunction::new("score", schema, 1, 2.0, |args| {
        vec![vec![Value::Int(args[0].as_int().unwrap_or(0) * 10)]]
    })
    .with_domain((0..100i64).map(|i| vec![Value::Int(i)]).collect());
    db.create_udf("score", Arc::new(udf));

    let q = JoinQuery::new(vec![FromItem::new("Txn", "T"), FromItem::new("score", "S")])
        .with_predicate(col("T.cust").eq(col("S.cust")));
    let r = db.execute(&q).unwrap();
    assert_eq!(r.rows.len(), 500, "every txn matches its score row");
    // Each matched score is cust*10.
    for t in &r.rows {
        let cust = t.value(0).as_int().unwrap();
        let score = t.value(2).as_int().unwrap();
        assert_eq!(score, cust * 10);
    }
}

#[test]
fn udf_without_domain_requires_probeable_key() {
    let mut db = Database::new();
    db.create_table(
        TableBuilder::new("T")
            .column("k", DataType::Int)
            .row(vec![Value::Int(1)])
            .build()
            .unwrap(),
    );
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]).into_ref();
    db.create_udf(
        "f",
        Arc::new(TableFunction::new("f", schema, 1, 1.0, |args| {
            vec![vec![Value::Int(args[0].as_int().unwrap_or(0) + 1)]]
        })),
    );
    // With a key: plannable via probing.
    let q = JoinQuery::new(vec![FromItem::new("T", "t"), FromItem::new("f", "F")])
        .with_predicate(col("t.k").eq(col("F.k")));
    let r = db.execute(&q).unwrap();
    assert_eq!(r.rows.len(), 1);
    // Without a key: no finite plan exists (cross product with an
    // infinite relation).
    let q = JoinQuery::new(vec![FromItem::new("T", "t"), FromItem::new("f", "F")]);
    assert!(db.execute(&q).is_err());
}

#[test]
fn memory_pressure_changes_the_plan_landscape_not_the_answer() {
    let cat = fj_bench::workloads::emp_dept(fj_bench::workloads::EmpDeptConfig {
        n_emps: 6_000,
        n_depts: 300,
        frac_big: 0.2,
        ..Default::default()
    });
    let mut big = Database::with_catalog(cat.clone());
    big.set_memory_pages(4096);
    let mut small = Database::with_catalog(cat);
    small.set_memory_pages(4);
    let q = fixtures::paper_query();
    let a = big.execute(&q).unwrap();
    let b = small.execute(&q).unwrap();
    assert_eq!(sorted(a.rows), sorted(b.rows));
    assert!(
        b.measured_cost >= a.measured_cost,
        "tiny memory can only hurt: {} vs {}",
        b.measured_cost,
        a.measured_cost
    );
}

#[test]
fn selection_only_queries_work_through_the_whole_stack() {
    let db = Database::with_catalog(fixtures::paper_catalog());
    let q = JoinQuery::new(vec![FromItem::new("Emp", "E")])
        .with_predicate(col("E.sal").ge(lit(4_000)).and(col("E.age").lt(lit(30))))
        .with_projection(vec![(col("E.eid"), "eid".into())]);
    let r = db.execute(&q).unwrap();
    assert_eq!(
        sorted(r.rows),
        vec![
            Tuple::new(vec![Value::Int(1)]),
            Tuple::new(vec![Value::Int(3)]),
            Tuple::new(vec![Value::Int(5)]),
        ]
    );
}

#[test]
fn view_over_view_works_end_to_end() {
    // A view defined over another view: the engine must inline both
    // layers, the estimator must recurse, and the magic rewriting must
    // still preserve answers when filtering the outer view.
    use filterjoin::{AggCall, AggFunc, LogicalPlan, Schema, ViewDef};
    let mut db = Database::with_catalog(fixtures::paper_catalog());
    // HighPaid: departments whose average salary exceeds 3000 (over the
    // existing DepAvgSal view).
    db.create_view(ViewDef {
        name: "HighPaid".into(),
        plan: LogicalPlan::scan("DepAvgSal", "A")
            .select(col("A.avgsal").gt(lit(3_000)))
            .project(vec![
                (col("A.did"), "did".into()),
                (col("A.avgsal"), "avgsal".into()),
            ])
            .into_ref(),
        schema: Schema::from_pairs(&[
            ("did", filterjoin::DataType::Int),
            ("avgsal", filterjoin::DataType::Double),
        ])
        .into_ref(),
    });
    // And a second-level aggregate view over HighPaid.
    db.create_view(ViewDef {
        name: "HighPaidStats".into(),
        plan: LogicalPlan::scan("HighPaid", "H")
            .aggregate(
                vec!["H.did".into()],
                vec![AggCall::new(AggFunc::Max, "H.avgsal", "top")],
            )
            .project(vec![
                (col("H.did"), "did".into()),
                (col("top"), "top".into()),
            ])
            .into_ref(),
        schema: Schema::from_pairs(&[
            ("did", filterjoin::DataType::Int),
            ("top", filterjoin::DataType::Double),
        ])
        .into_ref(),
    });
    let q = JoinQuery::new(vec![
        FromItem::new("Emp", "E"),
        FromItem::new("HighPaidStats", "S"),
    ])
    .with_predicate(col("E.did").eq(col("S.did")))
    .with_projection(vec![
        (col("E.eid"), "eid".into()),
        (col("S.top"), "top".into()),
    ]);
    let naive = sorted(db.run_logical(&q.to_plan()).unwrap().rows);
    // Departments 10 (avg 5000) and 30 (avg 3000 — excluded, not > 3000)
    // and 20 (avg 5000): employees 1, 2, 3 qualify.
    assert_eq!(naive.len(), 3);
    let optimized = sorted(db.execute(&q).unwrap().rows);
    assert_eq!(naive, optimized);
    let sips = filterjoin::Sips::derive(db.catalog(), &q, &["E".to_string()], "S").unwrap();
    let magic = sorted(db.run_magic(&q, &sips).unwrap().rows);
    assert_eq!(naive, magic);
}

#[test]
fn bloom_variant_when_chosen_never_changes_answers() {
    // Force consideration of Bloom filter joins on a base-table inner
    // and check answers against the no-bloom configuration.
    let (orders, customers) = fj_bench::workloads::orders_customers(1_000, 20_000, 30, 9);
    let mut db = Database::new();
    db.create_table(orders);
    db.create_table(customers);
    db.set_memory_pages(8);
    let q = JoinQuery::new(vec![
        FromItem::new("Orders", "O"),
        FromItem::new("Customers", "C"),
    ])
    .with_predicate(col("O.cust").eq(col("C.cust")));
    let with_bloom = db.execute(&q).unwrap();
    let mut cfg = OptimizerConfig {
        enable_bloom: false,
        ..OptimizerConfig::default()
    };
    cfg.params.memory_pages = 8;
    let without = db.execute_with_config(&q, cfg).unwrap();
    assert_eq!(sorted(with_bloom.rows), sorted(without.rows));
}
