//! Lossy filter sets (§3.2, Appendix A): Bloom filters as a fixed-size
//! alternative to exact filter sets.
//!
//! Sweeps the Bloom filter size for a WAN semi-join and prints shipped
//! bytes, surviving inner tuples (false positives included), and total
//! cost next to the exact filter set — the compactness/selectivity
//! trade the paper describes.
//!
//! ```sh
//! cargo run --example bloom_filters
//! ```

use filterjoin::{BloomFilter, Value};

fn main() {
    // --- 1. The raw data structure: no false negatives, tunable false
    // positives.
    println!("BloomFilter basics (10_000 inserted keys):");
    for fp_target in [0.1, 0.01, 0.001] {
        let mut bloom = BloomFilter::with_capacity(10_000, fp_target);
        for i in 0..10_000 {
            bloom.insert(&Value::Int(i));
        }
        let false_negatives = (0..10_000)
            .filter(|&i| !bloom.contains(&Value::Int(i)))
            .count();
        let false_positives = (10_000..110_000)
            .filter(|&i| bloom.contains(&Value::Int(i)))
            .count();
        println!(
            "  target fp {:>6.3}: {:>7} bytes, measured fp {:.4}, false negatives {}",
            fp_target,
            bloom.byte_size(),
            false_positives as f64 / 100_000.0,
            false_negatives
        );
        assert_eq!(false_negatives, 0, "Bloom filters never lie about members");
    }

    // --- 2. The B1 experiment: exact vs lossy filter sets driving a
    // remote semi-join on a WAN.
    println!("\nWAN semi-join, 1_000 orders over 50 referenced customers of 20_000:");
    let outcomes = fj_bench::repro::bloom::sweep(1_000, 20_000, 50, &[256, 1024, 4096, 65_536]);
    println!(
        "  {:<14} {:>14} {:>10} {:>10}",
        "filter", "bytes shipped", "survivors", "cost"
    );
    for o in &outcomes {
        println!(
            "  {:<14} {:>14} {:>10} {:>10.1}",
            o.label, o.bytes_shipped, o.survivors, o.cost
        );
    }
    println!(
        "\ntiny filters saturate (false positives ship the whole table back);\n\
         big ones approach the exact set's selectivity at a fixed wire size"
    );
}
