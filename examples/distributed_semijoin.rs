//! The §5.1 scenario: joining a local table with a remote one, under
//! networks ranging from free to WAN. Prints each classical strategy's
//! measured cost and shows the cost-based optimizer switching from
//! fetch-inner (the System R* default) to the semi-join / Filter Join
//! (the SDD-1 default) as communication gets expensive.
//!
//! ```sh
//! cargo run --example distributed_semijoin
//! ```

use filterjoin::distsim::{reference_join, run_strategy, DistStrategy, TwoSiteScenario};
use filterjoin::{col, DataType, Database, FromItem, JoinQuery, NetworkModel, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Orders stay local; the big Customers table lives at site 1.
    // Only 40 customers are ever referenced — the semi-join's dream.
    let mut rng = StdRng::seed_from_u64(99);
    let orders = TableBuilder::new("Orders")
        .column("cust", DataType::Int)
        .column("amount", DataType::Double)
        .rows((0..1_000).map(|_| {
            vec![
                Value::Int(rng.gen_range(0..40)),
                Value::Double(rng.gen_range(1.0..900.0)),
            ]
        }))
        .build()
        .expect("Orders builds");
    let mut customers = TableBuilder::new("Customers")
        .column("cust", DataType::Int)
        .column("region", DataType::Int)
        .rows((0..20_000).map(|i| vec![Value::Int(i), Value::Int(rng.gen_range(0..10))]))
        .build()
        .expect("Customers builds");
    customers.create_hash_index(0).expect("index on cust");

    for (label, network) in [
        (
            "free network (R* assumption: local cost is all that matters)",
            NetworkModel::free(),
        ),
        ("LAN", NetworkModel::lan()),
        (
            "WAN (SDD-1 assumption: communication dominates)",
            NetworkModel::wan(),
        ),
    ] {
        let scenario = TwoSiteScenario::new(
            orders.clone_shallow(),
            customers.clone_shallow(),
            "cust",
            "cust",
            network,
        );
        println!("=== {label} ===");
        let expected = reference_join(&scenario).expect("reference join");
        for s in DistStrategy::ALL {
            let out = run_strategy(&scenario, s).expect("strategy runs");
            assert_eq!(out.rows, expected, "all strategies agree");
            println!(
                "  {:<22} cost {:>10.1}   shipped {:>9} B in {:>3} msgs",
                s.name(),
                out.cost,
                out.charges.bytes_shipped,
                out.charges.messages
            );
        }

        // What does the cost-based optimizer do?
        let mut db = Database::with_catalog((*scenario.catalog).clone());
        db.set_network(network);
        let q = JoinQuery::new(vec![
            FromItem::new("Orders", "O"),
            FromItem::new("Customers", "C"),
        ])
        .with_predicate(col("O.cust").eq(col("C.cust")));
        let plan = db.optimize(&q).expect("optimizes");
        println!(
            "  -> optimizer picks: {}\n",
            if plan.sips.is_empty() {
                "fetch inner (ship whole table)"
            } else {
                "filter join (ship filter set, restrict remotely)"
            }
        );
    }

    // The same scenario for real: three shard servers on loopback
    // ports, the tables hash-partitioned across them, and every
    // shipping strategy measured on the actual wire.
    println!("=== real wire: 3-shard partitioned execution (fj-dist) ===");
    let mut cat = filterjoin::Catalog::new();
    cat.add_table(orders.clone_shallow());
    cat.add_table(customers.clone_shallow());
    let servers: Vec<filterjoin::Server> = (0..3)
        .map(|_| {
            filterjoin::Server::bind(
                "127.0.0.1:0",
                filterjoin::Catalog::new(),
                filterjoin::ServerConfig::default(),
            )
            .expect("server binds")
        })
        .collect();
    let addrs: Vec<std::net::SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
    let coord = filterjoin::DistCoordinator::deploy(
        cat,
        filterjoin::ShardMap::new(&addrs, 3, 1),
        filterjoin::DistConfig::default(),
    )
    .expect("deploy scatters the partitions");
    println!(
        "  deploy: {} scatter messages, {} B on the wire",
        coord.deploy_stats.messages,
        coord.deploy_stats.total_bytes()
    );
    let q = JoinQuery::new(vec![
        FromItem::new("Orders", "O"),
        FromItem::new("Customers", "C"),
    ])
    .with_predicate(col("O.cust").eq(col("C.cust")));
    let mut expected_rows = None;
    for strategy in filterjoin::ShipStrategy::ALL {
        let out = coord
            .execute_with_config(&q, Default::default(), strategy)
            .expect("distributed run");
        let rows = out.result.rows.len();
        match expected_rows {
            None => expected_rows = Some(rows),
            Some(n) => assert_eq!(n, rows, "strategies must agree"),
        }
        println!(
            "  {:<15} {:>7} B shipped in {:>3} msgs -> {} rows",
            strategy.name(),
            out.stats.total_bytes(),
            out.stats.messages,
            rows
        );
    }
    let auto = coord.execute(&q).expect("auto run");
    println!(
        "  -> auto picks: {} (predicted {:.0} B, measured {} B)",
        auto.strategy.name(),
        auto.predicted.map(|p| p.bytes).unwrap_or(f64::NAN),
        auto.stats.total_bytes()
    );
}

/// The example reuses the same tables across scenarios; these helpers
/// paper over `Table` not being `Clone` (tables are immutable, so a
/// rebuild from rows is equivalent).
trait TableCloneExt {
    fn clone_shallow(&self) -> filterjoin::storage::TableRef;
}

impl TableCloneExt for filterjoin::Table {
    fn clone_shallow(&self) -> filterjoin::storage::TableRef {
        let mut t = filterjoin::Table::new(
            self.name().to_string(),
            (**self.schema()).clone(),
            self.rows().to_vec(),
        )
        .expect("rows already validated");
        // Preserve indexes on the copy.
        for i in 0..self.schema().arity() {
            if self.hash_index(i).is_some() {
                t.create_hash_index(i).expect("column exists");
            }
            if self.btree_index(i).is_some() {
                t.create_btree_index(i).expect("column exists");
            }
        }
        t.into_ref()
    }
}
