//! Quickstart: the paper's Figure 1 query, end to end.
//!
//! Builds the Emp/Dept schema and the `DepAvgSal` view, runs the
//! motivating query three ways (original, always-magic, cost-based),
//! and prints the optimizer's EXPLAIN — including, when a Filter Join
//! is chosen, the Table 1 cost breakdown and the SIPS that would drive
//! the textual magic rewriting.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use filterjoin::{
    col, fixtures, lit, AggCall, AggFunc, DataType, Database, FromItem, JoinQuery, LogicalPlan,
    Schema, Sips, TableBuilder, Value, ViewDef,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // ---- 1. Build the database of Figure 1, scaled up enough that the
    // cost differences are visible (2 000 employees, 200 departments, a
    // tenth of them "big").
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(7);
    db.create_table(
        TableBuilder::new("Dept")
            .column("did", DataType::Int)
            .column("budget", DataType::Double)
            .rows((0..200).map(|d| {
                let budget = if d < 20 { 250_000.0 } else { 50_000.0 };
                vec![Value::Int(d), Value::Double(budget)]
            }))
            .build()
            .expect("Dept builds"),
    );
    db.create_table(
        TableBuilder::new("Emp")
            .column("eid", DataType::Int)
            .column("did", DataType::Int)
            .column("sal", DataType::Double)
            .column("age", DataType::Int)
            .rows((0..2_000).map(|e| {
                vec![
                    Value::Int(e),
                    Value::Int(rng.gen_range(0..200)),
                    Value::Double(rng.gen_range(1_000.0..10_000.0)),
                    Value::Int(rng.gen_range(21..65)),
                ]
            }))
            .build()
            .expect("Emp builds"),
    );

    // CREATE VIEW DepAvgSal AS
    //   SELECT E.did, AVG(E.sal) AS avgsal FROM Emp E GROUP BY E.did;
    let view_plan = LogicalPlan::scan("Emp", "E")
        .aggregate(
            vec!["E.did".into()],
            vec![AggCall::new(AggFunc::Avg, "E.sal", "avgsal")],
        )
        .project(vec![
            (col("E.did"), "did".into()),
            (col("avgsal"), "avgsal".into()),
        ]);
    db.create_view(ViewDef {
        name: "DepAvgSal".into(),
        plan: view_plan.into_ref(),
        schema: Schema::from_pairs(&[("did", DataType::Int), ("avgsal", DataType::Double)])
            .into_ref(),
    });

    // ---- 2. The query of Figure 1 (built here by hand; the shared
    // fixture `fixtures::paper_query()` is identical).
    let query = JoinQuery::new(vec![
        FromItem::new("Emp", "E"),
        FromItem::new("Dept", "D"),
        FromItem::new("DepAvgSal", "V"),
    ])
    .with_predicate(
        col("E.did")
            .eq(col("D.did"))
            .and(col("E.did").eq(col("V.did")))
            .and(col("E.sal").gt(col("V.avgsal")))
            .and(col("E.age").lt(lit(30)))
            .and(col("D.budget").gt(lit(100_000))),
    )
    .with_projection(vec![
        (col("E.did"), "did".into()),
        (col("E.sal"), "sal".into()),
        (col("V.avgsal"), "avgsal".into()),
    ]);
    assert_eq!(query, fixtures::paper_query());

    // ---- 3. Three roads to the same answer.
    println!("--- original query (no magic) ---");
    let naive = db.run_logical(&query.to_plan()).expect("naive runs");
    println!(
        "rows: {}   measured cost: {:.1} page units\n",
        naive.rows.len(),
        naive.measured_cost
    );

    println!("--- always-magic (Figure 2 rewriting, production {{E, D}}) ---");
    let sips = Sips::derive(
        db.catalog(),
        &query,
        &["E".to_string(), "D".to_string()],
        "V",
    )
    .expect("E.did = V.did exists");
    let magic = db.run_magic(&query, &sips).expect("magic runs");
    println!(
        "rows: {}   measured cost: {:.1} page units\n",
        magic.rows.len(),
        magic.measured_cost
    );

    println!("the Figure 2 rewriting this SIPS induces, as SQL:\n");
    println!("{}", db.render_magic_sql(&query, &sips).expect("renders"));
    println!();

    println!("--- cost-based (this paper) ---");
    let best = db.execute(&query).expect("optimized runs");
    println!(
        "rows: {}   measured cost: {:.1} page units   estimated: {:.1}",
        best.rows.len(),
        best.measured_cost,
        best.estimated_cost.unwrap_or(f64::NAN)
    );
    println!("\n{}", db.explain(&query).expect("explains"));

    assert_eq!(naive.rows.len(), magic.rows.len());
    assert_eq!(naive.rows.len(), best.rows.len());
    println!("first answers:");
    for t in best.rows.iter().take(5) {
        println!("  {t}");
    }

    // ---- 4. EXPLAIN ANALYZE: the same plan, executed with
    // per-operator tracing — estimated vs actual rows and pages on
    // every node, with gross misestimates flagged.
    println!("\n--- EXPLAIN ANALYZE ---");
    println!("{}", db.explain_analyze(&query).expect("analyzes"));
}
