//! The `fj-net` subsystem end to end on a loopback socket: a TCP
//! server fronting the query service, clients with per-request
//! deadlines and optimizer overrides, load shedding under a tiny
//! queue, the STATS request, and a graceful drain. (This is the
//! README's network example, runnable.)
//!
//! ```sh
//! cargo run --example net_client
//! ```

use filterjoin::{fixtures, Client, NetError, QueryOptions, Server, ServerConfig, ServiceConfig};
use std::thread;
use std::time::Duration;

fn main() {
    // A server on an ephemeral port, deliberately easy to overload:
    // one worker draining a two-slot queue.
    let server = Server::bind(
        "127.0.0.1:0",
        fixtures::paper_catalog(),
        ServerConfig {
            service: ServiceConfig {
                workers: 1,
                queue_capacity: 2,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    println!("serving on {addr}");

    // One query, plain: rows plus the per-query runtime snapshot the
    // server measured (latency, plan-cache hit, measured cost).
    let mut client = Client::connect(addr).unwrap();
    let reply = client.query(&fixtures::paper_query()).unwrap();
    println!(
        "reply: {} rows, {} µs server-side, cache_hit={}, cost {:.1}",
        reply.rows.len(),
        reply.latency_micros,
        reply.cache_hit,
        reply.measured_cost
    );

    // The same query with per-request knobs: a deadline the server
    // enforces, and an optimizer override that disables the Filter
    // Join for this request only — same rows either way.
    let opts = QueryOptions {
        deadline: Some(Duration::from_secs(5)),
        config: Some(filterjoin::OptimizerConfig::without_filter_join()),
    };
    let overridden = client.query_with(&fixtures::paper_query(), &opts).unwrap();
    assert_eq!(overridden.rows.len(), reply.rows.len());
    println!(
        "override reply: {} rows (plan differs, answer doesn't)",
        overridden.rows.len()
    );

    // A burst from many clients overruns the queue; the server answers
    // typed, retryable SHED errors instead of hanging anyone.
    let handles: Vec<_> = (0..8)
        .map(|_| {
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                match c.query(&fixtures::paper_query()) {
                    Ok(_) => "ok",
                    Err(e) if e.is_retryable() => "shed (retryable)",
                    Err(NetError::Remote { .. }) => "other remote error",
                    Err(_) => "transport error",
                }
            })
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        println!("burst client {i}: {}", h.join().unwrap());
    }

    // Server-side observability: counters + runtime metrics as one
    // stable-key JSON line, over the wire.
    println!("stats: {}", client.stats_json().unwrap());

    // Graceful drain: stop accepting, finish everything accepted,
    // close. New connections are refused afterwards.
    server.shutdown();
    assert!(Client::connect(addr).is_err());
    println!("drained and closed");
}
