//! The `fj-net` subsystem end to end on a loopback socket: a TCP
//! server fronting the query service, clients with per-request
//! deadlines and optimizer overrides, mid-flight cancellation, load
//! shedding answered by retry-with-backoff, the STATS request, and a
//! graceful drain — then the `fj-cluster` tier: three replicas behind
//! one cluster client, with health probes, a hard kill, a drain, and
//! failover hiding both. (This is the README's network example,
//! runnable.)
//!
//! ```sh
//! cargo run --example net_client
//! ```

use filterjoin::{
    fixtures, Client, ClusterClient, ClusterConfig, ErrorCode, NetError, QueryOptions, RetryPolicy,
    Server, ServerConfig, ServiceConfig,
};
use std::thread;
use std::time::Duration;

fn main() {
    // A server on an ephemeral port, deliberately easy to overload:
    // one worker draining a two-slot queue.
    let server = Server::bind(
        "127.0.0.1:0",
        fixtures::paper_catalog(),
        ServerConfig {
            service: ServiceConfig {
                workers: 1,
                queue_capacity: 2,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    println!("serving on {addr}");

    // One query, plain: rows plus the per-query runtime snapshot the
    // server measured (latency, plan-cache hit, measured cost).
    let mut client = Client::connect(addr).unwrap();
    let reply = client.query(&fixtures::paper_query()).unwrap();
    println!(
        "reply: {} rows, {} µs server-side, cache_hit={}, cost {:.1}",
        reply.rows.len(),
        reply.latency_micros,
        reply.cache_hit,
        reply.measured_cost
    );

    // The same query with per-request knobs: a deadline the server
    // enforces, and an optimizer override that disables the Filter
    // Join for this request only — same rows either way.
    let opts = QueryOptions {
        deadline: Some(Duration::from_secs(5)),
        config: Some(filterjoin::OptimizerConfig::without_filter_join()),
        want_trace: false,
    };
    let overridden = client.query_with(&fixtures::paper_query(), &opts).unwrap();
    assert_eq!(overridden.rows.len(), reply.rows.len());
    println!(
        "override reply: {} rows (plan differs, answer doesn't)",
        overridden.rows.len()
    );

    // Tracing over the wire: set `want_trace` and the server executes
    // with per-operator tracing on, sending the trace back in its own
    // TRACE_REPLY frame right after the RESULT (the result bytes stay
    // replica-comparable). The trace root's cardinality always equals
    // the rows you got.
    let traced = client
        .query_with(
            &fixtures::paper_query(),
            &QueryOptions {
                want_trace: true,
                ..QueryOptions::default()
            },
        )
        .unwrap();
    let trace = traced.trace.expect("requested trace arrives");
    assert_eq!(trace.rows_out() as usize, traced.rows.len());
    println!(
        "traced reply: {} rows, {} operators, {} µs traced wall time",
        traced.rows.len(),
        trace.node_count(),
        trace.total_wall_micros
    );

    // Cancellation: a `Canceller` is a cheap clone of the connection's
    // socket, so a second thread can tear down whatever query the
    // client has in flight. The server trips the query's interrupt,
    // the worker stops within a bounded number of tuples, and the
    // client gets a typed CANCELLED reply (or the result, if the
    // query won the race — both are fine).
    let mut canceller = client.canceller().unwrap();
    let killer = thread::spawn(move || {
        thread::sleep(Duration::from_micros(200));
        canceller.cancel().unwrap();
    });
    let slow = QueryOptions {
        deadline: None,
        config: Some(filterjoin::OptimizerConfig::without_filter_join()),
        want_trace: false,
    };
    match client.query_with(&fixtures::paper_query(), &slow) {
        Ok(r) => println!("cancel lost the race: {} rows", r.rows.len()),
        Err(NetError::Remote {
            code: ErrorCode::Cancelled,
            ..
        }) => {
            println!("query cancelled mid-flight; connection stays usable")
        }
        Err(e) => panic!("unexpected: {e}"),
    }
    killer.join().unwrap();

    // A burst from many clients overruns the queue; the server answers
    // typed, retryable SHED errors. `query_with_retry` rides them out
    // with seeded exponential backoff (decorrelated jitter), so every
    // burst client eventually gets its rows.
    let handles: Vec<_> = (0..8)
        .map(|i| {
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let policy = RetryPolicy {
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(100),
                    max_attempts: 100,
                    seed: i as u64,
                };
                match c.query_with_retry(
                    &fixtures::paper_query(),
                    &QueryOptions::default(),
                    &policy,
                ) {
                    Ok(_) => "ok (after any retries)",
                    Err(e) if e.is_retryable() => "still shed after retries",
                    Err(NetError::Remote { .. }) => "other remote error",
                    Err(_) => "transport error",
                }
            })
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        println!("burst client {i}: {}", h.join().unwrap());
    }

    // Server-side observability: counters + runtime metrics as one
    // stable-key JSON line, over the wire.
    println!("stats: {}", client.stats_json().unwrap());

    // Graceful drain: stop accepting, finish everything accepted,
    // close. New connections are refused afterwards.
    server.shutdown();
    assert!(Client::connect(addr).is_err());
    println!("drained and closed");

    // ---- The replica tier -------------------------------------------
    //
    // Three replicas of the same catalog behind one `ClusterClient`.
    // A background prober classifies each replica from its HEALTH
    // frame (ready / degraded / draining / dead); queries round-robin
    // across the healthiest tier, fail over on transport and
    // shed/shutdown errors under a shared retry budget, and each
    // replica sits behind its own circuit breaker.
    let replicas: Vec<Server> = (0..3)
        .map(|_| {
            Server::bind(
                "127.0.0.1:0",
                fixtures::paper_catalog(),
                ServerConfig::default(),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<_> = replicas.iter().map(Server::local_addr).collect();
    let cluster = ClusterClient::connect(
        &addrs,
        ClusterConfig {
            probe_interval: Duration::from_millis(10),
            ..ClusterConfig::default()
        },
    )
    .unwrap();
    for _ in 0..6 {
        let r = cluster.query(&fixtures::paper_query()).unwrap();
        assert_eq!(r.rows.len(), 2);
    }
    println!("cluster: 6 queries spread over 3 replicas");

    // Kill one replica outright and drain another: the next probe
    // round marks them dead/draining, routing skips them, and queries
    // keep succeeding against the survivor — the client never sees
    // either event.
    let mut it = replicas.into_iter();
    let (a, b, c) = (it.next().unwrap(), it.next().unwrap(), it.next().unwrap());
    c.abort(); // crash
    a.begin_drain(); // planned maintenance
    cluster.probe_now();
    for _ in 0..4 {
        let r = cluster.query(&fixtures::paper_query()).unwrap();
        assert_eq!(r.rows.len(), 2);
    }
    println!(
        "cluster: rode out a crash and a drain; stats: {}",
        cluster.stats().to_json()
    );

    cluster.shutdown();
    a.shutdown();
    b.shutdown();
}
