//! A decision-support workload with multiple views — the setting the
//! paper's introduction motivates ("complex decision-support queries,
//! usually involving views and table expressions").
//!
//! Schema: a retail star with `Sales`, `Stores`, `Products`, plus two
//! views (`StoreRevenue`, `ProductStats`). Three analyst queries join
//! base tables with the views; for each we show the optimizer's join
//! order, whether it chose Filter Joins (and with which SIPS), and the
//! measured cost against the never-magic baseline.
//!
//! ```sh
//! cargo run --example decision_support
//! ```

use filterjoin::{
    col, lit, AggCall, AggFunc, DataType, Database, FromItem, JoinQuery, LogicalPlan,
    OptimizerConfig, Schema, TableBuilder, Value, ViewDef,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_SALES: usize = 30_000;
const N_STORES: usize = 500;
const N_PRODUCTS: usize = 1_000;

fn build_database() -> Database {
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(2026);

    db.create_table(
        TableBuilder::new("Stores")
            .column("sid", DataType::Int)
            .column("region", DataType::Int)
            .column("sqft", DataType::Int)
            .rows((0..N_STORES).map(|s| {
                vec![
                    Value::Int(s as i64),
                    Value::Int(rng.gen_range(0..12)),
                    Value::Int(rng.gen_range(2_000..30_000)),
                ]
            }))
            .build()
            .expect("Stores builds"),
    );
    db.create_table(
        TableBuilder::new("Products")
            .column("pid", DataType::Int)
            .column("category", DataType::Int)
            .column("price", DataType::Double)
            .rows((0..N_PRODUCTS).map(|p| {
                vec![
                    Value::Int(p as i64),
                    Value::Int(rng.gen_range(0..25)),
                    Value::Double(rng.gen_range(1.0..500.0)),
                ]
            }))
            .build()
            .expect("Products builds"),
    );
    db.create_table(
        TableBuilder::new("Sales")
            .column("sid", DataType::Int)
            .column("pid", DataType::Int)
            .column("qty", DataType::Int)
            .column("total", DataType::Double)
            .rows((0..N_SALES).map(|_| {
                vec![
                    Value::Int(rng.gen_range(0..N_STORES) as i64),
                    Value::Int(rng.gen_range(0..N_PRODUCTS) as i64),
                    Value::Int(rng.gen_range(1..10)),
                    Value::Double(rng.gen_range(5.0..2_500.0)),
                ]
            }))
            .build()
            .expect("Sales builds"),
    );

    // CREATE VIEW StoreRevenue AS
    //   SELECT S.sid, SUM(S.total) AS revenue, COUNT(*) AS n
    //   FROM Sales S GROUP BY S.sid;
    db.create_view(ViewDef {
        name: "StoreRevenue".into(),
        plan: LogicalPlan::scan("Sales", "S")
            .aggregate(
                vec!["S.sid".into()],
                vec![
                    AggCall::new(AggFunc::Sum, "S.total", "revenue"),
                    AggCall::count_star("n"),
                ],
            )
            .project(vec![
                (col("S.sid"), "sid".into()),
                (col("revenue"), "revenue".into()),
                (col("n"), "n".into()),
            ])
            .into_ref(),
        schema: Schema::from_pairs(&[
            ("sid", DataType::Int),
            ("revenue", DataType::Double),
            ("n", DataType::Int),
        ])
        .into_ref(),
    });

    // CREATE VIEW ProductStats AS
    //   SELECT S.pid, AVG(S.qty) AS avgqty, MAX(S.total) AS maxtotal
    //   FROM Sales S GROUP BY S.pid;
    db.create_view(ViewDef {
        name: "ProductStats".into(),
        plan: LogicalPlan::scan("Sales", "S")
            .aggregate(
                vec!["S.pid".into()],
                vec![
                    AggCall::new(AggFunc::Avg, "S.qty", "avgqty"),
                    AggCall::new(AggFunc::Max, "S.total", "maxtotal"),
                ],
            )
            .project(vec![
                (col("S.pid"), "pid".into()),
                (col("avgqty"), "avgqty".into()),
                (col("maxtotal"), "maxtotal".into()),
            ])
            .into_ref(),
        schema: Schema::from_pairs(&[
            ("pid", DataType::Int),
            ("avgqty", DataType::Double),
            ("maxtotal", DataType::Double),
        ])
        .into_ref(),
    });
    db
}

fn analyst_queries() -> Vec<(&'static str, JoinQuery)> {
    vec![
        (
            // Revenue of the huge stores in region 3: a very selective
            // production set filtering StoreRevenue — magic should win.
            "Q1: revenue of huge region-3 stores",
            JoinQuery::new(vec![
                FromItem::new("Stores", "St"),
                FromItem::new("StoreRevenue", "R"),
            ])
            .with_predicate(
                col("St.sid")
                    .eq(col("R.sid"))
                    .and(col("St.region").eq(lit(3)))
                    .and(col("St.sqft").gt(lit(25_000))),
            )
            .with_projection(vec![
                (col("St.sid"), "sid".into()),
                (col("R.revenue"), "revenue".into()),
            ]),
        ),
        (
            // Every store's revenue: no selectivity, magic should lose.
            "Q2: revenue of every store",
            JoinQuery::new(vec![
                FromItem::new("Stores", "St"),
                FromItem::new("StoreRevenue", "R"),
            ])
            .with_predicate(col("St.sid").eq(col("R.sid")))
            .with_projection(vec![
                (col("St.sid"), "sid".into()),
                (col("R.revenue"), "revenue".into()),
            ]),
        ),
        (
            // Two views at once: expensive category-0 products that
            // outsell their average in huge stores.
            "Q3: two views, selective on both sides",
            JoinQuery::new(vec![
                FromItem::new("Sales", "S"),
                FromItem::new("Products", "P"),
                FromItem::new("ProductStats", "PS"),
                FromItem::new("StoreRevenue", "R"),
            ])
            .with_predicate(
                col("S.pid")
                    .eq(col("P.pid"))
                    .and(col("S.pid").eq(col("PS.pid")))
                    .and(col("S.sid").eq(col("R.sid")))
                    .and(col("P.category").eq(lit(0)))
                    .and(col("P.price").gt(lit(450)))
                    .and(col("S.qty").gt(col("PS.avgqty"))),
            )
            .with_projection(vec![
                (col("S.sid"), "sid".into()),
                (col("S.pid"), "pid".into()),
                (col("R.revenue"), "revenue".into()),
            ]),
        ),
    ]
}

fn main() {
    let db = build_database();
    println!("retail star: {N_SALES} sales, {N_STORES} stores, {N_PRODUCTS} products, 2 views\n");

    for (name, q) in analyst_queries() {
        let best = db.execute(&q).expect("query optimizes and runs");
        let baseline = db
            .execute_with_config(&q, OptimizerConfig::without_filter_join())
            .expect("baseline runs");
        assert_eq!(
            {
                let mut a = best.rows.clone();
                a.sort();
                a
            },
            {
                let mut b = baseline.rows.clone();
                b.sort();
                b
            },
            "both plans must agree"
        );

        println!("=== {name} ===");
        println!("rows: {}", best.rows.len());
        println!("join order: {}", best.order.join(" -> "));
        if best.sips.is_empty() {
            println!("filter joins: none (magic not worth it here)");
        } else {
            for s in &best.sips {
                println!(
                    "filter join: {{{}}} -> {}",
                    s.production.join(", "),
                    s.inner
                );
            }
        }
        println!(
            "measured cost: {:.1}   never-magic baseline: {:.1}   ({:.0}% of baseline)\n",
            best.measured_cost,
            baseline.measured_cost,
            100.0 * best.measured_cost / baseline.measured_cost
        );
    }
}
