//! Turning the paper's knobs: what each design decision of §3.3–§4.2
//! buys.
//!
//! Runs the motivating query on one instance under several optimizer
//! configurations and prints estimated cost, measured cost, and the
//! number of join alternatives the enumerator had to price:
//!
//! * the full default (Filter Join on, Limitations 1–3 applied);
//! * Filter Join disabled (the traditional optimizer);
//! * Bloom variants disabled;
//! * the Limitation-2 ablation (prefix production sets) — better plans
//!   never, more enumeration work always;
//! * equivalence classes 2 vs 16 (the Figure 5 knob).
//!
//! ```sh
//! cargo run --example ablation
//! ```

use filterjoin::{fixtures, Database, OptimizerConfig};

fn main() {
    let cat = fj_bench::workloads::emp_dept(fj_bench::workloads::EmpDeptConfig {
        n_emps: 10_000,
        n_depts: 1_000,
        frac_big: 0.05,
        ..Default::default()
    });
    let db = Database::with_catalog(cat);
    let q = fixtures::paper_query();

    let configs: Vec<(&str, OptimizerConfig)> = vec![
        ("default (paper)", OptimizerConfig::default()),
        ("filter join OFF", OptimizerConfig::without_filter_join()),
        (
            "bloom OFF",
            OptimizerConfig {
                enable_bloom: false,
                ..OptimizerConfig::default()
            },
        ),
        (
            "limitation-2 ablation (prefix productions)",
            OptimizerConfig {
                allow_prefix_production: true,
                ..OptimizerConfig::default()
            },
        ),
        (
            "2 equivalence classes",
            OptimizerConfig {
                eq_classes: 2,
                ..OptimizerConfig::default()
            },
        ),
        (
            "16 equivalence classes",
            OptimizerConfig {
                eq_classes: 16,
                ..OptimizerConfig::default()
            },
        ),
    ];

    println!(
        "{:<44} {:>10} {:>10} {:>8} {:>7} {:>6}",
        "configuration", "est. cost", "measured", "plans", "nested", "magic?"
    );
    println!("{}", "-".repeat(90));
    let mut reference: Option<usize> = None;
    for (name, cfg) in configs {
        let plan = {
            let mut d = db.clone();
            *d.config_mut() = cfg;
            d.optimize(&q).expect("optimizes")
        };
        let result = db.execute_with_config(&q, cfg).expect("runs");
        match reference {
            None => reference = Some(result.rows.len()),
            Some(n) => assert_eq!(n, result.rows.len(), "every config agrees on the answer"),
        }
        println!(
            "{:<44} {:>10.1} {:>10.1} {:>8} {:>7} {:>6}",
            name,
            plan.cost,
            result.measured_cost,
            plan.plans_considered,
            plan.nested_invocations,
            if plan.sips.is_empty() { "no" } else { "yes" }
        );
    }
    println!(
        "\nnotes: the prefix ablation prices more candidates for (at best) the same plan;\n\
         fewer equivalence classes save nested estimator calls at the cost of accuracy"
    );
}
