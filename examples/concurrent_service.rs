//! The `fj-runtime` query service end to end: a worker pool answering
//! a burst of Figure-1 queries concurrently, with the plan cache and
//! runtime metrics doing their jobs. (This is the README's runtime
//! example, runnable.)

use filterjoin::{fixtures, Database, QueryService, ServiceConfig};

fn main() {
    // Serial reference answer first, from the plain facade.
    let db = Database::with_catalog(fixtures::paper_catalog());
    let serial = db.execute(&fixtures::paper_query()).unwrap();
    println!(
        "serial reference: {} rows, measured cost {:.1}",
        serial.rows.len(),
        serial.measured_cost
    );

    // The same catalog behind a 4-worker service with a bounded queue.
    let service = QueryService::start(
        fixtures::paper_catalog(),
        ServiceConfig {
            workers: 4,
            queue_capacity: 8,
            intra_query_threads: 2,
            ..ServiceConfig::default()
        },
    );
    let tickets: Vec<_> = (0..16)
        .map(|_| service.submit(fixtures::paper_query()).unwrap())
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        let r = t.wait().unwrap();
        assert_eq!(r.rows.len(), serial.rows.len(), "concurrent == serial");
        if i < 3 {
            println!(
                "query {i}: {} rows in {} µs (cached plan: {})",
                r.rows.len(),
                r.latency_micros,
                r.cache_hit
            );
        }
    }

    let m = service.metrics();
    println!(
        "{} queries answered, {:.0}% plan-cache hits, p50 ≤ {} µs, {:.0} q/s",
        m.completed,
        100.0 * m.cache_hit_rate,
        m.latency.quantile_micros(0.5),
        m.throughput_qps
    );

    // Installing a new catalog snapshot invalidates every cached plan.
    service.install_catalog(fixtures::paper_catalog());
    let r = service.execute(fixtures::paper_query()).unwrap();
    println!(
        "after install_catalog: cached plan: {} (cache was cleared)",
        r.cache_hit
    );
    assert!(!r.cache_hit);

    service.shutdown();
}
