//! §5.2: user-defined relations — a credit-score function joined to a
//! skewed transaction table.
//!
//! Shows the three execution disciplines of Figure 6's last column:
//! raw repeated probing, function caching (memoing), and the Filter
//! Join ("consecutive procedure calls" over the distinct filter set —
//! *no duplicate invocations*), with actual invocation counts. Also
//! demonstrates the cost-based optimizer planning a query over the UDF
//! relation via `Database::execute`.
//!
//! ```sh
//! cargo run --example udf_join
//! ```

use filterjoin::{
    col, CountingUdf, DataType, Database, FromItem, JoinQuery, MemoUdf, Schema, TableBuilder,
    TableFunction, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const N_TXNS: usize = 5_000;
const N_CUSTS: i64 = 100;

/// credit_score(cust) -> score: an "expensive" function (3 page-units
/// per call — think of a remote service or a heavyweight model).
fn credit_score() -> TableFunction {
    let schema =
        Schema::from_pairs(&[("cust", DataType::Int), ("score", DataType::Int)]).into_ref();
    TableFunction::new("credit_score", schema, 1, 3.0, |args| {
        let c = args[0].as_int().unwrap_or(0);
        vec![vec![Value::Int(300 + (c * 7919) % 550)]]
    })
    .with_domain((0..N_CUSTS).map(|i| vec![Value::Int(i)]).collect())
}

fn build_db(udf: Arc<dyn filterjoin::UdfRelation>) -> Database {
    let mut rng = StdRng::seed_from_u64(4);
    let mut db = Database::new();
    db.create_table(
        TableBuilder::new("Txn")
            .column("cust", DataType::Int)
            .column("amount", DataType::Double)
            .rows((0..N_TXNS).map(|_| {
                vec![
                    Value::Int(rng.gen_range(0..N_CUSTS)),
                    Value::Double(rng.gen_range(1.0..500.0)),
                ]
            }))
            .build()
            .expect("Txn builds"),
    );
    db.create_udf("credit_score", udf);
    db
}

fn main() {
    println!(
        "{N_TXNS} transactions over {N_CUSTS} customers; credit_score costs 3 page-units/call\n"
    );

    // The query: every transaction with its customer's credit score.
    let query = JoinQuery::new(vec![
        FromItem::new("Txn", "T"),
        FromItem::new("credit_score", "C"),
    ])
    .with_predicate(col("T.cust").eq(col("C.cust")))
    .with_projection(vec![
        (col("T.cust"), "cust".into()),
        (col("T.amount"), "amount".into()),
        (col("C.score"), "score".into()),
    ]);

    // --- 1. Raw function: the optimizer plans the join itself.
    let counting = Arc::new(CountingUdf::new(credit_score()));
    let db = build_db(Arc::clone(&counting) as Arc<dyn filterjoin::UdfRelation>);
    let result = db.execute(&query).expect("optimizes and runs");
    println!("cost-based plan over the raw function:");
    println!("  join order: {}", result.order.join(" -> "));
    println!(
        "  filter join: {}",
        if result.sips.is_empty() { "no" } else { "yes" }
    );
    println!(
        "  rows: {}   invocations: {}   measured cost: {:.1}\n",
        result.rows.len(),
        counting.calls(),
        result.measured_cost
    );

    // --- 2. Same query with a memoized function.
    let memo_counting = Arc::new(CountingUdf::new(credit_score()));
    struct Shared(Arc<CountingUdf<TableFunction>>);
    impl std::fmt::Debug for Shared {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Shared")
        }
    }
    impl filterjoin::UdfRelation for Shared {
        fn schema(&self) -> filterjoin::storage::SchemaRef {
            self.0.schema()
        }
        fn arg_count(&self) -> usize {
            self.0.arg_count()
        }
        fn invoke(
            &self,
            args: &[Value],
            ledger: &filterjoin::CostLedger,
        ) -> Vec<filterjoin::Tuple> {
            self.0.invoke(args, ledger)
        }
        fn invocation_cost(&self) -> f64 {
            self.0.invocation_cost()
        }
        fn domain(&self) -> Option<Vec<Vec<Value>>> {
            self.0.domain()
        }
    }
    let memo = Arc::new(MemoUdf::new(Shared(Arc::clone(&memo_counting))));
    let db = build_db(memo);
    let result = db.execute(&query).expect("optimizes and runs");
    println!("same plan with function caching (memoing):");
    println!(
        "  rows: {}   underlying invocations: {}   measured cost: {:.1}\n",
        result.rows.len(),
        memo_counting.calls(),
        result.measured_cost
    );

    println!(
        "the filter join / memo both collapse {} probes to {} distinct invocations — \
         the paper's \"no duplicate function invocations\" (§5.2)",
        N_TXNS, N_CUSTS
    );
}
