//! # filterjoin
//!
//! A complete, from-scratch reproduction of **"Filter Joins: Cost-Based
//! Optimization for Magic Sets"** (Seshadri, Hellerstein, Ramakrishnan;
//! TR #1273, 1995 — published at SIGMOD 1996 as *"Cost-Based
//! Optimization for Magic: Algebra and Implementation"*).
//!
//! This umbrella crate re-exports the full engine stack; see
//! [`fj_core`] for the primary API ([`Database`]), `README.md` for the
//! tour, `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for
//! the paper-vs-measured record of every reproduced figure and table.
//!
//! ```
//! use filterjoin::{fixtures, Database};
//!
//! let db = Database::with_catalog(fixtures::paper_catalog());
//! let result = db.execute(&fixtures::paper_query()).unwrap();
//! assert_eq!(result.rows.len(), 2);
//! ```

pub use fj_core::*;

/// The concurrent query-service runtime: worker pool, plan cache,
/// intra-query parallelism, cooperative cancellation, worker
/// self-healing, metrics, the disk-backed storage mode, the crash-safe
/// mutation path (WAL page deltas + fuzzy checkpoints), and graceful
/// degradation under memory pressure (memory broker + spilling
/// operators through a fault-injectable temp store). See
/// [`fj_runtime`].
pub use fj_runtime;
pub use fj_runtime::{
    CheckpointPhase, FaultPlan, Interrupt, InterruptReason, MemoryBroker, MemoryGrant, Mutation,
    MutationStats, MutationTicket, QueryService, RecoveryReport, RuntimeError, RuntimeMetrics,
    ServiceConfig, StorageMode, Store, StoreStats, TempStore, TempStoreStats,
};

/// The network boundary: TCP query server + blocking client over a
/// versioned binary wire protocol, with deadlines, cancellation, load
/// shedding, retry with backoff, and graceful drain. See [`fj_net`].
pub use fj_net;
pub use fj_net::{
    Canceller, Client, ErrorCode, NetError, QueryOptions, RetryBudget, RetryPolicy, Server,
    ServerConfig,
};

/// The replica tier: a cluster client fronting several servers with
/// health probes, per-replica circuit breakers, failover under a shared
/// retry budget, and hedged requests. See [`fj_cluster`].
pub use fj_cluster;
pub use fj_cluster::{
    BreakerConfig, CancelToken, CircuitBreaker, ClusterClient, ClusterConfig, ClusterError,
    ClusterStats, HedgeConfig, ReplicaHealth, ShardMap,
};

/// Partitioned distributed execution: a coordinator that
/// hash-partitions base tables over `fj-net` shards, reduces them per
/// query with costed shipping strategies (fetch-matches, semijoin
/// programs, Bloom filters, a Yannakakis full reducer), and gathers a
/// result byte-identical to the serial oracle. See [`fj_dist`].
pub use fj_dist;
pub use fj_dist::{
    CostPrediction, DistConfig, DistCoordinator, DistError, DistResult, DistStats, ShipStrategy,
};
