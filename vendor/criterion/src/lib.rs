//! Offline drop-in shim for the `criterion` API subset this workspace's
//! benches use: `Criterion::benchmark_group`, `BenchmarkGroup::{
//! sample_size, bench_function, finish}`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. It measures wall
//! clock with `std::time::Instant` and prints a one-line median per
//! benchmark — no statistics engine, no HTML reports. Vendored because
//! the build environment has no crates.io access.
//!
//! Set `FJ_BENCH_SAMPLES` to override the per-benchmark sample count
//! (default 10, minimum 2; one extra warm-up sample always runs).

use std::time::{Duration, Instant};

/// Re-export of the optimizer barrier, as `criterion::black_box`.
pub use std::hint::black_box;

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: default_samples(),
        }
    }
}

fn default_samples() -> usize {
    std::env::var("FJ_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// A named group of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
        };
        f(&mut b);
        b.samples.sort();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!(
            "  {}/{id}: median {median:?} over {} samples",
            self.name,
            b.samples.len()
        );
        self
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine` `budget` times (plus one untimed warm-up),
    /// recording one sample per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        for _ in 0..self.budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Builds a function that runs each benchmark target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// The bench entry point: runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // 3 timed + 1 warm-up.
        assert_eq!(runs, 4);
    }
}
