//! Offline drop-in shim for the `rand` 0.8 API subset this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::gen_range` over half-open
//! ranges, and `Rng::gen_bool`. The generator is SplitMix64 — not
//! cryptographic, but deterministic per seed, which is all the
//! workload generators and examples need. Vendored because the build
//! environment has no crates.io access.

use std::ops::Range;

/// Core trait: a source of uniform 64-bit values.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// A uniform draw from `[lo, hi)`.
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                ((lo as i128) + ((rng() as u128 % span) as i128)) as $t
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from the half-open range `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut f = || self.next_u64();
        T::sample_half_open(&mut f, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng` (the workspace only relies on determinism-per-seed, not
    /// on matching upstream byte streams).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(5i64..9);
            assert!((5..9).contains(&v));
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let trues = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&trues), "p=0.25 gave {trues}/10000");
    }
}
