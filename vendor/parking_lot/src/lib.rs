//! Offline drop-in shim for the `parking_lot` API subset this workspace
//! uses: [`Mutex`] and [`RwLock`] whose lock methods return guards
//! directly (no `Result`), recovering from poisoning instead of
//! propagating it. Backed by `std::sync`; vendored because the build
//! environment has no crates.io access.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns `Err`: a panic while holding the
/// lock poisons the std mutex, and we simply take the inner guard.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose `read`/`write` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
