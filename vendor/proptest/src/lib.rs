//! Offline drop-in shim for the `proptest` API subset this workspace's
//! property tests use: the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, strategies
//! built from numeric ranges, tuples, `prop::collection::vec` and
//! `prop::option::of`, and the `prop_assert!`/`prop_assert_eq!`
//! macros.
//!
//! Unlike upstream proptest there is **no shrinking and no failure
//! persistence**: every test derives a deterministic seed from its own
//! name, so any failure reproduces exactly by re-running the test, and
//! the committed `*.proptest-regressions` files are not consulted.
//! Vendored because the build environment has no crates.io access.

use std::ops::Range;

/// Test-case generation settings.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test-name hash.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn usize_in(&mut self, range: &Range<usize>) -> usize {
        assert!(range.start < range.end, "empty size range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }
}

/// FNV-1a hash of a test name, used as its deterministic seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                ((self.start as i128) + ((rng.next_u64() as u128 % span) as i128)) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Strategy combinators, mirroring the `proptest::prop` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Generates `Vec`s whose length is uniform in `size` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.usize_in(&self.size);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Generates `None` about a quarter of the time, else
        /// `Some(inner)` — matching upstream's default `None` weight.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// Asserts inside a property body (plain `assert!`: no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg $cfg:expr;) => {};
    (@cfg $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_of(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items!(@cfg $cfg; $($rest)*);
    };
}

/// The `proptest!` block: expands each contained `fn name(arg in
/// strategy, ...) { body }` into a `#[test]` running `cases` generated
/// inputs with a deterministic per-test seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(@cfg $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(@cfg $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, seed_of, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges and collections respect their bounds.
        #[test]
        fn vec_strategy_obeys_bounds(
            v in prop::collection::vec((0i64..5, 10i64..20), 1..8),
            x in 0usize..3,
        ) {
            prop_assert!((1..8).contains(&v.len()));
            for (a, b) in &v {
                prop_assert!((0..5).contains(a));
                prop_assert!((10..20).contains(b));
            }
            prop_assert!(x < 3);
        }

        #[test]
        fn option_strategy_mixes(o in prop::collection::vec(prop::option::of(0i64..4), 64..65)) {
            let nones = o.iter().filter(|v| v.is_none()).count();
            prop_assert!(nones > 0, "expected some Nones in 64 draws");
            prop_assert!(nones < 64, "expected some Somes in 64 draws");
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_of("a"), seed_of("a"));
        assert_ne!(seed_of("a"), seed_of("b"));
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&v));
        }
    }
}
